"""Fig. 3 — number of active parallel RTBHs and RTBH messages per minute.

Paper (830 members): on average 1,107 parallel RTBH prefixes, at most
1,400; message rate below 500/min with spikes up to 793/min. Counts scale
linearly with the benchmark scale factor.
"""

from benchmarks.conftest import BENCH_SCALE, report
from repro.core.load import rtbh_load_series


def test_bench_fig03_rtbh_load(benchmark, pipeline):
    series = benchmark(lambda: rtbh_load_series(pipeline.control))
    scale_note = f"(scale {BENCH_SCALE}: paper values × {BENCH_SCALE:g})"
    report(
        "Fig. 3 — RTBH load over time " + scale_note,
        f"paper:    mean active 1107, peak 1400   -> scaled {1107 * BENCH_SCALE:.0f} / {1400 * BENCH_SCALE:.0f}",
        f"measured: mean active {series.mean_active:.0f}, peak {series.peak_active}",
        f"paper:    message spikes up to 793/min  -> scaled {793 * BENCH_SCALE:.0f}",
        f"measured: mean {series.mean_messages:.2f}/min, peak {series.peak_messages}/min",
    )
    scaled_mean = 1107 * BENCH_SCALE
    assert 0.3 * scaled_mean < series.mean_active < 3.0 * scaled_mean
    assert series.peak_active >= series.mean_active
