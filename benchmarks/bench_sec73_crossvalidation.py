"""§7.3 — cross-validation against a distributed vantage (Jonker et al.).

The paper compares its IXP-centric linking of RTBHs to DDoS against
Jonker et al.'s telescope + amplification-honeypot methodology: both find
that fewer than ~30% of RTBHs relate to detectable DDoS, and each misses
attacks the other can see (direct/unspoofed attacks are invisible to the
telescope; attacks that never cross the IXP are invisible to the IXP).
This benchmark executes that comparison on the synthetic corpus.
"""

from benchmarks.conftest import once, report
from repro.core.crossval import cross_validate


def test_bench_sec73_crossvalidation(benchmark, pipeline, events,
                                     pre_classification, scenario_result):
    result = once(benchmark, lambda: cross_validate(
        events, pre_classification, scenario_result.observations))
    report(
        "§7.3 — IXP view vs telescope/honeypot view",
        "paper:    related work links <30% of RTBHs to DDoS;"
        " both methodologies agree while missing different attacks",
        f"measured: external vantage confirms "
        f"{100 * result.confirmed_share:.0f}% of RTBH events"
        f" (IXP anomaly classifier: "
        f"{100 * (result.both_share + result.only_ixp_share):.0f}%)",
        f"measured: both agree on {100 * result.both_share:.0f}%;"
        f" only external {100 * result.only_external_share:.0f}%"
        " (attacks that never crossed the IXP);"
        f" only IXP {100 * result.only_ixp_share:.0f}%"
        " (direct/unspoofed attacks the telescope misses)",
    )
    assert result.confirmed_share < 0.40
    assert result.only_external_share > 0.02
    assert result.only_ixp_share > 0.02
    assert result.both_share > 0.05
