"""Fig. 16 — RadViz projection of per-host port-diversity features.

Paper: hosts split into a client-like cloud (pulled towards the incoming
destination-port / outgoing source-port diversity anchors) and a
server-like cloud — with, surprisingly, more client-pattern hosts among
the blackholed addresses.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.hosts import HostClass
from repro.stats import radviz_projection
from repro.stats.radviz import radviz_anchors


def test_bench_fig16_radviz(benchmark, host_study):
    matrix = host_study.radviz_matrix()
    coords = benchmark(lambda: radviz_projection(matrix))
    anchors = radviz_anchors(4)
    labels = [h.classification for h in host_study.hosts]
    # clients should sit closer to the in_dst_ports anchor (index 2),
    # servers closer to the in_src_ports anchor (index 0)
    client_pts = coords[[l is HostClass.CLIENT for l in labels]]
    server_pts = coords[[l is HostClass.SERVER for l in labels]]
    d_client_to_clientanchor = np.linalg.norm(client_pts - anchors[2], axis=1).mean()
    d_client_to_serveranchor = np.linalg.norm(client_pts - anchors[0], axis=1).mean()
    d_server_to_serveranchor = np.linalg.norm(server_pts - anchors[0], axis=1).mean()
    d_server_to_clientanchor = np.linalg.norm(server_pts - anchors[2], axis=1).mean()
    report(
        "Fig. 16 — RadViz of host port-diversity features",
        f"projected {len(coords)} hosts "
        f"({len(client_pts)} client-classified, {len(server_pts)} server-classified)",
        "paper:    client-pattern hosts dominate the projection",
        f"measured: clients {len(client_pts)} vs servers {len(server_pts)}",
        f"mean distance client->client-anchor {d_client_to_clientanchor:.2f} "
        f"vs client->server-anchor {d_client_to_serveranchor:.2f}",
    )
    assert len(client_pts) > len(server_pts)
    assert d_client_to_clientanchor < d_client_to_serveranchor
    assert d_server_to_serveranchor < d_server_to_clientanchor
