"""Table 3 — number of distinct UDP amplification protocols per RTBH
event (events with data and a preceding anomaly).

Paper: 0 protocols 6%, 1: 40%, 2: 45%, 3: 8.3%, 4: 0.6%, 5: 0.1% — most
attacks misuse one or two amplification vectors.
"""

from benchmarks.conftest import once, report
from repro.core.protocols import amplification_protocol_table, event_protocol_mix
from repro.core.report import format_table


def test_bench_table3_amplification_protocols(benchmark, pipeline, events,
                                              pre_classification):
    mix = event_protocol_mix(pipeline.data, events, pre_classification)
    table = once(benchmark, lambda: amplification_protocol_table(mix))
    paper = {0: 0.06, 1: 0.40, 2: 0.45, 3: 0.083, 4: 0.006, 5: 0.001}
    rows = [[k, f"{100 * paper[k]:.1f}%", f"{100 * table[k]:.1f}%"]
            for k in sorted(table)]
    report(
        "Table 3 — distinct amplification protocols per anomaly event",
        format_table(["#protocols", "paper", "measured"], rows),
    )
    assert table[1] + table[2] > 0.5     # one or two vectors dominate
    assert table[0] < 0.25               # few non-amplification events
    assert table[4] + table[5] < 0.1     # >3 vectors are rare
