"""Fig. 14 — relative amount of droppable packets per event when filtering
by the a-priori known UDP amplification port list.

Paper: 90% of the RTBH events could be fully mitigated by dropping known
UDP amplification traffic; the remaining ~10% use random ports,
increasing port numbers, or multiple transport protocols.
"""

from benchmarks.conftest import once, report
from repro.core.filtering import filterable_share_cdf


def test_bench_fig14_fine_grained(benchmark, pipeline, events,
                                  pre_classification):
    cdf = once(benchmark, lambda: filterable_share_cdf(
        pipeline.data, events, pre_classification))
    fully = 1.0 - float(cdf(0.999))
    report(
        "Fig. 14 — droppable share per event with port-based filtering",
        "paper:    ~90% of events fully filterable by the known port list",
        f"measured: {100 * fully:.0f}% of {cdf.n} events fully filterable; "
        f"median share {100 * cdf.median:.0f}%",
    )
    assert fully > 0.6
    assert cdf.median > 0.9
    assert cdf.min < 0.5  # the hard-to-filter tail exists
