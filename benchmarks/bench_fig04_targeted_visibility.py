"""Fig. 4 — share of announced blackholes filtered away from peers.

Paper: during some weeks at the beginning of the period the median peer
saw up to 6.2% fewer RTBHs (one peer 10.8% fewer); afterwards the median
and 99th percentiles drop to at most 0.2%, i.e. targeted announcements
are the exception.
"""

import numpy as np

from benchmarks.conftest import once, report
from repro.core.visibility import targeted_visibility


def test_bench_fig04_targeted_visibility(benchmark, pipeline, scenario_result):
    series = once(benchmark, lambda: targeted_visibility(
        pipeline.control, pipeline.peer_asns, pipeline.route_server_asn,
        sample_interval=6 * 3_600.0,
    ))
    # the experiment window (first ~3 weeks) vs the rest
    day = series.times / 86_400.0
    early = (day >= 3.0) & (day <= 20.0)
    late = day > 25.0
    early_median = float(series.filtered_median[early].max()) if early.any() else 0.0
    late_median = float(series.filtered_median[late].max()) if late.any() else 0.0
    report(
        "Fig. 4 — filtered share of announced blackholes per peer quantile",
        "paper:    early weeks: median peers miss up to 6.2%, worst peer 10.8%",
        f"measured: early weeks: median peers miss up to {100 * early_median:.1f}%, "
        f"worst peer {100 * float(series.filtered_max[early].max() if early.any() else 0):.1f}%",
        "paper:    afterwards:  median/99th <= 0.2%",
        f"measured: afterwards:  median <= {100 * late_median:.2f}%, "
        f"99th <= {100 * float(series.filtered_p99[late].max() if late.any() else 0):.2f}%",
    )
    assert early_median > late_median
    assert late_median < 0.02
