"""Fig. 2 — maximum-likelihood estimate of the control/data time offset.

Paper: the overlap share peaks at 99.36% for an offset of −0.04 s.
The scenario injects a −0.04 s control-plane clock skew; the estimator
must find it, with the residual unexplained drops being the bilateral
(non-route-server) blackholes.
"""

from benchmarks.conftest import once, report
from repro.core.offset import time_offset_analysis
from repro.core.plots import sparkline


def test_bench_fig02_time_offset(benchmark, pipeline):
    est = once(benchmark, lambda: time_offset_analysis(pipeline.control,
                                                       pipeline.data))
    report(
        "Fig. 2 — control/data plane time offset (MLE)",
        "paper:    peak overlap 99.36% at offset -0.04 s",
        f"measured: peak overlap {100 * est.best_share:.2f}% at offset "
        f"{est.best_offset:+.2f} s  ({est.total_packets} dropped packets)",
        "likelihood over [-2 s, +2 s]: " ,
        "  " + sparkline(est.overlap_share),
    )
    assert abs(est.best_offset - (-0.04)) < 0.0401
    assert est.best_share > 0.85
