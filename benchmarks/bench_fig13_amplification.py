"""Fig. 13 — anomaly amplification factor: the last 5-minute slot before
the RTBH compared to the pre-event mean.

Paper: when packets are sampled in the final slot, rises up to ~800× are
observed, and in 15% of cases the final slot is the maximum of the whole
72 h range — attacks announce themselves loudly.
"""

from benchmarks.conftest import report


def test_bench_fig13_amplification(benchmark, pre_classification):
    summary = benchmark(pre_classification.amplification_factor_summary)
    report(
        "Fig. 13 — last-slot amplification factor",
        "paper:    factors up to ~800x; in 15% of events the last slot is"
        " the range maximum",
        f"measured: median {summary['median_factor']:.1f}x, "
        f"p90 {summary['p90_factor']:.0f}x, max {summary['max_factor']:.0f}x",
        f"measured: last slot is range max in "
        f"{100 * summary['share_last_slot_is_max']:.0f}% of "
        f"{summary['events_with_last_slot_data']:.0f} events with data",
    )
    assert summary["max_factor"] > 100
    assert 0.05 < summary["share_last_slot_is_max"] < 0.9
