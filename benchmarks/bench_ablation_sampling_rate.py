"""Ablation — the 1:10,000 sampling rate (§5.2's visibility limits).

The paper stresses that almost half of all pre-RTBH events carry no
sampled packet even at one of the largest IXPs. This ablation regenerates
a smaller world at 1:10,000 and 1:1,000 and shows how strongly the
"no data" share of Table 2 is a *sampling* artefact, not a traffic one.
"""

import pytest

from benchmarks.conftest import BENCH_SEED, once, report
from repro import AnalysisPipeline
from repro.core.pre_rtbh import PreRTBHClass
from repro.scenario import ScenarioConfig, run_scenario


def _no_data_share(sampling_rate: int) -> float:
    config = ScenarioConfig.paper(scale=0.02, duration_days=30.0,
                                  seed=BENCH_SEED,
                                  sampling_rate=sampling_rate)
    result = run_scenario(config)
    pipeline = AnalysisPipeline(result.control, result.data,
                                peer_asns=result.ixp.member_asns)
    return pipeline.table2_pre_classes()[PreRTBHClass.NO_DATA]


def test_bench_ablation_sampling_rate(benchmark):
    share_10k = once(benchmark, lambda: _no_data_share(10_000))
    share_1k = _no_data_share(1_000)
    report(
        "Ablation — IPFIX sampling rate vs pre-RTBH visibility",
        f"no-data share at 1:10,000 (paper's rate): {100 * share_10k:.0f}%",
        f"no-data share at 1:1,000 (10x denser):    {100 * share_1k:.0f}%",
        "denser sampling reveals traffic for events the paper's"
        " methodology must classify as silent",
    )
    assert share_1k < share_10k
    assert share_10k - share_1k > 0.03
