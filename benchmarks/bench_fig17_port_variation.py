"""Fig. 17 — top-port variation and client/server classification.

Paper: with >=20 active days required, over 4,000 clients and 1,000
stable servers are detected; clients show a different top port almost
every day (variation ~1), servers very stable top ports (variation ~0).
"""

import numpy as np

from benchmarks.conftest import BENCH_SCALE, once, report
from repro.core.hosts import HostClass, classify_hosts


def test_bench_fig17_port_variation(benchmark, pipeline, events):
    study = once(benchmark, lambda: classify_hosts(
        pipeline.control, pipeline.data, events, min_days=20))
    counts = study.counts()
    clients = study.classified(HostClass.CLIENT)
    servers = study.classified(HostClass.SERVER)
    client_var = float(np.mean([h.port_variation for h in clients])) if clients else 0
    server_var = float(np.mean([h.port_variation for h in servers])) if servers else 0
    report(
        "Fig. 17 — top-port variation classification",
        f"paper:    4,057 clients / 1,036 servers  -> scaled "
        f"{4057 * BENCH_SCALE:.0f} / {1036 * BENCH_SCALE:.0f}",
        f"measured: {counts[HostClass.CLIENT]} clients / "
        f"{counts[HostClass.SERVER]} servers "
        f"({counts[HostClass.UNCLASSIFIED]} unclassified)",
        f"mean variation: clients {client_var:.2f} (paper ~1), "
        f"servers {server_var:.2f} (paper ~0)",
    )
    assert counts[HostClass.CLIENT] > counts[HostClass.SERVER] > 0
    assert client_var > 0.7
    assert server_var < 0.3
