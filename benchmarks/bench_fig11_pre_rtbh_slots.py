"""Fig. 11 — cumulative number of 5-minute slots contributing traffic
samples within 72 h before the RTBH.

Paper: traffic appears for only 18k of 34k pre-RTBH events (46% have no
samples at all); 13k events show data in at most 24 slots (≤ 2 h of a
72 h window) — very sparse visibility.
"""

from benchmarks.conftest import report
from repro.core.pre_rtbh import PreRTBHClass


def test_bench_fig11_pre_rtbh_slots(benchmark, pre_classification):
    ks, cumulative = benchmark(pre_classification.slots_with_data_histogram)
    n_total = len(pre_classification.events)
    n_with_data = sum(1 for e in pre_classification.events
                      if e.classification is not PreRTBHClass.NO_DATA)
    sparse = int(cumulative[min(24, len(cumulative) - 1)])
    report(
        "Fig. 11 — slots with samples in the 72 h pre-RTBH window",
        "paper:    18k of 34k events have any data (54%); 13k show <= 24 slots",
        f"measured: {n_with_data} of {n_total} events have any data "
        f"({100 * n_with_data / n_total:.0f}%)",
        f"measured: {sparse} events show data in <= 24 slots "
        f"({100 * sparse / n_total:.0f}% of all)",
    )
    assert 0.4 < n_with_data / n_total < 0.75
    assert sparse > 0.15 * n_total  # the sparse mass exists
