"""§5.4 — traffic during RTBH events: sampling visibility and protocol mix.

Paper: sampling captured packets for only 29% of all RTBH events; for
events with a preceding anomaly the protocol mix is 99.5% UDP, 0.3% TCP,
0.1% ICMP, 0.1% other — radically different from the normal IXP mix.
"""

from benchmarks.conftest import once, report
from repro.core.protocols import event_protocol_mix
from repro.net.protocols import IPProtocol


def test_bench_sec54_event_traffic(benchmark, pipeline, events,
                                   pre_classification):
    mix = once(benchmark, lambda: event_protocol_mix(
        pipeline.data, events, pre_classification))
    shares = mix.protocol_shares
    report(
        "§5.4 — traffic during RTBH events",
        "paper:    29% of events have sampled packets during the event",
        f"measured: {100 * mix.share_events_with_data:.0f}% "
        f"({mix.events_with_data} of {mix.events_total})",
        "paper:    protocol mix of anomaly events: 99.5% UDP / 0.3% TCP / 0.1% ICMP",
        f"measured: {100 * shares[IPProtocol.UDP]:.1f}% UDP / "
        f"{100 * shares[IPProtocol.TCP]:.1f}% TCP / "
        f"{100 * shares[IPProtocol.ICMP]:.1f}% ICMP",
    )
    assert 0.15 < mix.share_events_with_data < 0.55
    assert shares[IPProtocol.UDP] > 0.85
    assert shares[IPProtocol.TCP] < 0.12
