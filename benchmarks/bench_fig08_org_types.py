"""Fig. 8 — PeeringDB organisation types of the top-100 /32 traffic sources.

Paper: most ASes that do not (or only partially) accept blackhole routes
are network service providers (NSPs) — surprising, since those should be
best prepared for complex BGP configuration.
"""

from benchmarks.conftest import BENCH_SCALE, once, report
from repro.core.droprate import top_source_org_types, top_source_reactions
from repro.core.report import format_table
from repro.ixp.peeringdb import OrgType


def test_bench_fig08_org_types(benchmark, pipeline, events):
    top_n = max(10, round(100 * max(BENCH_SCALE, 0.2)))
    reactions = top_source_reactions(pipeline.data, events, top_n=top_n)
    hist = once(benchmark, lambda: top_source_org_types(reactions,
                                                        pipeline.peeringdb))
    rows = [[org.value, count] for org, count in
            sorted(hist.items(), key=lambda kv: kv[1], reverse=True)]
    report(
        f"Fig. 8 — org types of the top-{len(reactions)} source ASes",
        "paper:    NSPs dominate the top traffic sources",
        format_table(["org type", "count"], rows),
    )
    nsp = hist.get(OrgType.NSP, 0)
    assert nsp >= max(hist.get(OrgType.CONTENT, 0),
                      hist.get(OrgType.ENTERPRISE, 0))
