"""Parallel execution engine — serial vs ``--jobs N`` wall-clock.

The headline numbers for the parallel scheduler: one corpus is generated
and analysed on the reference path (``--jobs 1``), then with the
process-pool scheduler at ``--jobs N`` (N = CPU count), then once more
against a warm content-addressed result cache. Golden equivalence is
asserted inline — the parallel report must be canonically byte-identical
to the serial one, otherwise the timing is meaningless.

The measurements are written both as a paper-vs-measured style block in
``benchmarks/latest_results.txt`` and as machine-readable JSON in
``benchmarks/BENCH_parallel.json`` (committed, with each re-run pushed
onto a dated ``history`` so speedups are tracked across PRs; regenerate
on a multi-core box for meaningful ratios — on a single-CPU host the
pool cannot beat the serial path and the file records exactly that).

Scale knobs (kept separate from the main benchmark corpus so the two
full ``run_all`` passes stay affordable)::

    REPRO_BENCH_PAR_SCALE  default 0.02
    REPRO_BENCH_PAR_DAYS   default 10
    REPRO_BENCH_PAR_SEED   default 7
"""

import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_bench_json, report
from repro import AnalysisPipeline, ControlPlaneCorpus, DataPlaneCorpus
from repro.cli import _load_platform
from repro.corpus.manifest import CONTROL_FILE, DATA_FILE
from repro.parallel import ResultCache, corpus_digest, resolve_jobs
from repro.runtime.generate import checkpointed_generate
from repro.scenario.config import ScenarioConfig

PAR_SCALE = float(os.environ.get("REPRO_BENCH_PAR_SCALE", "0.02"))
PAR_DAYS = float(os.environ.get("REPRO_BENCH_PAR_DAYS", "10"))
PAR_SEED = int(os.environ.get("REPRO_BENCH_PAR_SEED", "7"))

RESULTS_JSON = Path(__file__).with_name("BENCH_parallel.json")


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _pipeline_for(corpus_dir: Path) -> AnalysisPipeline:
    control = ControlPlaneCorpus.load_jsonl(corpus_dir / CONTROL_FILE)
    data = DataPlaneCorpus.load_npz(corpus_dir / DATA_FILE)
    peers, rs_asn, peeringdb = _load_platform(corpus_dir)
    return AnalysisPipeline(control, data, peer_asns=peers,
                            peeringdb=peeringdb, route_server_asn=rs_asn)


@pytest.fixture(scope="module")
def par_config() -> ScenarioConfig:
    return ScenarioConfig.paper(scale=PAR_SCALE, duration_days=PAR_DAYS,
                                seed=PAR_SEED)


def test_bench_parallel_engine(par_config, tmp_path_factory):
    jobs = resolve_jobs(None)  # = CPU count
    base = tmp_path_factory.mktemp("bench-parallel")

    # --- generate: serial reference vs day-sharded parallel writes ----
    _, gen_serial = _timed(
        lambda: checkpointed_generate(par_config, base / "serial"))
    _, gen_parallel = _timed(
        lambda: checkpointed_generate(par_config, base / "parallel",
                                      jobs=jobs))
    serial_dir = base / "serial"
    assert (serial_dir / CONTROL_FILE).read_bytes() \
        == (base / "parallel" / CONTROL_FILE).read_bytes()

    # --- analyze: serial vs process pool vs warm cache ----------------
    digest = corpus_digest(serial_dir)
    cache = ResultCache.for_corpus(serial_dir)

    serial_report, ana_serial = _timed(
        lambda: _pipeline_for(serial_dir).run_all(strict=False))
    parallel_report, ana_parallel = _timed(
        lambda: _pipeline_for(serial_dir).run_all(
            strict=False, jobs=jobs, cache=cache, corpus_digest=digest,
            config_hash="bench"))
    # golden equivalence, or the comparison is meaningless
    assert serial_report.canonical_json() == parallel_report.canonical_json()

    cached_report, ana_cached = _timed(
        lambda: _pipeline_for(serial_dir).run_all(
            strict=False, jobs=jobs, cache=cache, corpus_digest=digest,
            config_hash="bench"))
    cache_hits = sum(1 for o in cached_report if o.cached)

    results = {
        "config": {"scale": PAR_SCALE, "duration_days": PAR_DAYS,
                   "seed": PAR_SEED},
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "generate": {"serial_seconds": round(gen_serial, 3),
                     "parallel_seconds": round(gen_parallel, 3),
                     "speedup": round(gen_serial / gen_parallel, 2)},
        "analyze": {"serial_seconds": round(ana_serial, 3),
                    "parallel_seconds": round(ana_parallel, 3),
                    "cached_seconds": round(ana_cached, 3),
                    "speedup": round(ana_serial / ana_parallel, 2),
                    "cache_hits": cache_hits},
        "golden_equivalent": True,
    }
    record_bench_json(RESULTS_JSON, results)

    note = ("" if (os.cpu_count() or 1) > 1 else
            "  [single-CPU host: pool pays fork overhead, no speedup "
            "possible]")
    report(
        f"Parallel engine (scale={PAR_SCALE}, {PAR_DAYS:g} days, "
        f"jobs={jobs}, cpus={os.cpu_count()})",
        f"generate: serial {gen_serial:.2f}s  --jobs {jobs} "
        f"{gen_parallel:.2f}s  ({gen_serial / gen_parallel:.2f}x)",
        f"analyze:  serial {ana_serial:.2f}s  --jobs {jobs} "
        f"{ana_parallel:.2f}s  ({ana_serial / ana_parallel:.2f}x)" + note,
        f"cached:   {ana_cached:.2f}s with {cache_hits}/16 cache hits "
        f"({ana_serial / ana_cached:.1f}x vs cold serial)",
        "golden equivalence: canonical reports byte-identical",
    )

    assert parallel_report.ok
    assert cache_hits == len(list(cached_report))
    # the cached pass must beat the cold serial pass outright
    assert ana_cached < ana_serial
