"""Ablation — the Δ merge threshold of §5.1.

Why 10 minutes? Too small a Δ splits one mitigation episode into several
"events" (inflating the event count and polluting the pre-windows with
the same attack's own traffic); far larger Δs merge unrelated episodes.
This ablation quantifies both effects around the chosen knee.
"""

from benchmarks.conftest import once, report
from repro.core.events import extract_events


def test_bench_ablation_merge_delta(benchmark, pipeline):
    def count(delta: float) -> int:
        return len(extract_events(pipeline.control, delta=delta))

    n_10min = once(benchmark, lambda: count(600.0))
    n_1min = count(60.0)
    n_1h = count(3_600.0)
    n_1d = count(86_400.0)
    report(
        "Ablation — merge threshold Δ",
        f"Δ=1 min:  {n_1min} events",
        f"Δ=10 min: {n_10min} events  (the paper's choice)",
        f"Δ=1 h:    {n_1h} events",
        f"Δ=1 d:    {n_1d} events",
        f"splitting cost of Δ=1 min: +{n_1min - n_10min} events "
        f"({100 * (n_1min - n_10min) / n_10min:.1f}%)",
        f"over-merge of Δ=1 h: -{n_10min - n_1h} events "
        f"({100 * (n_10min - n_1h) / n_10min:.1f}%)",
    )
    assert n_1min >= n_10min >= n_1h >= n_1d
    # the knee: 1 min splits noticeably more than 1 h over-merges
    assert (n_1min - n_10min) > (n_10min - n_1h)
