"""Fig. 15 — cumulative share of UDP amplification events that each
handover AS and origin AS participated in.

Paper: 501 handover ASes (55% of members) and 11,124 origin ASes appear;
most participate in <10% (handover) / <3% (origin) of events, but a few
appear in 20–60%; the top origin AS (60% of events) and top handover AS
(62%) are the same AS. On average 1,086 amplifiers, 30 handover and 73
origin ASes per attack (amplifier counts scale with the benchmark scale).
"""

from benchmarks.conftest import once, report
from repro.core.filtering import as_participation


def test_bench_fig15_as_participation(benchmark, pipeline, events,
                                      pre_classification):
    part = once(benchmark, lambda: as_participation(
        pipeline.data, events, pre_classification))
    top_origin = part.top("origin", 1)[0]
    top_handover = part.top("handover", 1)[0]
    import numpy as np

    origin_median = float(np.median(list(part.origin.values())))
    handover_median = float(np.median(list(part.handover.values())))
    report(
        "Fig. 15 — per-AS participation in amplification events",
        "paper:    top origin AS in 60% of events, top handover in 62%;"
        " most origin ASes <3%, most handover <10%",
        f"measured: top origin AS{top_origin[0]} in {100 * top_origin[1]:.0f}%;"
        f" top handover AS{top_handover[0]} in {100 * top_handover[1]:.0f}%",
        f"measured: median participation origin {100 * origin_median:.1f}%,"
        f" handover {100 * handover_median:.1f}%",
        f"measured: per event (sampled): {part.mean_amplifiers_per_event:.0f}"
        f" amplifiers, {part.mean_handover_asns_per_event:.0f} handover /"
        f" {part.mean_origin_asns_per_event:.0f} origin ASes",
    )
    assert top_origin[1] > 0.25          # heavy hitters exist
    assert origin_median < 0.15          # the bulk participates rarely
    assert part.mean_origin_asns_per_event >= part.mean_handover_asns_per_event
