"""Ablation — anomaly-detection threshold (§5.3's robustness claim).

The paper: "we tested extreme configurations such as thresholds of 10·SD
(instead of 2.5) with very stable results". This ablation re-runs the
pre-RTBH classification at 2.5, 5 and 10 SD and checks that the share of
anomaly events barely moves — traffic changes are either absent or huge.
"""

from benchmarks.conftest import once, report
from repro.core.pre_rtbh import PreRTBHClass, classify_pre_rtbh_events
from repro.stats.anomaly import AnomalyConfig, EWMAAnomalyDetector


def test_bench_ablation_anomaly_threshold(benchmark, pipeline, events):
    def run(threshold: float) -> float:
        detector = EWMAAnomalyDetector(AnomalyConfig(threshold=threshold))
        result = classify_pre_rtbh_events(pipeline.data, events,
                                          detector=detector)
        return result.class_shares()[PreRTBHClass.DATA_ANOMALY]

    share_25 = once(benchmark, lambda: run(2.5))
    share_5 = run(5.0)
    share_10 = run(10.0)
    report(
        "Ablation — EWMA threshold (paper: stable from 2.5 to 10 SD)",
        f"anomaly-event share at 2.5 SD: {100 * share_25:.1f}%",
        f"anomaly-event share at 5.0 SD: {100 * share_5:.1f}%",
        f"anomaly-event share at 10 SD:  {100 * share_10:.1f}%",
    )
    assert abs(share_25 - share_10) < 0.08  # "very stable results"
    assert share_10 <= share_5 <= share_25 + 1e-9
