"""Fig. 9 — the on–off announce/withdraw pattern of DDoS-reaction RTBHs.

Fig. 9 is a concept figure: during one attack the victim repeatedly
withdraws its blackhole to probe whether the attack continues, then
re-announces. The benchmark drives the controller over one attack and
verifies the sequence it produces, and checks that multi-window events
dominate the visible-DDoS population in the generated corpus.
"""

import numpy as np

from benchmarks.conftest import report
from repro.mitigation import RTBHControllerConfig, ddos_reaction_windows


def test_bench_fig09_onoff_pattern(benchmark, pipeline, events):
    rng_factory = np.random.default_rng

    def one_attack():
        return ddos_reaction_windows(rng_factory(42), 0.0, 4 * 3_600.0,
                                     RTBHControllerConfig())

    windows = benchmark(one_attack)
    multi = sum(1 for e in events if e.num_windows > 1)
    report(
        "Fig. 9 — RTBH on-off re-announcement pattern",
        f"one 4 h attack -> {len(windows)} announce/withdraw windows "
        f"(paper: repeated re-announcements to probe attack status)",
        f"corpus: {multi} of {len(events)} merged events have >1 window",
    )
    assert len(windows) >= 2
    for a, b in zip(windows, windows[1:]):
        assert a.withdraw_time < b.announce_time  # probing gaps exist
    assert multi > 0.2 * len(events)
