"""Fig. 10 — fraction of blackholing events in all RTBH announcements as
a function of the merge threshold Δ.

Paper: the last significant drop happens up to Δ ≈ 10 minutes; at that
threshold 400k announcements collapse into 34k events (8.5%). The red
dashed lower bound (Δ = ∞) equals the number of unique prefixes.
"""

import numpy as np

from benchmarks.conftest import report
from repro.core.events import merge_threshold_sweep, unique_prefix_count


def test_bench_fig10_merge_threshold(benchmark, pipeline):
    deltas = np.r_[0.0, np.geomspace(10.0, 48 * 3_600.0, 60)]
    sweep = benchmark(lambda: merge_threshold_sweep(pipeline.control, deltas))
    got_deltas, fraction = sweep
    at_10min = float(fraction[np.searchsorted(got_deltas, 600.0)])
    announcements = sum(1 for m in pipeline.control.rtbh_updates() if m.is_announce)
    lower_bound = unique_prefix_count(pipeline.control) / announcements
    from repro.core.plots import sparkline

    report(
        "Fig. 10 — event fraction vs merge threshold Δ",
        "paper:    Δ=10 min groups 400k announcements into 34k events (8.5%);"
        " knee at ~10 min; lower bound = unique prefixes",
        f"measured: Δ=10 min -> {100 * at_10min:.1f}% of {announcements} announcements"
        f" ({round(at_10min * announcements)} events)",
        f"measured: Δ=∞ lower bound {100 * lower_bound:.1f}%",
        "fraction vs Δ (log grid, 0 s .. 48 h):",
        "  " + sparkline(fraction),
    )
    assert (np.diff(fraction) <= 1e-12).all()        # monotone
    assert fraction[0] == 1.0 or fraction[0] <= 1.0  # sane normalisation
    assert at_10min < 0.8                            # merging collapses events
    assert at_10min >= lower_bound
    # the knee: little further reduction between 10 min and 2 h
    at_2h = float(fraction[np.searchsorted(got_deltas, 7_200.0)])
    assert at_10min - at_2h < 0.15
