"""Fig. 5 — observed shares of dropped traffic by RTBH prefix length.

Paper: 99.9% of blackhole traffic goes to /32 prefixes, of which only 50%
of packets (44% of bytes) are dropped; /22–/24 blackholes are accepted in
93–99% of cases; /25–/31 behave like /32 or worse (operators whitelist
/32 but not the lengths in between).
"""

from benchmarks.conftest import once, report
from repro.core.droprate import drop_rate_by_prefix_length
from repro.core.report import format_table


def test_bench_fig05_droprate_by_prefixlen(benchmark, pipeline, events):
    rates = once(benchmark,
                 lambda: drop_rate_by_prefix_length(pipeline.data, events))
    rows = []
    for i, length in enumerate(rates.lengths):
        rows.append([f"/{int(length)}",
                     f"{100 * rates.drop_share_packets[i]:.1f}%",
                     f"{100 * rates.drop_share_bytes[i]:.1f}%",
                     f"{100 * rates.traffic_share[i]:.2f}%"])
    report(
        "Fig. 5 — dropped share by prefix length",
        "paper:    /32 drops 50% pkts / 44% bytes; /22-/24 drop 93-99%;"
        " /25-/31 especially low; ~99.9% of traffic is to /32",
        format_table(["len", "drop(pkts)", "drop(bytes)", "traffic share"], rows),
        f"average drop: {100 * rates.average_drop_packets:.1f}% pkts / "
        f"{100 * rates.average_drop_bytes:.1f}% bytes "
        "(paper dashed lines: ~50% / ~44%)",
    )
    drop32, _, share32 = rates.row(32)
    drop24, _, _ = rates.row(24)
    assert 0.35 < drop32 < 0.65
    assert drop24 > 0.85
    assert share32 > 0.5
