"""Streaming engine — incremental advance vs from-scratch batch.

The headline claim of the streaming engine: after a corpus grows by one
day, a resumed watcher reaches fresh, fingerprint-identical numbers in
a fraction of the batch wall-clock, because only the delta is ingested
and the incremental analyses are answered from checkpointed reducer
state (with the result cache absorbing what was already computed for
the unchanged prefix where possible).

One kept-segments corpus is generated and consumed; the corpus is then
advanced by one day and three numbers are measured over the extended
corpus: the full batch analyze (cold ingest + all 16 analyses), the
watcher's one-day tick (delta ingest + reducer advance), and the
incremental report (the five reducer-backed analyses).  Equivalence is
asserted inline — the post-advance stream report must carry the same
value fingerprints as the batch run, otherwise the timing is
meaningless.

The measurements land in ``benchmarks/latest_results.txt`` and as
machine-readable JSON in ``benchmarks/BENCH_streaming.json`` (committed,
so the incremental-vs-batch ratio is tracked across PRs).  Scale knobs::

    REPRO_BENCH_STREAM_SCALE  default 0.02
    REPRO_BENCH_STREAM_DAYS   default 5
    REPRO_BENCH_STREAM_SEED   default 7
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import report
from repro import AnalyzeOptions, GenerateOptions, Study
from repro.core.registry import incremental_names
from repro.streaming import StreamEngine, advance_corpus

STREAM_SCALE = float(os.environ.get("REPRO_BENCH_STREAM_SCALE", "0.02"))
STREAM_DAYS = float(os.environ.get("REPRO_BENCH_STREAM_DAYS", "5"))
STREAM_SEED = int(os.environ.get("REPRO_BENCH_STREAM_SEED", "7"))

RESULTS_JSON = Path(__file__).with_name("BENCH_streaming.json")


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_bench_streaming_advance(tmp_path_factory):
    corpus = tmp_path_factory.mktemp("bench-streaming") / "corpus"
    study = Study.generate(corpus, options=GenerateOptions(
        scale=STREAM_SCALE, duration_days=STREAM_DAYS, seed=STREAM_SEED,
        keep_segments=True))

    # consume the initial prefix so the advance tick measures the delta
    engine = StreamEngine.open(corpus, host_min_days=2)
    engine.tick()
    engine.report()

    _, advance_s = _timed(lambda: advance_corpus(corpus, 1))

    batch, batch_s = _timed(lambda: study.analyze(
        options=AnalyzeOptions(host_min_days=2)))

    consumed, tick_s = _timed(engine.tick)
    assert consumed == 1
    incremental = tuple(incremental_names())
    stream_inc, inc_report_s = _timed(lambda: engine.report(incremental))
    stream_full, full_report_s = _timed(engine.report)

    # equivalence first: identical fingerprints or the timing is void
    batch_fp = {o.name: o.value_digest for o in batch.outcomes}
    assert stream_full.fingerprints() == batch_fp
    assert stream_inc.fingerprints() == {
        name: batch_fp[name] for name in incremental}

    incremental_s = tick_s + inc_report_s
    ratio = incremental_s / batch_s
    results = {
        "config": {"scale": STREAM_SCALE, "duration_days": STREAM_DAYS,
                   "seed": STREAM_SEED, "advanced_days": 1},
        "batch_analyze_seconds": round(batch_s, 3),
        "advance_seconds": round(advance_s, 3),
        "tick_seconds": round(tick_s, 3),
        "incremental_report_seconds": round(inc_report_s, 3),
        "full_report_seconds": round(full_report_s, 3),
        "incremental_vs_batch_ratio": round(ratio, 3),
        "incremental_analyses": list(incremental),
        "fingerprints_equal_batch": True,
    }
    RESULTS_JSON.write_text(json.dumps(results, indent=2, sort_keys=True)
                            + "\n")

    report(
        f"Streaming advance (scale={STREAM_SCALE}, {STREAM_DAYS:g}+1 "
        f"days)",
        f"batch analyze (cold, 16 analyses): {batch_s:.2f}s",
        f"incremental advance of one day:    {incremental_s:.2f}s "
        f"(tick {tick_s:.2f}s + incremental report {inc_report_s:.2f}s, "
        f"{ratio:.2f}x of batch)",
        f"full stream report (batch fallbacks included): "
        f"{full_report_s:.2f}s",
        "fingerprints: stream == batch over the extended corpus",
    )

    # acceptance: consuming one appended day and refreshing the
    # incremental analyses costs at most a third of a batch rerun
    assert incremental_s <= batch_s / 3, (
        f"incremental advance took {incremental_s:.2f}s vs batch "
        f"{batch_s:.2f}s")
