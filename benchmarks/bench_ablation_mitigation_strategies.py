"""Ablation — coarse RTBH vs fine-grained port filtering (§7.2).

The paper concludes that port-based blacklisting of attack traffic "is
very effective" while RTBH throws away everything. This ablation scores
both strategies on the full labelled corpus: attack coverage vs
collateral rate (share of legitimate packets killed).
"""

from benchmarks.conftest import once, report
from repro.mitigation import amplification_filter, rtbh_filter, score_mitigation
from repro.net import IPv4Prefix

EVERYTHING = IPv4Prefix(0, 0)


def test_bench_ablation_mitigation_strategies(benchmark, scenario_result):
    packets = scenario_result.data.packets

    fine = once(benchmark, lambda: score_mitigation(
        amplification_filter(EVERYTHING), packets))
    coarse = score_mitigation(rtbh_filter(EVERYTHING), packets)

    report(
        "Ablation — RTBH vs fine-grained filtering (labelled ground truth)",
        f"fine-grained: attack coverage {100 * fine.attack_coverage:.1f}%, "
        f"collateral {100 * fine.collateral_rate:.2f}%",
        f"coarse RTBH:  attack coverage {100 * coarse.attack_coverage:.1f}%, "
        f"collateral {100 * coarse.collateral_rate:.2f}%",
        "paper:    ~90% of events fully mitigable by the port list with"
        " zero collateral; RTBH kills all legitimate traffic it covers",
    )
    assert fine.attack_coverage > 0.75
    assert fine.collateral_rate < 0.05
    assert coarse.attack_coverage > 0.99
    assert coarse.collateral_rate > 0.99
