"""Fig. 18 — collateral damage during RTBH events for detected servers.

Paper: ~300 RTBH events show traffic to the top ports of the ~1,000
detected servers; per (event, server), up to 10^6 packets to service
ports are observed — split into all packets (what should have been
dropped by a perfect blackhole) and those actually dropped.
"""

from benchmarks.conftest import BENCH_SCALE, once, report
from repro.core.collateral import collateral_damage


def test_bench_fig18_collateral(benchmark, pipeline, events, host_study):
    damage = once(benchmark, lambda: collateral_damage(
        pipeline.data, events, host_study))
    cdf_all = damage.cdf()
    report(
        "Fig. 18 — collateral damage to server top ports during events",
        f"paper:    ~300 events with collateral for ~1,000 servers -> scaled "
        f"{300 * BENCH_SCALE:.0f} events / {1000 * BENCH_SCALE:.0f} servers",
        f"measured: {damage.events_with_collateral} events with collateral "
        f"for {damage.servers_considered} detected servers",
        f"measured: packets to top ports per (event, server): median "
        f"{cdf_all.median:.0f}, max {cdf_all.max:.0f} "
        f"(sampled 1:{pipeline.data.sampling_rate}; paper reports up to 1e6 raw)",
        f"measured: total {damage.total_packets()} sampled packets, of which "
        f"{damage.total_packets(dropped_only=True)} actually dropped",
    )
    assert damage.servers_considered > 0
    assert damage.events_with_collateral > 0
    # some of the collateral was really dropped, some kept flowing
    assert 0 < damage.total_packets(dropped_only=True) < damage.total_packets()
