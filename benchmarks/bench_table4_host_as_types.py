"""Table 4 — PeeringDB AS types of detected client and server hosts.

Paper: clients sit mostly in Cable/DSL/ISP networks (60%), servers in
Content networks (34%); 23%/38% resolve to no PeeringDB entry. Over
2,000 hosts with client traffic patterns live in ISP networks yet were
DDoS targets.
"""

from benchmarks.conftest import once, report
from repro.core.hosts import HostClass
from repro.core.report import format_table
from repro.ixp.peeringdb import OrgType


def test_bench_table4_host_as_types(benchmark, pipeline, host_study):
    table = once(benchmark, lambda: host_study.org_type_table(pipeline.peeringdb))
    paper = {
        HostClass.CLIENT: {OrgType.CONTENT: 0.02, OrgType.CABLE_DSL_ISP: 0.60,
                           OrgType.NSP: 0.14, OrgType.ENTERPRISE: 0.01,
                           OrgType.UNKNOWN: 0.23},
        HostClass.SERVER: {OrgType.CONTENT: 0.34, OrgType.CABLE_DSL_ISP: 0.14,
                           OrgType.NSP: 0.13, OrgType.ENTERPRISE: 0.01,
                           OrgType.UNKNOWN: 0.38},
    }
    rows = []
    for org in (OrgType.CONTENT, OrgType.CABLE_DSL_ISP, OrgType.NSP,
                OrgType.ENTERPRISE, OrgType.UNKNOWN):
        rows.append([
            org.value,
            f"{100 * paper[HostClass.CLIENT][org]:.0f}%",
            f"{100 * table[HostClass.CLIENT].get(org, 0.0):.0f}%",
            f"{100 * paper[HostClass.SERVER][org]:.0f}%",
            f"{100 * table[HostClass.SERVER].get(org, 0.0):.0f}%",
        ])
    report(
        "Table 4 — AS types of detected client/server hosts",
        format_table(
            ["type", "clients(paper)", "clients(measured)",
             "servers(paper)", "servers(measured)"], rows),
    )
    clients = table[HostClass.CLIENT]
    servers = table[HostClass.SERVER]
    assert clients.get(OrgType.CABLE_DSL_ISP, 0) > 0.3
    assert clients.get(OrgType.CABLE_DSL_ISP, 0) > clients.get(OrgType.CONTENT, 0)
    assert servers.get(OrgType.CONTENT, 0) > 0.15
    assert servers.get(OrgType.CONTENT, 0) > servers.get(OrgType.CABLE_DSL_ISP, 0)
