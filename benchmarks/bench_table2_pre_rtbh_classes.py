"""Table 2 — class distribution of pre-RTBH events.

Paper: 46% of pre-RTBH events show no sampled data at all; 27% show data
but no anomaly within 10 minutes; 27% show data with an anomaly within
10 minutes. Additionally, 33% of events show an anomaly within 1 hour.
"""

from benchmarks.conftest import once, report
from repro.core.pre_rtbh import PreRTBHClass, classify_pre_rtbh_events


def test_bench_table2_pre_rtbh_classes(benchmark, pipeline, events):
    classification = once(benchmark, lambda: classify_pre_rtbh_events(
        pipeline.data, events))
    shares = classification.class_shares()
    within_1h = classification.anomaly_share_within(60.0)
    report(
        "Table 2 — pre-RTBH event classes",
        "paper:    no data 46% | data, no anomaly 27% | anomaly <=10 min 27%",
        "measured: no data "
        f"{100 * shares[PreRTBHClass.NO_DATA]:.0f}% | data, no anomaly "
        f"{100 * shares[PreRTBHClass.DATA_NO_ANOMALY]:.0f}% | anomaly <=10 min "
        f"{100 * shares[PreRTBHClass.DATA_ANOMALY]:.0f}%",
        f"paper:    anomaly <= 1 h: 33%   measured: {100 * within_1h:.0f}%",
    )
    assert 0.30 < shares[PreRTBHClass.NO_DATA] < 0.60
    assert 0.15 < shares[PreRTBHClass.DATA_NO_ANOMALY] < 0.45
    assert 0.15 < shares[PreRTBHClass.DATA_ANOMALY] < 0.40
    assert within_1h >= shares[PreRTBHClass.DATA_ANOMALY]
