"""Fig. 6 — distribution of dropped traffic shares for /24 and /32 RTBHs.

Paper: /24 drop rates vary between 82% and 100% with a median of 97%
(predictable); /32 rates span almost 0–100% with quartiles ≈30/53/88%
(highly unpredictable).
"""

from benchmarks.conftest import once, report
from repro.core.droprate import drop_rate_cdf_by_length


def test_bench_fig06_droprate_cdf(benchmark, pipeline, events):
    cdfs = once(benchmark, lambda: drop_rate_cdf_by_length(
        pipeline.data, events, lengths=(24, 32)))
    q24 = cdfs[24].quartiles()
    q32 = cdfs[32].quartiles()
    from repro.core.plots import cdf_plot

    report(
        "Fig. 6 — per-event drop-share CDFs",
        "paper:    /24: range 82-100%, median 97%",
        f"measured: /24: min {100 * cdfs[24].min:.0f}%, median {100 * q24[1]:.0f}%, "
        f"max {100 * cdfs[24].max:.0f}%  (n={cdfs[24].n})",
        "paper:    /32: quartiles 30% / 53% / 88%",
        f"measured: /32: quartiles {100 * q32[0]:.0f}% / {100 * q32[1]:.0f}% / "
        f"{100 * q32[2]:.0f}%  (n={cdfs[32].n})",
        "/32 drop-share CDF:",
        cdf_plot(cdfs[32], x_label="drop share"),
    )
    assert q24[1] > 0.9
    assert q32[0] < q32[1] < q32[2]
    assert 0.3 < q32[1] < 0.7
    assert q32[2] - q32[0] > 0.2  # the /32 spread is wide
