"""Columnar engine — record path vs vectorized path wall-clock.

The headline numbers for the columnar data plane: one 10-day corpus is
generated (sidecars land at generate time), analysed serially on the
record reference path, then on the columnar engine mmap-ing the
sidecars, then at 1/2/4/8 jobs with forked workers sharing the same
read-only buffers. Fingerprint equivalence is asserted inline — the
canonical reports must be byte-identical, otherwise the timing is
meaningless.

The measurements land as a paper-vs-measured block in
``benchmarks/latest_results.txt`` and as machine-readable JSON in
``benchmarks/BENCH_columnar.json`` (committed, with each re-run pushed
onto a dated ``history``). Target: the columnar serial pass is >= 5x
faster than the record serial pass; job scaling is only meaningful on a
multi-core host and the file records ``cpu_count`` so a flat curve on a
single-CPU box reads as what it is.

Scale knobs (same defaults as the parallel bench corpus)::

    REPRO_BENCH_COL_SCALE  default 0.02
    REPRO_BENCH_COL_DAYS   default 10
    REPRO_BENCH_COL_SEED   default 7
    REPRO_BENCH_COL_MIN_SPEEDUP  default 5.0 (assertion threshold)
"""

import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import record_bench_json, report
from repro import ControlPlaneCorpus, DataPlaneCorpus
from repro.cli import _load_platform
from repro.columnar.engine import build_pipeline
from repro.columnar.store import sidecar_paths
from repro.corpus.manifest import CONTROL_FILE, DATA_FILE
from repro.runtime.generate import checkpointed_generate
from repro.scenario.config import ScenarioConfig

COL_SCALE = float(os.environ.get("REPRO_BENCH_COL_SCALE", "0.02"))
COL_DAYS = float(os.environ.get("REPRO_BENCH_COL_DAYS", "10"))
COL_SEED = int(os.environ.get("REPRO_BENCH_COL_SEED", "7"))
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_COL_MIN_SPEEDUP", "5.0"))

RESULTS_JSON = Path(__file__).with_name("BENCH_columnar.json")


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _pipeline_for(corpus_dir: Path, engine: str):
    control = ControlPlaneCorpus.load_jsonl(corpus_dir / CONTROL_FILE)
    data = DataPlaneCorpus.load_npz(corpus_dir / DATA_FILE)
    peers, rs_asn, peeringdb = _load_platform(corpus_dir)
    return build_pipeline(control, data, peers, engine=engine,
                          corpus_dir=corpus_dir, peeringdb=peeringdb,
                          route_server_asn=rs_asn)


@pytest.fixture(scope="module")
def col_config() -> ScenarioConfig:
    return ScenarioConfig.paper(scale=COL_SCALE, duration_days=COL_DAYS,
                                seed=COL_SEED)


def test_bench_columnar_engine(col_config, tmp_path_factory):
    corpus = tmp_path_factory.mktemp("bench-columnar") / "corpus"
    checkpointed_generate(col_config, corpus)
    control_col, data_col = sidecar_paths(corpus)
    assert control_col.exists() and data_col.exists()

    # --- serial: record reference vs columnar mmap --------------------
    record_report, t_records = _timed(
        lambda: _pipeline_for(corpus, "records").run_all(strict=False))
    columnar_report, t_columnar = _timed(
        lambda: _pipeline_for(corpus, "columnar").run_all(strict=False))
    # fingerprint equivalence, or the comparison is meaningless
    assert record_report.canonical_json() == columnar_report.canonical_json()
    speedup = t_records / t_columnar

    # --- job scaling over the shared read-only buffers ----------------
    scaling = {}
    for jobs in (1, 2, 4, 8):
        jobs_report, seconds = _timed(
            lambda j=jobs: _pipeline_for(corpus, "columnar").run_all(
                strict=False, jobs=j))
        assert jobs_report.canonical_json() == record_report.canonical_json()
        scaling[jobs] = round(seconds, 3)

    results = {
        "config": {"scale": COL_SCALE, "duration_days": COL_DAYS,
                   "seed": COL_SEED},
        "cpu_count": os.cpu_count(),
        "analyze": {"records_serial_seconds": round(t_records, 3),
                    "columnar_serial_seconds": round(t_columnar, 3),
                    "speedup": round(speedup, 2)},
        "columnar_jobs_seconds": {str(j): s for j, s in scaling.items()},
        "fingerprint_equivalent": True,
    }
    record_bench_json(RESULTS_JSON, results)

    note = ("" if (os.cpu_count() or 1) > 1 else
            "  [single-CPU host: job curve is fork overhead, flat by "
            "construction]")
    report(
        f"Columnar engine (scale={COL_SCALE}, {COL_DAYS:g} days, "
        f"cpus={os.cpu_count()})",
        f"analyze: records {t_records:.2f}s  columnar {t_columnar:.2f}s  "
        f"({speedup:.2f}x serial)",
        "jobs:    " + "  ".join(f"{j}={s:.2f}s"
                                for j, s in scaling.items()) + note,
        "fingerprint equivalence: canonical reports byte-identical",
    )

    assert record_report.ok and columnar_report.ok
    assert speedup >= MIN_SPEEDUP, (
        f"columnar serial speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x target")
