"""Fig. 12 — level and time offset of traffic anomalies in pre-RTBH
windows.

Paper: a clear trend — most anomalies occur up to ten minutes before the
first RTBH announcement (automatic mitigation tools); usually all five
features spike together, but single-feature anomalies exist too.
"""

import numpy as np

from benchmarks.conftest import report


def test_bench_fig12_anomaly_offsets(benchmark, pre_classification):
    offsets, levels = benchmark(pre_classification.anomaly_offsets_levels)
    within10 = float((offsets <= 10.0).mean())
    uniform = 2 / 576  # two slots of the detectable window
    concentration = within10 / uniform
    level_counts = {lv: int((levels == lv).sum()) for lv in range(1, 6)}
    report(
        "Fig. 12 — anomaly level vs time offset before the RTBH",
        "paper:    anomaly mass concentrates <= 10 min before the event;"
        " usually all 5 features spike",
        f"measured: {100 * within10:.1f}% of anomalies <= 10 min "
        f"({concentration:.0f}x the uniform share)",
        f"measured: level histogram {level_counts}; "
        f"level>=4 within 10 min: "
        f"{100 * float((offsets[levels >= 4] <= 10).mean()):.0f}%",
    )
    assert concentration > 5
    assert levels.max() == 5
    assert level_counts[1] > 0  # single-feature anomalies exist too
    # high-level anomalies are attack onsets (amplification floods keep
    # the destination-port feature flat, so they typically reach level 4)
    assert (offsets[levels >= 4] <= 10.0).mean() > 0.3
