"""Fig. 19 — classification of RTBH events according to use cases.

Paper: ~27% of events are DDoS-likely infrastructure protection;
squatting protection appears for 4 ASes / 21 prefixes; 13% of events are
/32s with <10 packets — suspected RTBH zombies; ~60% remain "other".
Zombies/squatting last orders of magnitude longer than DDoS reactions.
"""

from benchmarks.conftest import once, report
from repro.core.classify import UseCase
from repro.core.report import seconds_human


def test_bench_fig19_classification(benchmark, pipeline):
    result = once(benchmark, pipeline.fig19_use_cases)
    shares = result.shares()
    counts = result.counts()
    lines = [
        "paper:    infra-protection 27% | squatting 21 prefixes | zombies ~13% | other ~60%",
        "measured: infra-protection "
        f"{100 * shares[UseCase.INFRASTRUCTURE_PROTECTION]:.0f}% | squatting "
        f"{counts[UseCase.SQUATTING_PROTECTION]} events | zombies "
        f"{100 * shares[UseCase.ZOMBIE]:.0f}% | other "
        f"{100 * shares[UseCase.OTHER]:.0f}%",
    ]
    for case in UseCase:
        if counts[case]:
            q1, med, q3 = result.duration_quartiles(case)
            lines.append(f"duration {case.value}: "
                         f"{seconds_human(q1)} / {seconds_human(med)} / "
                         f"{seconds_human(q3)} (quartiles)")
    report("Fig. 19 — RTBH event use cases", *lines)
    assert 0.15 < shares[UseCase.INFRASTRUCTURE_PROTECTION] < 0.40
    assert shares[UseCase.OTHER] > 0.35
    assert 0.03 < shares[UseCase.ZOMBIE] < 0.30
    assert counts[UseCase.SQUATTING_PROTECTION] >= 1
    _, ddos_med, _ = result.duration_quartiles(UseCase.INFRASTRUCTURE_PROTECTION)
    _, zombie_med, _ = result.duration_quartiles(UseCase.ZOMBIE)
    assert zombie_med > 10 * ddos_med
