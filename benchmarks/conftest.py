"""Shared benchmark infrastructure.

One scenario corpus is generated per session at a configurable scale
(``REPRO_BENCH_SCALE``, default 0.05 of the paper's population;
``REPRO_BENCH_DAYS``, default the paper's 104 days) and every per-figure
benchmark analyses it. Expensive shared intermediates (event extraction,
pre-RTBH classification, host profiling) are session fixtures so each
benchmark times only its own analysis.

Every benchmark prints a *paper vs measured* comparison through
:func:`report`, which bypasses pytest's capture so the rows land in the
tee'd output file.

Setting ``REPRO_BENCH_TRACE`` (and/or ``REPRO_BENCH_METRICS``) to a file
path activates a session-wide :class:`repro.telemetry.Telemetry`, so the
corpus generation and every analysis run under the benchmarks emit spans
and counters; the trace/metrics files are written when the session ends.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro import AnalysisPipeline, telemetry
from repro.scenario import ScenarioConfig, run_scenario

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "104"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))
BENCH_TRACE = os.environ.get("REPRO_BENCH_TRACE")
BENCH_METRICS = os.environ.get("REPRO_BENCH_METRICS")

#: paper-vs-measured blocks are appended here as well, so the comparison
#: survives even when output is piped
RESULTS_PATH = Path(__file__).with_name("latest_results.txt")

_TELEM = None
_ACTIVATION = None
_STARTED = None
#: where this session's blocks begin inside ``latest_results.txt`` —
#: earlier sessions' blocks are history and stay put
_SESSION_OFFSET = 0


def pytest_configure(config):
    global _TELEM, _ACTIVATION, _STARTED, _SESSION_OFFSET
    # append a dated session header instead of truncating: the file is
    # committed, and silently erasing previous measurements made every
    # checkout look freshly benchmarked when it wasn't
    stamp = time.strftime("%Y-%m-%d %H:%M:%S %z")
    header = (f"##### bench session {stamp} (scale={BENCH_SCALE}, "
              f"days={BENCH_DAYS:g}, seed={BENCH_SEED}) #####\n\n")
    with RESULTS_PATH.open("a", encoding="utf-8") as fh:
        _SESSION_OFFSET = fh.tell()
        fh.write(header)
    if BENCH_TRACE or BENCH_METRICS:
        _TELEM = telemetry.Telemetry()
        _ACTIVATION = telemetry.activate(_TELEM)
        _ACTIVATION.__enter__()
        _STARTED = time.perf_counter()


def pytest_unconfigure(config):
    global _TELEM, _ACTIVATION
    if _TELEM is None:
        return
    manifest = telemetry.run_manifest(
        "benchmark", seed=BENCH_SEED,
        scale=BENCH_SCALE, duration_days=BENCH_DAYS)
    manifest["wall_seconds"] = round(time.perf_counter() - _STARTED, 6)
    if BENCH_TRACE:
        _TELEM.write_trace(BENCH_TRACE, manifest=manifest)
    if BENCH_METRICS:
        _TELEM.write_metrics(BENCH_METRICS, manifest=manifest)
    _ACTIVATION.__exit__(None, None, None)
    _TELEM = None
    _ACTIVATION = None


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay this session's paper-vs-measured blocks into the terminal
    summary — this is the same channel the benchmark table uses, so the
    comparison survives redirects and tee."""
    text = ""
    if RESULTS_PATH.exists():
        with RESULTS_PATH.open(encoding="utf-8") as fh:
            fh.seek(_SESSION_OFFSET)
            text = fh.read()
    if text.strip():
        terminalreporter.section("paper vs measured")
        for line in text.splitlines():
            terminalreporter.write_line(line)


def report(title: str, *lines: str) -> None:
    """Record a paper-vs-measured comparison block.

    Blocks are collected in ``benchmarks/latest_results.txt`` and replayed
    at the end of the pytest session.
    """
    block = [f"=== {title} ==="] + list(lines)
    with RESULTS_PATH.open("a", encoding="utf-8") as fh:
        fh.write("\n".join(block) + "\n\n")


def record_bench_json(path: Path, results: dict) -> dict:
    """Write ``results`` as the dated ``latest`` entry of a committed
    BENCH_*.json file, pushing any previous latest onto ``history``.

    Measurements are append-only: re-running a bench never erases the
    numbers an earlier PR recorded.  Pre-history files (a bare results
    object) are adopted as the first history entry.
    """
    import json

    document = {"history": []}
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except ValueError:
            previous = None
        if isinstance(previous, dict) and "latest" in previous:
            document["history"] = list(previous.get("history", []))
            if previous["latest"]:
                document["history"].append(previous["latest"])
        elif isinstance(previous, dict) and previous:
            previous.setdefault("recorded", "pre-history")
            document["history"].append(previous)
    document["latest"] = dict(results,
                              recorded=time.strftime("%Y-%m-%d %H:%M:%S"))
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


@pytest.fixture(scope="session")
def bench_config() -> ScenarioConfig:
    return ScenarioConfig.paper(scale=BENCH_SCALE, duration_days=BENCH_DAYS,
                                seed=BENCH_SEED)


@pytest.fixture(scope="session")
def scenario_result(bench_config):
    result = run_scenario(bench_config)
    report(
        f"scenario (scale={BENCH_SCALE}, {BENCH_DAYS:g} days, seed={BENCH_SEED})",
        f"members={len(result.ixp)}  planned events={len(result.plan.events)}",
        f"control messages={len(result.control)}  sampled packets={len(result.data)}",
    )
    return result


@pytest.fixture(scope="session")
def pipeline(scenario_result) -> AnalysisPipeline:
    return AnalysisPipeline(
        scenario_result.control,
        scenario_result.data,
        peer_asns=scenario_result.ixp.member_asns,
        peeringdb=scenario_result.ixp.peeringdb,
    )


@pytest.fixture(scope="session")
def events(pipeline):
    return pipeline.events


@pytest.fixture(scope="session")
def pre_classification(pipeline):
    return pipeline.pre_classification


@pytest.fixture(scope="session")
def event_traffic(pipeline):
    return pipeline.event_traffic


@pytest.fixture(scope="session")
def host_study(pipeline):
    return pipeline.host_study


def once(benchmark, fn):
    """Benchmark an expensive analysis with a single round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
