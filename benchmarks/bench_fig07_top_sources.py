"""Fig. 7 — reaction of the top-100 source (handover) ASes to /32 RTBHs.

Paper: of the top 100 traffic sources, only 32 drop more than 99% of the
traffic, 55 forward more than 99%, and 13 behave inconsistently. The mix
follows the member policy landscape; at the benchmark's reduced member
count the top-N is scaled accordingly.
"""

from benchmarks.conftest import BENCH_SCALE, once, report
from repro.core.droprate import reaction_buckets, top_source_reactions


def test_bench_fig07_top_sources(benchmark, pipeline, events):
    top_n = max(10, round(100 * max(BENCH_SCALE, 0.2)))
    reactions = once(benchmark, lambda: top_source_reactions(
        pipeline.data, events, top_n=top_n))
    buckets = reaction_buckets(reactions)
    n = len(reactions)
    report(
        f"Fig. 7 — top-{n} source ASes' reaction to /32 RTBHs",
        "paper:    top-100: 32 drop >99%, 55 forward >99%, 13 inconsistent",
        f"measured: top-{n}: {buckets['drop_ge_99']} drop >99%, "
        f"{buckets['forward_ge_99']} forward >99%, "
        f"{buckets['inconsistent']} inconsistent",
    )
    assert buckets["drop_ge_99"] > 0
    assert buckets["forward_ge_99"] > 0
    assert buckets["inconsistent"] > 0
    # forwarders outnumber or match droppers (default configs dominate)
    assert buckets["forward_ge_99"] >= 0.5 * buckets["drop_ge_99"]
