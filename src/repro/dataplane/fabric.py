"""The IXP switching fabric.

Models the layer-2 view the paper measures: every member connects a router
with a known MAC and a peering-LAN IP; routes announce a next-hop IP which
the fabric resolves to a MAC. The blackholing service announces a special
next-hop IP that maps to the *blackhole MAC* — a MAC no port forwards — so
any packet resolved to it is dropped on the fabric, which is exactly how
the IXP identifies dropped traffic in its IPFIX samples (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.bgp.route_server import RouteServerPeer
from repro.errors import FabricError
from repro.net.ip import IPv4Address, IPv4Prefix
from repro.net.mac import MACAddress
from repro.net.radix import RadixTree
from repro import telemetry

#: The locally-administered MAC the blackhole next hop resolves to.
BLACKHOLE_MAC = MACAddress("de:ad:be:ef:06:66")


@dataclass(frozen=True)
class PortBinding:
    """One member router attached to the fabric."""

    member_asn: int
    router_mac: MACAddress
    router_ip: IPv4Address


class SwitchingFabric:
    """Next-hop resolution on the peering LAN.

    Keeps the ARP-like next-hop-IP → MAC table, an ownership table of which
    member's router a destination prefix is normally delivered to, and the
    blackhole binding. :meth:`forward` answers, for a packet entering from
    one member towards a destination IP, which MAC it leaves towards — and
    whether that means it was dropped.
    """

    def __init__(self, blackhole_ip: IPv4Address,
                 blackhole_mac: MACAddress = BLACKHOLE_MAC):
        self.blackhole_ip = blackhole_ip
        self.blackhole_mac = blackhole_mac
        self._bindings: Dict[int, PortBinding] = {}
        self._mac_by_ip: Dict[int, MACAddress] = {int(blackhole_ip): blackhole_mac}
        self._owner: RadixTree[int] = RadixTree()

    # -- attachment -----------------------------------------------------------

    def attach(self, member_asn: int, router_mac: MACAddress,
               router_ip: IPv4Address) -> PortBinding:
        """Attach a member router; MACs and IPs must be unique on the LAN."""
        if member_asn in self._bindings:
            raise FabricError(f"AS{member_asn} already attached")
        if int(router_ip) in self._mac_by_ip:
            raise FabricError(f"peering IP {router_ip} already in use")
        if any(b.router_mac == router_mac for b in self._bindings.values()):
            raise FabricError(f"MAC {router_mac} already in use")
        binding = PortBinding(member_asn, router_mac, router_ip)
        self._bindings[member_asn] = binding
        self._mac_by_ip[int(router_ip)] = router_mac
        return binding

    def binding(self, member_asn: int) -> PortBinding:
        try:
            return self._bindings[member_asn]
        except KeyError:
            raise FabricError(f"AS{member_asn} not attached") from None

    def claim_prefix(self, prefix: IPv4Prefix, member_asn: int) -> None:
        """Record that traffic to ``prefix`` is normally handed to this
        member (the victim-side default when no blackhole route exists)."""
        if member_asn not in self._bindings:
            raise FabricError(f"AS{member_asn} not attached")
        self._owner.insert(prefix, member_asn)

    def owner_of(self, dst_ip: IPv4Address | int) -> Optional[int]:
        hit = self._owner.lookup(dst_ip)
        return None if hit is None else hit[1]

    def resolve_mac(self, next_hop: IPv4Address) -> MACAddress:
        try:
            return self._mac_by_ip[int(next_hop)]
        except KeyError:
            raise FabricError(f"no MAC known for next hop {next_hop}") from None

    # -- forwarding ------------------------------------------------------------

    def forward(self, ingress_peer: RouteServerPeer,
                dst_ip: IPv4Address | int) -> Tuple[Optional[MACAddress], bool]:
        """Resolve the egress MAC for a packet from ``ingress_peer``.

        The ingress member's Loc-RIB (route-server-learned routes, including
        any accepted blackholes) wins over the static ownership table.
        Returns ``(mac, dropped)``; ``mac`` is ``None`` when nothing at the
        IXP knows the destination.
        """
        counter = telemetry.current().counter
        route = ingress_peer.loc_rib.lookup(dst_ip)
        if route is not None:
            mac = self.resolve_mac(route.next_hop)
            dropped = mac == self.blackhole_mac
            counter("fabric.forwards",
                    outcome="dropped" if dropped else "routed").inc()
            return mac, dropped
        owner = self.owner_of(dst_ip)
        if owner is None:
            counter("fabric.forwards", outcome="unknown").inc()
            return None, False
        counter("fabric.forwards", outcome="owner").inc()
        return self._bindings[owner].router_mac, False

    @property
    def member_asns(self) -> list[int]:
        return sorted(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)
