"""Flow specifications: the unit of traffic the generators emit.

A :class:`FlowSpec` describes one unidirectional 5-tuple aggregate crossing
the IXP during a time interval at a constant mean packet rate. The IPFIX
sampler thins each spec statistically (Poisson with mean
``pps * duration / sampling_rate``) into individual sampled packet records —
the only representation the study ever observes, so per-packet simulation
of the unsampled stream is deliberately skipped (see DESIGN.md §5).

``label`` carries generator ground truth (attack vs legitimate vs scan).
The analysis pipeline never reads it; validation tests do.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.errors import ScenarioError


class FlowLabel(IntEnum):
    """Ground-truth class of a generated flow (never used by analyses)."""

    UNKNOWN = 0
    LEGIT = 1
    ATTACK = 2
    SCAN = 3
    BILATERAL_BLACKHOLE = 4


@dataclass(frozen=True)
class FlowSpec:
    """One 5-tuple traffic aggregate over ``[start, start + duration)``.

    ``ingress_asn`` is the IXP member handing the traffic over (the paper's
    *handover AS*, derived there from source MACs); ``origin_asn`` the AS
    hosting the source address (the paper's *origin AS*).
    """

    start: float
    duration: float
    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int
    pps: float
    mean_packet_size: float
    ingress_asn: int
    origin_asn: int
    label: FlowLabel = FlowLabel.UNKNOWN

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ScenarioError(f"flow duration must be positive: {self.duration}")
        if self.pps <= 0:
            raise ScenarioError(f"flow pps must be positive: {self.pps}")
        if not 40 <= self.mean_packet_size <= 9000:
            raise ScenarioError(
                f"mean packet size implausible: {self.mean_packet_size}"
            )
        if not 0 <= self.src_port <= 0xFFFF or not 0 <= self.dst_port <= 0xFFFF:
            raise ScenarioError("transport ports must be u16")

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def expected_packets(self) -> float:
        """Mean number of (unsampled) packets in the interval."""
        return self.pps * self.duration

    @property
    def expected_bytes(self) -> float:
        return self.expected_packets * self.mean_packet_size
