"""Statistical 1:N IPFIX packet sampling.

The IXP samples 1 out of ``rate`` packets at every member-facing edge port
(§3.1 of the paper uses 1:10,000). For a flow emitting ``pps`` packets per
second over ``duration`` seconds, the number of *sampled* packets is
Poisson-distributed with mean ``pps * duration / rate`` and the sample
times are uniform over the interval — exactly the thinning property of a
Poisson/deterministic sampler over a stationary flow. The sampler therefore
draws the sampled stream directly, which is what makes 100-day corpora
tractable (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dataplane.flow import FlowSpec
from repro.dataplane.packet import PACKET_DTYPE
from repro import telemetry

#: The paper's sampling rate: 1 packet out of 10,000.
SAMPLING_RATE_DEFAULT = 10_000

_MIN_PACKET = 40
_MAX_PACKET = 1500


class IPFIXSampler:
    """Draws sampled packet records from flow specifications.

    Packet sizes are normal around the flow's mean with a configurable
    relative spread, clipped to Ethernet bounds. All randomness comes from
    the generator handed in, keeping scenario runs reproducible.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate: int = SAMPLING_RATE_DEFAULT,
        size_spread: float = 0.08,
    ):
        if rate < 1:
            raise ValueError(f"sampling rate must be >= 1: {rate}")
        if not 0 <= size_spread < 1:
            raise ValueError(f"size_spread must be in [0, 1): {size_spread}")
        self._rng = rng
        self.rate = rate
        self.size_spread = size_spread

    def sample(self, flows: Sequence[FlowSpec]) -> np.ndarray:
        """Sample all flows into one unsorted `PACKET_DTYPE` array.

        The ``dropped`` column is left False; marking drops against the
        blackhole acceptance timeline is the fabric's job.
        """
        telem = telemetry.current()
        telem.counter("sampler.flows_offered").inc(len(flows))
        if not flows:
            return np.zeros(0, dtype=PACKET_DTYPE)

        starts = np.fromiter((f.start for f in flows), dtype=np.float64, count=len(flows))
        durations = np.fromiter((f.duration for f in flows), dtype=np.float64, count=len(flows))
        pps = np.fromiter((f.pps for f in flows), dtype=np.float64, count=len(flows))
        counts = self._rng.poisson(pps * durations / self.rate)
        total = int(counts.sum())
        telem.counter("sampler.packets_sampled").inc(total)
        out = np.zeros(total, dtype=PACKET_DTYPE)
        if total == 0:
            return out

        idx = np.repeat(np.arange(len(flows)), counts)
        out["time"] = starts[idx] + self._rng.random(total) * durations[idx]

        def column(getter, dtype):
            vals = np.fromiter((getter(f) for f in flows), dtype=dtype, count=len(flows))
            return vals[idx]

        out["src_ip"] = column(lambda f: f.src_ip, np.uint32)
        out["dst_ip"] = column(lambda f: f.dst_ip, np.uint32)
        out["protocol"] = column(lambda f: f.protocol, np.uint8)
        out["src_port"] = column(lambda f: f.src_port, np.uint16)
        out["dst_port"] = column(lambda f: f.dst_port, np.uint16)
        out["ingress_asn"] = column(lambda f: f.ingress_asn, np.uint32)
        out["origin_asn"] = column(lambda f: f.origin_asn, np.uint32)
        out["label"] = column(lambda f: int(f.label), np.uint8)

        means = column(lambda f: f.mean_packet_size, np.float64)
        sizes = means * (1.0 + self._rng.standard_normal(total) * self.size_spread)
        out["size"] = np.clip(np.rint(sizes), _MIN_PACKET, _MAX_PACKET).astype(np.uint16)
        return out

    def sample_sorted(self, flows: Sequence[FlowSpec]) -> np.ndarray:
        """Like :meth:`sample`, time-ordered."""
        packets = self.sample(flows)
        return packets[np.argsort(packets["time"], kind="stable")]
