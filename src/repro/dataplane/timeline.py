"""Blackhole acceptance timelines.

The scenario runner replays BGP updates through the route server and, via a
listener, records for every (member, prefix) the time intervals during
which the member had an *accepted* blackhole route installed — plus, per
prefix, the intervals during which *any* announcer kept the blackhole
active at the route server. Sampled packets are then marked dropped by an
exact per-packet interval test, which gives the corpus the sharp
announce/withdraw edges the paper's time-offset estimator (Fig. 2) and
drop-rate analyses (Figs 5–7) rely on.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.errors import FabricError
from repro.net.ip import IPv4Prefix
from repro.net.radix import RadixTree


class IntervalSet:
    """A set of disjoint, sorted half-open time intervals.

    Built incrementally with :meth:`open_at` / :meth:`close_at` (one level,
    no nesting) and then :meth:`finalize`-d, after which vectorized
    membership queries are available.
    """

    def __init__(self) -> None:
        self._intervals: List[Tuple[float, float]] = []
        self._open_since: float | None = None
        self._starts: np.ndarray | None = None
        self._ends: np.ndarray | None = None

    def open_at(self, time: float) -> None:
        if self._starts is not None:
            raise FabricError("IntervalSet already finalized")
        if self._open_since is not None:
            raise FabricError(f"interval already open since {self._open_since}")
        if self._intervals and time < self._intervals[-1][1]:
            raise FabricError("intervals must be opened in time order")
        self._open_since = time

    def close_at(self, time: float) -> None:
        if self._starts is not None:
            raise FabricError("IntervalSet already finalized")
        if self._open_since is None:
            raise FabricError("no open interval to close")
        if time < self._open_since:
            raise FabricError("interval closed before it opened")
        if time > self._open_since:  # zero-length intervals are dropped
            self._intervals.append((self._open_since, time))
        self._open_since = None

    @property
    def is_open(self) -> bool:
        return self._open_since is not None

    def finalize(self, end_time: float) -> "IntervalSet":
        """Close any dangling interval at ``end_time`` and freeze."""
        if self._open_since is not None:
            self.close_at(max(end_time, self._open_since))
        if self._starts is None:
            self._starts = np.array([s for s, _ in self._intervals], dtype=np.float64)
            self._ends = np.array([e for _, e in self._intervals], dtype=np.float64)
        return self

    def contains(self, times: np.ndarray) -> np.ndarray:
        """Vectorized membership: a boolean per query time."""
        if self._starts is None:
            raise FabricError("IntervalSet not finalized")
        if len(self._starts) == 0:
            return np.zeros(len(times), dtype=bool)
        idx = np.searchsorted(self._starts, times, side="right") - 1
        valid = idx >= 0
        out = np.zeros(len(times), dtype=bool)
        out[valid] = times[valid] < self._ends[idx[valid]]
        return out

    def contains_scalar(self, time: float) -> bool:
        return bool(self.contains(np.array([time]))[0])

    @classmethod
    def union(cls, sets: "Iterable[IntervalSet]") -> "IntervalSet":
        """The union of several (finalized or not) interval sets, finalized."""
        windows: List[Tuple[float, float]] = []
        for iset in sets:
            windows.extend(iset.intervals)
        windows.sort()
        merged = cls()
        end_time = 0.0
        current: Tuple[float, float] | None = None
        for start, end in windows:
            if current is None:
                current = (start, end)
            elif start <= current[1]:
                current = (current[0], max(current[1], end))
            else:
                merged.open_at(current[0])
                merged.close_at(current[1])
                current = None
                current = (start, end)
            end_time = max(end_time, end)
        if current is not None:
            merged.open_at(current[0])
            merged.close_at(current[1])
        return merged.finalize(end_time)

    @property
    def intervals(self) -> List[Tuple[float, float]]:
        if self._starts is not None:
            return list(zip(self._starts.tolist(), self._ends.tolist()))
        return list(self._intervals)

    def total_duration(self) -> float:
        return float(sum(e - s for s, e in self.intervals))

    def __len__(self) -> int:
        return len(self.intervals)


class AcceptanceTimeline:
    """Per-(member, prefix) accepted-blackhole intervals plus the
    server-level announced intervals per prefix."""

    def __init__(self) -> None:
        self._accepted: Dict[Tuple[int, IPv4Prefix], IntervalSet] = defaultdict(IntervalSet)
        #: refcount of concurrent announcers per prefix at the server
        self._announce_count: Dict[IPv4Prefix, int] = defaultdict(int)
        self._announced: Dict[IPv4Prefix, IntervalSet] = defaultdict(IntervalSet)
        self._prefix_tree: RadixTree[bool] = RadixTree()
        self._finalized = False

    # -- recording ------------------------------------------------------------

    def record_acceptance(self, member_asn: int, prefix: IPv4Prefix,
                          accepted: bool, time: float) -> None:
        """Record a change of the member's accepted state for ``prefix``."""
        iset = self._accepted[(member_asn, prefix)]
        if accepted and not iset.is_open:
            iset.open_at(time)
        elif not accepted and iset.is_open:
            iset.close_at(time)

    def record_server_announce(self, prefix: IPv4Prefix, time: float) -> None:
        self._prefix_tree.insert(prefix, True)
        self._announce_count[prefix] += 1
        if self._announce_count[prefix] == 1:
            self._announced[prefix].open_at(time)

    def record_server_withdraw(self, prefix: IPv4Prefix, time: float) -> None:
        if self._announce_count[prefix] == 0:
            return  # withdraw without announce: tolerated, like the server
        self._announce_count[prefix] -= 1
        if self._announce_count[prefix] == 0:
            self._announced[prefix].close_at(time)

    def finalize(self, end_time: float) -> "AcceptanceTimeline":
        for iset in self._accepted.values():
            iset.finalize(end_time)
        for iset in self._announced.values():
            iset.finalize(end_time)
        self._finalized = True
        return self

    # -- queries ----------------------------------------------------------------

    def blackhole_prefixes(self) -> List[IPv4Prefix]:
        """Every prefix that was ever announced as a blackhole."""
        return [p for p, _ in self._prefix_tree.items()]

    def covering_prefixes(self, dst_ip: int) -> List[IPv4Prefix]:
        """Blackhole prefixes (ever announced) covering ``dst_ip``."""
        return [p for p, _ in self._prefix_tree.lookup_all(dst_ip)]

    def accepted_intervals(self, member_asn: int, prefix: IPv4Prefix) -> IntervalSet | None:
        return self._accepted.get((member_asn, prefix))

    def announced_intervals(self, prefix: IPv4Prefix) -> IntervalSet | None:
        return self._announced.get(prefix)

    def was_dropped(self, member_asn: int, dst_ip: int, time: float) -> bool:
        """Whether a packet from ``member_asn`` to ``dst_ip`` at ``time``
        would have hit an accepted blackhole route."""
        for prefix in self.covering_prefixes(dst_ip):
            iset = self._accepted.get((member_asn, prefix))
            if iset is not None and iset.contains_scalar(time):
                return True
        return False

    # -- bulk marking --------------------------------------------------------------

    def mark_dropped(self, packets: np.ndarray) -> np.ndarray:
        """Set the ``dropped`` column of a packet array in place.

        Packets are grouped by (ingress member, destination IP); each group
        shares its covering blackhole prefixes, so the per-interval test
        vectorizes over the group's timestamps.
        """
        if not self._finalized:
            raise FabricError("finalize() the timeline before marking packets")
        if len(packets) == 0:
            return packets
        key = packets["ingress_asn"].astype(np.uint64) << np.uint64(32)
        key |= packets["dst_ip"].astype(np.uint64)
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        boundaries = np.flatnonzero(np.r_[True, sorted_key[1:] != sorted_key[:-1]])
        boundaries = np.r_[boundaries, len(sorted_key)]
        dropped = packets["dropped"]
        times = packets["time"]
        for gi in range(len(boundaries) - 1):
            rows = order[boundaries[gi]:boundaries[gi + 1]]
            ingress = int(packets["ingress_asn"][rows[0]])
            dst_ip = int(packets["dst_ip"][rows[0]])
            hit = None
            for prefix in self.covering_prefixes(dst_ip):
                iset = self._accepted.get((ingress, prefix))
                if iset is None or len(iset) == 0:
                    continue
                inside = iset.contains(times[rows])
                hit = inside if hit is None else (hit | inside)
            if hit is not None:
                dropped[rows] |= hit
        return packets


def build_timeline(updates: Iterable, server) -> AcceptanceTimeline:
    """Replay ``updates`` through ``server`` while recording the timeline.

    Convenience wrapper for tests and small studies; the scenario runner
    wires the listener itself.
    """
    from repro.dataplane.listener import TimelineRecorder

    recorder = TimelineRecorder(server)
    last_time = 0.0
    for update in updates:
        server.process(update)
        last_time = max(last_time, update.time)
    return recorder.timeline.finalize(last_time)
