"""Sampled packet records.

The corpus stores packets as a numpy structured array (`PACKET_DTYPE`) for
bulk analysis; :class:`SampledPacket` is the ergonomic per-record view used
at API boundaries and in tests. The MAC→AS mapping the paper performs on raw
IPFIX has already been applied: records carry ``ingress_asn`` directly, and
membership of the destination MAC in the blackhole is the ``dropped`` flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

import numpy as np

#: Structured dtype of the data-plane corpus. ``time`` is on the data-plane
#: clock; ``label`` is generator ground truth (FlowLabel).
PACKET_DTYPE = np.dtype(
    [
        ("time", "f8"),
        ("src_ip", "u4"),
        ("dst_ip", "u4"),
        ("protocol", "u1"),
        ("src_port", "u2"),
        ("dst_port", "u2"),
        ("size", "u2"),
        ("ingress_asn", "u4"),
        ("origin_asn", "u4"),
        ("dropped", "?"),
        ("label", "u1"),
    ]
)


@dataclass(frozen=True)
class SampledPacket:
    """One sampled packet, mirroring a `PACKET_DTYPE` row."""

    time: float
    src_ip: int
    dst_ip: int
    protocol: int
    src_port: int
    dst_port: int
    size: int
    ingress_asn: int
    origin_asn: int
    dropped: bool
    label: int = 0

    @classmethod
    def from_row(cls, row: np.void) -> "SampledPacket":
        return cls(
            time=float(row["time"]),
            src_ip=int(row["src_ip"]),
            dst_ip=int(row["dst_ip"]),
            protocol=int(row["protocol"]),
            src_port=int(row["src_port"]),
            dst_port=int(row["dst_port"]),
            size=int(row["size"]),
            ingress_asn=int(row["ingress_asn"]),
            origin_asn=int(row["origin_asn"]),
            dropped=bool(row["dropped"]),
            label=int(row["label"]),
        )

    def to_row(self) -> tuple:
        return (
            self.time, self.src_ip, self.dst_ip, self.protocol, self.src_port,
            self.dst_port, self.size, self.ingress_asn, self.origin_asn,
            self.dropped, self.label,
        )


def packets_to_array(packets: list[SampledPacket]) -> np.ndarray:
    """Pack records into a `PACKET_DTYPE` array."""
    return np.array([p.to_row() for p in packets], dtype=PACKET_DTYPE)


def packets_from_arrays(columns: Mapping[str, np.ndarray]) -> np.ndarray:
    """Assemble a `PACKET_DTYPE` array from parallel column arrays.

    Missing columns default to zero; extra keys raise to catch typos.
    """
    lengths = {len(v) for v in columns.values()}
    if len(lengths) > 1:
        raise ValueError(f"column lengths differ: {sorted(lengths)}")
    unknown = set(columns) - set(PACKET_DTYPE.names)
    if unknown:
        raise ValueError(f"unknown packet columns: {sorted(unknown)}")
    n = lengths.pop() if lengths else 0
    out = np.zeros(n, dtype=PACKET_DTYPE)
    for name, values in columns.items():
        out[name] = values
    return out


def iter_packets(array: np.ndarray) -> Iterator[SampledPacket]:
    """Iterate a corpus array as :class:`SampledPacket` records."""
    for row in array:
        yield SampledPacket.from_row(row)
