"""Data-plane substrate: flow specifications, 1:N IPFIX packet sampling,
the IXP switching fabric with its blackhole MAC, and the per-member
blackhole-acceptance timeline used to mark sampled packets as dropped.
"""

from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.dataplane.packet import PACKET_DTYPE, SampledPacket, packets_from_arrays
from repro.dataplane.sampler import IPFIXSampler, SAMPLING_RATE_DEFAULT
from repro.dataplane.timeline import AcceptanceTimeline, IntervalSet
from repro.dataplane.fabric import BLACKHOLE_MAC, SwitchingFabric

__all__ = [
    "FlowSpec",
    "FlowLabel",
    "SampledPacket",
    "PACKET_DTYPE",
    "packets_from_arrays",
    "IPFIXSampler",
    "SAMPLING_RATE_DEFAULT",
    "AcceptanceTimeline",
    "IntervalSet",
    "SwitchingFabric",
    "BLACKHOLE_MAC",
]
