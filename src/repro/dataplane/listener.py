"""Bridges the route server's control plane into the acceptance timeline.

The recorder subscribes to a :class:`~repro.bgp.route_server.RouteServer`
and, after each processed update, diffs the per-peer accepted state for the
touched prefix against what it saw last. Only *blackhole* routes are
tracked — ordinary routes never send traffic to the blackhole MAC.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.bgp.message import BGPUpdate
from repro.bgp.route_server import RouteServer
from repro.dataplane.timeline import AcceptanceTimeline
from repro.net.ip import IPv4Prefix


class TimelineRecorder:
    """Listens to a route server and builds an :class:`AcceptanceTimeline`."""

    def __init__(self, server: RouteServer):
        self._server = server
        self.timeline = AcceptanceTimeline()
        #: per prefix: members currently holding an accepted blackhole
        self._accepted_now: Dict[IPv4Prefix, Set[int]] = {}
        #: prefixes currently announced as blackholes, with announcer sets
        self._announcers: Dict[IPv4Prefix, Set[int]] = {}
        server.subscribe(self._on_update)

    def _on_update(self, update: BGPUpdate) -> None:
        prefix = update.prefix
        self._track_server_state(update, prefix)
        self._track_acceptance(update.time, prefix)

    def _track_server_state(self, update: BGPUpdate, prefix: IPv4Prefix) -> None:
        announcers = self._announcers.setdefault(prefix, set())
        if update.is_announce and update.is_blackhole:
            if update.peer_asn not in announcers:
                announcers.add(update.peer_asn)
                self.timeline.record_server_announce(prefix, update.time)
        elif update.peer_asn in announcers:
            # withdraw, or re-announce without the blackhole community
            announcers.discard(update.peer_asn)
            self.timeline.record_server_withdraw(prefix, update.time)

    def _track_acceptance(self, time: float, prefix: IPv4Prefix) -> None:
        # Only peers that currently hold the route — or held it accepted
        # before this update — can change state; checking just those keeps
        # long scenario replays linear instead of O(updates × members).
        holders = self._accepted_now.setdefault(prefix, set())
        candidates = self._server.peers_with_route(prefix) | holders
        for asn in candidates:
            peer = self._server.peer(asn)
            route = peer.loc_rib.get(prefix)
            accepted = route is not None and route.is_blackhole
            if accepted and asn not in holders:
                holders.add(asn)
                self.timeline.record_acceptance(asn, prefix, True, time)
            elif not accepted and asn in holders:
                holders.discard(asn)
                self.timeline.record_acceptance(asn, prefix, False, time)
