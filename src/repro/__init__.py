"""repro — a full reproduction of *"Down the Black Hole: Dismantling
Operational Practices of BGP Blackholing at IXPs"* (IMC 2019).

The package has three layers:

1. **Substrates** (:mod:`repro.net`, :mod:`repro.bgp`,
   :mod:`repro.dataplane`, :mod:`repro.ixp`, :mod:`repro.traffic`,
   :mod:`repro.mitigation`) — a synthetic IXP with route server, member
   policies, blackholing service, switching fabric and IPFIX sampling.
2. **Scenario** (:mod:`repro.scenario`, :mod:`repro.corpus`) — generates
   the paper-shaped measurement corpora (control-plane BGP log +
   data-plane sampled packets).
3. **Analysis** (:mod:`repro.core`, :mod:`repro.stats`) — the paper's
   measurement pipeline, reproducing every figure and table.

Quickstart::

    from repro import ScenarioConfig, run_scenario, AnalysisPipeline

    result = run_scenario(ScenarioConfig.paper(scale=0.02, duration_days=30))
    pipeline = AnalysisPipeline(result.control, result.data,
                                peer_asns=result.ixp.member_asns,
                                peeringdb=result.ixp.peeringdb)
    print(pipeline.table2_pre_classes())
"""

from repro.core.pipeline import AnalysisPipeline
from repro.core.study import AnalysisStatus, StudyReport
from repro.corpus import (
    ControlPlaneCorpus,
    DataPlaneCorpus,
    validate_corpus,
    write_manifest,
)
from repro.scenario import ScenarioConfig, ScenarioResult, run_scenario

__version__ = "1.1.0"

__all__ = [
    "AnalysisPipeline",
    "AnalysisStatus",
    "ControlPlaneCorpus",
    "DataPlaneCorpus",
    "ScenarioConfig",
    "ScenarioResult",
    "StudyReport",
    "run_scenario",
    "validate_corpus",
    "write_manifest",
    "__version__",
]
