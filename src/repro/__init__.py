"""repro — a full reproduction of *"Down the Black Hole: Dismantling
Operational Practices of BGP Blackholing at IXPs"* (IMC 2019).

The package has three layers:

1. **Substrates** (:mod:`repro.net`, :mod:`repro.bgp`,
   :mod:`repro.dataplane`, :mod:`repro.ixp`, :mod:`repro.traffic`,
   :mod:`repro.mitigation`) — a synthetic IXP with route server, member
   policies, blackholing service, switching fabric and IPFIX sampling.
2. **Scenario** (:mod:`repro.scenario`, :mod:`repro.corpus`) — generates
   the paper-shaped measurement corpora (control-plane BGP log +
   data-plane sampled packets).
3. **Analysis** (:mod:`repro.core`, :mod:`repro.stats`) — the paper's
   measurement pipeline, reproducing every figure and table.

Most callers only need the facade (see :mod:`repro.api`)::

    from repro import Study, GenerateOptions

    study = Study.generate("corpus/", options=GenerateOptions(
        scale=0.02, duration_days=5))
    report = study.analyze()
    print(report.format())

The layers underneath stay importable for fine-grained work::

    from repro import ScenarioConfig, run_scenario, AnalysisPipeline

    result = run_scenario(ScenarioConfig.paper(scale=0.02, duration_days=30))
    pipeline = AnalysisPipeline(result.control, result.data,
                                peer_asns=result.ixp.member_asns,
                                peeringdb=result.ixp.peeringdb)
    print(pipeline.run("table2_pre_classes"))
"""

from repro.api import (
    AnalyzeOptions,
    GenerateOptions,
    StreamOptions,
    Study,
)
from repro.core.pipeline import AnalysisPipeline
from repro.core.registry import ANALYSES, AnalysisSpec, get_analysis
from repro.core.study import AnalysisStatus, StudyReport
from repro.corpus import (
    ControlPlaneCorpus,
    DataPlaneCorpus,
    validate_corpus,
    write_manifest,
)
from repro.corpus.ingest import ErrorPolicy
from repro.scenario import ScenarioConfig, ScenarioResult, run_scenario

__version__ = "1.2.0"

__all__ = [
    "ANALYSES",
    "AnalysisPipeline",
    "AnalysisSpec",
    "AnalysisStatus",
    "AnalyzeOptions",
    "ControlPlaneCorpus",
    "DataPlaneCorpus",
    "ErrorPolicy",
    "GenerateOptions",
    "ScenarioConfig",
    "ScenarioResult",
    "StreamOptions",
    "Study",
    "StudyReport",
    "get_analysis",
    "run_scenario",
    "validate_corpus",
    "write_manifest",
    "__version__",
]
