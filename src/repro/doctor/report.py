"""Typed damage and repair vocabulary for the integrity doctor.

A scrub pass produces a :class:`DamageReport`: one :class:`Damage` per
broken artifact, naming *what* is damaged (artifact path + kind), *how*
(a stable damage-class tag), *how bad* (severity), and *what the repair
engine would do about it* (a repair-plan tag plus the parameters the
plan needs, e.g. the byte offset a torn journal must be truncated at).
The repair engine then produces a :class:`RepairReport`: one
:class:`RepairAction` per plan it executed, plus the damages it had to
declare unrecoverable (those artifacts are quarantined, never silently
dropped).

Both reports render for humans (``format``) and machines (``to_json``);
the CLI's ``--json`` output is exactly ``to_json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: severity levels, mirroring ValidationIssue
SEVERITIES = ("warning", "error")


@dataclass(frozen=True)
class Damage:
    """One damaged durable artifact found by the scrub pass."""

    #: corpus-relative path of the damaged artifact
    artifact: str
    #: artifact kind: "journal" | "segment" | "corpus-file" | "manifest" |
    #: "columnar-segment" | "stream-checkpoint" | "cache-entry" |
    #: "obs-snapshot" | "obs-events" | "tap-offset" | "tmp"
    kind: str
    #: stable damage-class tag, e.g. "torn-tail", "checksum-drift"
    damage: str
    severity: str
    detail: str
    #: repair-plan tag the engine dispatches on, e.g. "truncate-journal"
    plan: str
    #: plan parameters (byte offsets, day numbers, stored config, …)
    context: dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        return (f"[{self.severity}] {self.kind}/{self.damage} "
                f"{self.artifact}: {self.detail} (repair: {self.plan})")

    def to_json(self) -> dict:
        return {"artifact": self.artifact, "kind": self.kind,
                "damage": self.damage, "severity": self.severity,
                "detail": self.detail, "plan": self.plan,
                "context": dict(self.context)}


@dataclass
class DamageReport:
    """Everything one scrub pass learned about a corpus directory."""

    corpus_dir: str
    damages: List[Damage] = field(default_factory=list)
    #: artifact kind -> how many artifacts of that kind were examined
    scanned: Dict[str, int] = field(default_factory=dict)
    #: whether file contents were re-hashed (deep) or only structure,
    #: sizes, and schemas were checked (quick — the watch scrub tick)
    deep: bool = True

    @property
    def clean(self) -> bool:
        return not self.damages

    @property
    def errors(self) -> List[Damage]:
        return [d for d in self.damages if d.severity == "error"]

    def add(self, damage: Damage) -> None:
        self.damages.append(damage)

    def count(self, kind: str, n: int = 1) -> None:
        self.scanned[kind] = self.scanned.get(kind, 0) + n

    def classes(self) -> List[str]:
        return sorted({d.damage for d in self.damages})

    def format(self) -> str:
        mode = "deep" if self.deep else "quick"
        total = sum(self.scanned.values())
        lines = [f"doctor {self.corpus_dir}: "
                 f"{'CLEAN' if self.clean else 'DAMAGED'} "
                 f"({mode} scrub, {total} artifacts examined)"]
        for damage in self.damages:
            lines.append(f"  {damage}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "corpus_dir": self.corpus_dir,
            "clean": self.clean,
            "deep": self.deep,
            "scanned": dict(self.scanned),
            "damages": [d.to_json() for d in self.damages],
        }


@dataclass
class RepairAction:
    """One repair plan the engine executed (or failed to)."""

    plan: str
    artifact: str
    ok: bool
    detail: str = ""

    def __str__(self) -> str:
        status = "repaired" if self.ok else "FAILED"
        tail = f": {self.detail}" if self.detail else ""
        return f"{status} {self.plan} {self.artifact}{tail}"

    def to_json(self) -> dict:
        return {"plan": self.plan, "artifact": self.artifact,
                "ok": self.ok, "detail": self.detail}


@dataclass
class RepairReport:
    """What one ``doctor --repair`` pass did."""

    corpus_dir: str
    actions: List[RepairAction] = field(default_factory=list)
    #: damages no redundancy exists for; their artifacts were quarantined
    unrecoverable: List[Damage] = field(default_factory=list)
    #: the post-repair verification scrub (attached by the caller)
    verified: Optional[DamageReport] = None

    @property
    def ok(self) -> bool:
        """Every executed action succeeded and nothing was unrecoverable."""
        return (all(action.ok for action in self.actions)
                and not self.unrecoverable)

    def format(self) -> str:
        lines = [f"doctor --repair {self.corpus_dir}: "
                 f"{len(self.actions)} actions, "
                 f"{len(self.unrecoverable)} unrecoverable"]
        for action in self.actions:
            lines.append(f"  {action}")
        for damage in self.unrecoverable:
            lines.append(f"  unrecoverable: {damage}")
        if self.verified is not None:
            lines.append(f"  re-scrub: "
                         f"{'CLEAN' if self.verified.clean else 'DAMAGED'}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "corpus_dir": self.corpus_dir,
            "ok": self.ok,
            "actions": [a.to_json() for a in self.actions],
            "unrecoverable": [d.to_json() for d in self.unrecoverable],
            "verified": None if self.verified is None
            else self.verified.to_json(),
        }
