"""The repair engine: heal scrubbed damage from redundancy.

Every repair is **idempotent** (running it twice equals running it once)
and **journaled** (committed to ``.doctor.checkpoint.jsonl`` — the same
fsynced append-only journal the rest of the runtime uses — so a repair
pass SIGKILLed half-way leaves an audit trail and the next pass simply
re-scrubs and finishes the remainder).  Repairs draw on the redundancy
the state plane already carries:

===========================  ==============================================
damage                       repair source
===========================  ==============================================
journal torn tail            truncate at the last valid entry (the byte
                             offset the scrub recorded)
derived journal bad header   discard (analyze/doctor journals rebuild on
                             demand)
synthetic segment/file loss  ``generate --resume`` — the scenario is
                             deterministic in (scale, days, seed), which
                             ``platform.json`` records and the journal
                             header's config hash cross-checks
tap segment loss             re-slice the finalized corpus files using the
                             per-segment byte counts in the journal; when
                             the slice no longer checksums, truncate the
                             commit log at the damaged day instead
manifest garbled             rebuild from disk, cross-checked against the
                             finalize entry's file checksums
stream checkpoint            replay the commit log with the checkpoint's
                             own stored config; garbled → discard (derived)
columnar sidecar damaged     re-derive both sidecars from the finalized
                             corpus files (sidecars are derived state)
cache entry drift            evict (entries are memoization, never truth)
obs snapshot / events        discard / trim (operator forensics)
tap offset beyond source     rewind to zero
===========================  ==============================================

What has no redundancy left is **quarantined** into
``.doctor.quarantine/``, never silently deleted.
"""

from __future__ import annotations

import io
import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    file_sha256,
    write_manifest,
)
from repro.errors import DoctorError, ReproError
from repro.doctor.report import (
    Damage,
    DamageReport,
    RepairAction,
    RepairReport,
)
from repro.doctor.scrub import (
    DOCTOR_JOURNAL_FILE,
    DOCTOR_QUARANTINE_DIR,
    JournalScan,
    generation_params,
    journal_days,
    scan_journal_file,
    scrub_corpus,
)
from repro.runtime.atomic import atomic_write_text, atomic_writer, fsync_dir
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.generate import (
    FINALIZE_KEY,
    JOURNAL_FILE,
    SEGMENT_DIR,
    _segment_key,
    _segment_name,
)

#: execution order of repair plans — journals first (later repairs read
#: them), then content, then derived state
PLAN_ORDER = (
    "remove-tmp",
    "truncate-journal",
    "discard-journal",
    "rebuild-tap-journal",
    "repair-tap-segments",
    "regenerate",
    "refinalize",
    "rebuild-manifest",
    "rederive-columnar",
    "rebuild-stream-checkpoint",
    "discard-stream-checkpoint",
    "evict-cache-entry",
    "reset-tap-offset",
    "discard-obs-snapshot",
    "trim-events",
    "quarantine",
)


def repair_corpus(corpus_dir: str | Path,
                  report: Optional[DamageReport] = None, *,
                  deep: bool = True,
                  cache_dir: str | Path | None = None) -> RepairReport:
    """Execute the repair plan for every damage in ``report``.

    With ``report=None`` a fresh scrub runs first.  Returns a
    :class:`RepairReport`; callers wanting proof of convergence re-scrub
    afterwards (the CLI does, attaching it as ``verified``).
    """
    corpus = Path(corpus_dir)
    if report is None:
        report = scrub_corpus(corpus, deep=deep, cache_dir=cache_dir)
    result = RepairReport(corpus_dir=str(corpus))
    if report.clean:
        return result
    telem = telemetry.current()
    with telem.span("doctor.repair", corpus=str(corpus),
                    damages=len(report.damages)):
        engine = _RepairEngine(corpus, report, result)
        engine.run()
    telem.counter("doctor.repairs",
                  outcome="ok" if result.ok else "failed").inc()
    return result


class _RepairEngine:
    """One repair pass over one damage report."""

    def __init__(self, corpus: Path, report: DamageReport,
                 result: RepairReport):
        self.corpus = corpus
        self.report = report
        self.result = result
        self.scan: JournalScan = scan_journal_file(corpus / JOURNAL_FILE)
        self._journal: Optional[CheckpointJournal] = None

    # -- orchestration -------------------------------------------------------

    def run(self) -> None:
        by_plan: Dict[str, List[Damage]] = {}
        for damage in self.report.damages:
            by_plan.setdefault(damage.plan, []).append(damage)
        # the doctor journal heals first, unjournaled — it is about to
        # be appended to
        for plan in ("truncate-journal", "discard-journal"):
            for damage in list(by_plan.get(plan, ())):
                if damage.artifact == DOCTOR_JOURNAL_FILE:
                    by_plan[plan].remove(damage)
                    self._execute(plan, damage, journal=False)
        if "regenerate" in by_plan:
            # regenerate re-runs finalize, which rewrites the corpus
            # files and the manifest — narrower plans become redundant
            for superseded in ("rebuild-manifest", "refinalize"):
                for damage in by_plan.pop(superseded, ()):
                    self._record(RepairAction(
                        plan=superseded, artifact=damage.artifact,
                        ok=True, detail="superseded by regenerate"),
                        journal=False)
        if "refinalize" in by_plan or "rebuild-tap-journal" in by_plan:
            # both plans end in a full refinalize, which writes a fresh
            # manifest anyway
            for damage in by_plan.pop("rebuild-manifest", ()):
                self._record(RepairAction(
                    plan="rebuild-manifest", artifact=damage.artifact,
                    ok=True, detail="superseded by refinalize"),
                    journal=False)
        for plan in PLAN_ORDER:
            damages = by_plan.pop(plan, ())
            if not damages:
                continue
            if plan == "regenerate":
                self._execute_regenerate(damages)
            elif plan == "repair-tap-segments":
                self._execute_tap_segments(damages)
            elif plan == "rederive-columnar":
                self._execute_rederive_columnar(damages)
            elif plan in ("refinalize", "rebuild-tap-journal"):
                # corpus-wide plans: execute once however many damages
                # named them
                self._execute(plan, damages[0])
            else:
                for damage in damages:
                    self._execute(plan, damage)
        for plan, damages in by_plan.items():  # pragma: no cover - guard
            for damage in damages:
                self._record(RepairAction(
                    plan=plan, artifact=damage.artifact, ok=False,
                    detail="no executor for this repair plan"))

    def _execute(self, plan: str, damage: Damage, *,
                 journal: bool = True) -> None:
        try:
            detail = self._dispatch(plan, damage) or ""
            action = RepairAction(plan=plan, artifact=damage.artifact,
                                  ok=True, detail=detail)
        except (ReproError, OSError, ValueError) as exc:
            action = RepairAction(plan=plan, artifact=damage.artifact,
                                  ok=False, detail=str(exc))
        self._record(action, journal=journal)
        if plan == "quarantine" and action.ok:
            self.result.unrecoverable.append(damage)

    def _record(self, action: RepairAction, *, journal: bool = True) -> None:
        self.result.actions.append(action)
        telemetry.current().event(
            "doctor.repair", severity="info" if action.ok else "warning",
            plan=action.plan, artifact=action.artifact, ok=action.ok)
        if journal and action.ok:
            self._doctor_journal().commit(
                f"{action.plan}:{action.artifact}", detail=action.detail)

    def _doctor_journal(self) -> CheckpointJournal:
        if self._journal is None:
            journal = CheckpointJournal.load(self.corpus
                                             / DOCTOR_JOURNAL_FILE)
            if journal.header is None \
                    or journal.header.get("command") != "doctor":
                journal.start({"command": "doctor", "version": 1})
            self._journal = journal
        return self._journal

    def _dispatch(self, plan: str, damage: Damage) -> Optional[str]:
        path = self.corpus / damage.artifact
        if plan == "remove-tmp":
            path.unlink(missing_ok=True)
            return None
        if plan == "truncate-journal":
            return _truncate_file(path, int(damage.context["offset"]))
        if plan in ("discard-journal", "discard-stream-checkpoint",
                    "discard-obs-snapshot"):
            path.unlink(missing_ok=True)
            return "discarded (derived state)"
        if plan == "evict-cache-entry":
            path.unlink(missing_ok=True)
            telemetry.current().counter("cache.evictions",
                                        reason="doctor").inc()
            return "evicted"
        if plan == "reset-tap-offset":
            return _reset_tap_offset(path, damage.context.get("source"))
        if plan == "trim-events":
            return _trim_events(path)
        if plan == "rebuild-manifest":
            return self._rebuild_manifest()
        if plan == "rebuild-stream-checkpoint":
            return _rebuild_stream_checkpoint(self.corpus,
                                              damage.context["config"])
        if plan == "rebuild-tap-journal":
            return self._rebuild_tap_journal()
        if plan == "refinalize":
            return _refinalize_tap(self.corpus)
        if plan == "quarantine":
            return _quarantine(self.corpus, path)
        raise DoctorError(f"unknown repair plan {plan!r}")

    # -- compound plans ------------------------------------------------------

    def _execute_regenerate(self, damages: List[Damage]) -> None:
        """One deterministic regeneration covers every synthetic damage."""
        resume = all(d.context.get("resume", True) for d in damages)
        artifact = ", ".join(sorted({d.artifact for d in damages}))
        try:
            detail = _regenerate(self.corpus, self.scan, resume=resume)
            action = RepairAction(plan="regenerate", artifact=artifact,
                                  ok=True, detail=detail)
        except (ReproError, OSError, ValueError) as exc:
            action = RepairAction(plan="regenerate", artifact=artifact,
                                  ok=False, detail=str(exc))
        self._record(action)

    def _execute_rederive_columnar(self, damages: List[Damage]) -> None:
        """Drop both sidecars and re-derive them once — they are a pair
        derived from the same corpus files, so one derivation covers
        however many damages named the plan."""
        from repro.columnar.store import derive_sidecars, sidecar_paths

        artifact = ", ".join(sorted({d.artifact for d in damages}))
        try:
            for path in sidecar_paths(self.corpus):
                path.unlink(missing_ok=True)
            derive_sidecars(self.corpus)
            action = RepairAction(
                plan="rederive-columnar", artifact=artifact, ok=True,
                detail="re-derived both sidecars from the corpus files")
        except (ReproError, OSError, ValueError) as exc:
            action = RepairAction(plan="rederive-columnar",
                                  artifact=artifact, ok=False,
                                  detail=str(exc))
        self._record(action)

    def _execute_tap_segments(self, damages: List[Damage]) -> None:
        """Re-slice damaged tap segments from the finalized corpus files;
        truncate the commit log at the first day that will not verify."""
        days = sorted({int(d.context["day"]) for d in damages
                       if "day" in d.context})
        whole_dir = any("day" not in d.context for d in damages)
        artifact = ", ".join(sorted({d.artifact for d in damages}))
        try:
            if whole_dir:
                days = list(range(journal_days(self.scan.steps)))
            detail = _repair_tap_segments(self.corpus, self.scan, days,
                                          damages)
            action = RepairAction(plan="repair-tap-segments",
                                  artifact=artifact, ok=True, detail=detail)
        except (ReproError, OSError, ValueError) as exc:
            action = RepairAction(plan="repair-tap-segments",
                                  artifact=artifact, ok=False,
                                  detail=str(exc))
        self._record(action)

    def _rebuild_manifest(self) -> str:
        """Rebuild ``manifest.json``, cross-checked against finalize."""
        finalized = self.scan.steps.get(FINALIZE_KEY)
        if finalized is None:
            raise DoctorError(
                f"{self.corpus}: no finalize entry to rebuild the "
                "manifest from")
        for name, key in ((CONTROL_FILE, "control_sha256"),
                          (DATA_FILE, "data_sha256")):
            recorded = finalized.get(key)
            path = self.corpus / name
            if recorded and path.exists() \
                    and file_sha256(path) != recorded:
                raise DoctorError(
                    f"{name}: on-disk checksum differs from the finalize "
                    "entry; rebuilding the manifest would mask file "
                    "damage — repair the corpus files first")
        counts = {"control_messages": finalized.get("control_messages", 0),
                  "data_packets": finalized.get("data_packets", 0)}
        write_manifest(self.corpus, counts=counts)
        return "rebuilt from disk (provenance run block not recoverable)"

    def _rebuild_tap_journal(self) -> str:
        """Recommit every contiguous complete day from the disk segments."""
        seg_dir = self.corpus / SEGMENT_DIR
        journal = CheckpointJournal(self.corpus / JOURNAL_FILE)
        journal.start({"command": "tap", "version": 1})
        day = 0
        while True:
            control = seg_dir / _segment_name("control", day)
            data = seg_dir / _segment_name("data", day)
            if not (control.exists() and data.exists()):
                break
            journal.commit(_segment_key("control", day),
                           sha256=file_sha256(control),
                           bytes=control.stat().st_size,
                           records=control.read_bytes().count(b"\n"))
            with np.load(data) as archive:
                records = int(len(archive["packets"]))
            journal.commit(_segment_key("data", day),
                           sha256=file_sha256(data),
                           bytes=data.stat().st_size, records=records)
            day += 1
        self.scan = scan_journal_file(self.corpus / JOURNAL_FILE)
        if day > 0:
            _refinalize_tap(self.corpus)
            self.scan = scan_journal_file(self.corpus / JOURNAL_FILE)
        _drop_overtaken_stream_checkpoint(self.corpus, day)
        return f"recommitted {day} day(s) from disk segments"


# -- primitive repairs -------------------------------------------------------

def _truncate_file(path: Path, offset: int) -> str:
    fd = os.open(str(path), os.O_RDWR)
    try:
        os.ftruncate(fd, offset)
        os.fsync(fd)
    finally:
        os.close(fd)
    fsync_dir(path.parent)
    return f"truncated at byte {offset}"


def _reset_tap_offset(path: Path, source: Optional[str]) -> str:
    name = path.name
    if name.endswith(".offset.json"):
        name = name[:-len(".offset.json")]
    if source is None:
        path.unlink(missing_ok=True)
        return "discarded (no usable source to rewind against)"
    atomic_write_text(path, json.dumps({
        "version": 1, "tap": name, "offset": 0, "generation": 0,
        "source": source, "source_bytes": 0}, sort_keys=True))
    return "rewound to offset 0"


def _trim_events(path: Path) -> str:
    text = path.read_text(encoding="utf-8", errors="replace")
    kept: List[str] = []
    dropped = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        try:
            if isinstance(json.loads(stripped), dict):
                kept.append(stripped)
            else:
                dropped += 1
        except ValueError:
            dropped += 1
    with atomic_writer(path) as fh:
        for line in kept:
            fh.write(line + "\n")
    return f"kept {len(kept)} event(s), dropped {dropped} torn line(s)"


def _quarantine(corpus: Path, path: Path) -> str:
    quarantine = corpus / DOCTOR_QUARANTINE_DIR
    quarantine.mkdir(exist_ok=True)
    name = str(path.relative_to(corpus)).replace(os.sep, "__")
    target = quarantine / name
    serial = 1
    while target.exists():
        target = quarantine / f"{name}.{serial}"
        serial += 1
    if path.exists():
        shutil.move(str(path), str(target))
    return f"moved to {target.relative_to(corpus)}"


def _regenerate(corpus: Path, scan: JournalScan, *, resume: bool) -> str:
    """Deterministically rebuild a synthetic corpus from its recorded
    generation parameters (the journal, segments, corpus files, and
    manifest all converge to the undamaged bytes)."""
    from repro.runtime.generate import checkpointed_generate
    from repro.scenario.config import ScenarioConfig

    params = generation_params(corpus, scan.header if resume else None)
    if params is None:
        raise DoctorError(
            f"{corpus}: generation parameters unreadable or inconsistent "
            "with the journal header; cannot regenerate")
    config = ScenarioConfig.paper(**params)
    keep_segments = (corpus / SEGMENT_DIR).is_dir()
    # force the finalize path to re-run even when it was journaled — the
    # resume fast-path trusts an existing manifest, which is exactly what
    # cannot be trusted mid-repair
    (corpus / MANIFEST_FILE).unlink(missing_ok=True)
    if not resume:
        # a fresh run rewrites the journal from scratch, but loading an
        # unusable header raises before the rewrite — drop it first
        (corpus / JOURNAL_FILE).unlink(missing_ok=True)
    run = telemetry.run_manifest("generate", seed=params["seed"],
                                 config=config)
    report = checkpointed_generate(
        config, corpus, resume=resume, run=run, jobs=1,
        keep_segments=keep_segments, extra_meta=params)
    return (f"regenerated ({'resumed, ' if resume else ''}"
            f"{report.segments_written} segment(s) rewritten, "
            f"{report.segments_skipped} intact)")


def _empty_data_segment_bytes() -> bytes:
    from repro.dataplane.packet import PACKET_DTYPE

    buffer = io.BytesIO()
    np.savez_compressed(buffer, packets=np.zeros(0, dtype=PACKET_DTYPE))
    return buffer.getvalue()


def _repair_tap_segments(corpus: Path, scan: JournalScan, days: List[int],
                         damages: List[Damage]) -> str:
    """Rebuild damaged tap segments from the finalized corpus files.

    Control segments are byte slices of ``control.jsonl`` at the offsets
    the journal's per-segment byte counts imply; a rebuilt slice only
    counts when its SHA-256 matches the journal commit.  Days that fail
    to verify are unrecoverable — the commit log is truncated there and
    the corpus refinalized to the surviving prefix.
    """
    seg_dir = corpus / SEGMENT_DIR
    seg_dir.mkdir(exist_ok=True)
    try:
        control_bytes = (corpus / CONTROL_FILE).read_bytes()
    except OSError:
        control_bytes = b""
    offsets: Dict[int, int] = {}
    position = 0
    for day in range(journal_days(scan.steps)):
        offsets[day] = position
        position += int(scan.steps[_segment_key("control", day)]
                        .get("bytes", 0) or 0)
    empty_data = _empty_data_segment_bytes()
    import hashlib
    rebuilt = 0
    failed_days: List[int] = []
    for day in sorted(set(days)):
        ok = True
        for plane in ("control", "data"):
            entry = scan.steps.get(_segment_key(plane, day))
            if entry is None:
                ok = False
                continue
            path = seg_dir / _segment_name(plane, day)
            if path.exists() and entry.get("sha256") \
                    and file_sha256(path) == entry["sha256"]:
                continue  # this plane survived; only the other is damaged
            if plane == "control":
                start = offsets.get(day, len(control_bytes))
                candidate = control_bytes[
                    start:start + int(entry.get("bytes", 0) or 0)]
            else:
                candidate = empty_data
            if hashlib.sha256(candidate).hexdigest() != entry.get("sha256"):
                ok = False
                continue
            with atomic_writer(path, mode="wb") as fh:
                fh.write(candidate)
            rebuilt += 1
        if not ok:
            failed_days.append(day)
    if not failed_days:
        return f"re-sliced {rebuilt} segment file(s) from the finalized " \
               "corpus"
    keep = min(failed_days)
    _quarantine_damaged_segments(corpus, damages, keep)
    _truncate_tap_journal(corpus, scan, keep)
    if keep > 0:
        _refinalize_tap(corpus)
    _drop_overtaken_stream_checkpoint(corpus, keep)
    return (f"re-sliced {rebuilt} segment file(s); day(s) "
            f"{failed_days} unrecoverable — commit log truncated to "
            f"{keep} day(s)")


def _quarantine_damaged_segments(corpus: Path, damages: List[Damage],
                                 keep: int) -> None:
    for damage in damages:
        day = damage.context.get("day")
        if day is None or int(day) < keep:
            continue
        path = corpus / damage.artifact
        if path.exists():
            _quarantine(corpus, path)


def _truncate_tap_journal(corpus: Path, scan: JournalScan,
                          keep: int) -> None:
    """Rewrite the tap commit log keeping only days below ``keep``."""
    journal = CheckpointJournal(corpus / JOURNAL_FILE)
    journal.start({"command": "tap", "version": 1})
    for day in range(keep):
        for plane in ("control", "data"):
            entry = dict(scan.steps[_segment_key(plane, day)])
            entry.pop("type", None)
            key = entry.pop("key")
            journal.commit(key, **entry)


def _refinalize_tap(corpus: Path) -> str:
    """Rebuild the finalized corpus files from the committed segments —
    the same refinalize contract :class:`~repro.taps.session.TapSession`
    keeps after every commit batch."""
    from repro.dataplane.packet import PACKET_DTYPE

    journal = CheckpointJournal.load(corpus / JOURNAL_FILE)
    steps = {key: journal.committed(key) for key in journal.keys()}
    days = journal_days(steps)
    seg_dir = corpus / SEGMENT_DIR
    try:
        meta = json.loads((corpus / META_FILE).read_text())
        sampling_rate = int(meta.get("sampling_rate", 10_000))
    except (OSError, ValueError, TypeError):
        sampling_rate = 10_000
    control_messages = 0
    with atomic_writer(corpus / CONTROL_FILE, mode="wb") as fh:
        for day in range(days):
            data = (seg_dir / _segment_name("control", day)).read_bytes()
            control_messages += data.count(b"\n")
            fh.write(data)
    arrays = []
    for day in range(days):
        with np.load(seg_dir / _segment_name("data", day)) as archive:
            arrays.append(archive["packets"])
    packets = (np.concatenate(arrays) if arrays
               else np.zeros(0, dtype=PACKET_DTYPE))
    with atomic_writer(corpus / DATA_FILE, mode="wb") as fh:
        np.savez_compressed(fh, packets=packets,
                            sampling_rate=sampling_rate)
    counts = {"control_messages": control_messages,
              "data_packets": int(len(packets))}
    write_manifest(corpus, counts=counts)
    journal.commit(
        FINALIZE_KEY,
        control_messages=counts["control_messages"],
        data_packets=counts["data_packets"],
        control_sha256=file_sha256(corpus / CONTROL_FILE),
        data_sha256=file_sha256(corpus / DATA_FILE),
    )
    return f"refinalized {days} day(s) from committed segments"


def _drop_overtaken_stream_checkpoint(corpus: Path, days: int) -> None:
    """Discard a stream checkpoint that consumed beyond ``days``."""
    from repro.errors import StreamCheckpointError
    from repro.streaming.state import load_state, reset_stream

    try:
        state = load_state(corpus)
    except StreamCheckpointError:
        return  # scrubbed separately
    if state is not None and state.watermark_days > days:
        reset_stream(corpus)


def _rebuild_stream_checkpoint(corpus: Path, config: dict) -> str:
    """Replay the commit log under the checkpoint's own stored config.

    The reducers are deterministic over the committed segments, so the
    rebuilt checkpoint equals one an uninterrupted watcher would have
    written.  When replay is impossible (segments gone), the checkpoint
    is discarded — it is derived state and says so.
    """
    from repro.streaming.engine import StreamEngine
    from repro.streaming.state import reset_stream

    reset_stream(corpus)
    try:
        engine = StreamEngine.open(
            corpus, policy=config["policy"], delta=config["delta"],
            host_min_days=config["host_min_days"], cache=None, fresh=True)
        consumed = engine.tick(final=True)
    except (ReproError, OSError, KeyError) as exc:
        reset_stream(corpus)
        return f"discarded (replay unavailable: {exc})"
    return f"rebuilt by replaying {consumed} committed day(s)"
