"""The scrub pass: walk every durable artifact, emit typed damage.

One :func:`scrub_corpus` call examines the full state plane of a corpus
directory — checkpoint journals, day segments, finalized corpus files
and their manifest, the stream checkpoint, analysis-cache entries, obs
snapshot and event logs, tap offset sidecars, and atomic-write temp
orphans — and returns a :class:`~repro.doctor.report.DamageReport`
whose entries each carry the repair plan the engine in
:mod:`repro.doctor.repair` knows how to execute.

Two scrub depths exist: ``deep=True`` (the CLI default) re-hashes file
contents against the journal and manifest checksums; ``deep=False`` (the
``watch`` background scrub tick) checks structure, sizes, and schemas
only, so a periodic scrub of a large corpus stays cheap enough to run
inside the watch loop.

Scrubbing never mutates anything and never raises for a damaged
artifact — only for a target that is not a corpus directory at all
(:class:`~repro.errors.DoctorError`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    file_sha256,
)
from repro.errors import DoctorError
from repro.doctor.report import Damage, DamageReport
from repro.runtime.atomic import TMP_PREFIX
from repro.runtime.generate import (
    FINALIZE_KEY,
    JOURNAL_FILE,
    SEGMENT_DIR,
    _segment_key,
)

#: the supervised-analyze journal (same name the CLI uses)
ANALYSIS_JOURNAL_FILE = ".analysis.checkpoint.jsonl"
#: the doctor's own repair journal
DOCTOR_JOURNAL_FILE = ".doctor.checkpoint.jsonl"
#: where unrecoverable artifacts are moved instead of deleted
DOCTOR_QUARANTINE_DIR = ".doctor.quarantine"


@dataclass
class JournalScan:
    """Byte-accurate structural scan of one checkpoint journal file."""

    path: Path
    header: Optional[dict] = None
    #: step entries in file order (later duplicates win, like load())
    steps: Dict[str, dict] = field(default_factory=dict)
    #: byte offset of the first unparseable line, or None when intact
    torn_offset: Optional[int] = None
    #: the unparseable line is the *first* line — no usable header
    header_bad: bool = False
    exists: bool = True


def scan_journal_file(path: str | Path) -> JournalScan:
    """Parse a journal like ``CheckpointJournal.load`` but byte-exactly.

    Where ``load`` silently drops a torn tail, this records the byte
    offset the file must be truncated at to make the tear permanent —
    appends after an un-truncated torn line concatenate onto it and are
    lost on the next load, so the tear is real damage, not cosmetics.
    """
    scan = JournalScan(path=Path(path))
    try:
        raw = scan.path.read_bytes()
    except FileNotFoundError:
        scan.exists = False
        return scan
    # an unterminated final line is torn even when it parses: the next
    # append concatenates onto it and produces an unparseable line, so
    # the tail must be truncated away before the journal is appended to
    tail_offset = None
    if raw and not raw.endswith(b"\n"):
        tail_offset = raw.rfind(b"\n") + 1
        raw = raw[:tail_offset]
    offset = 0
    saw_line = False
    for chunk in raw.split(b"\n"):
        line = chunk.strip()
        if line:
            try:
                record = json.loads(line.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ValueError("not an object")
            except (ValueError, UnicodeDecodeError):
                scan.torn_offset = offset
                scan.header_bad = not saw_line
                break
            if not saw_line and record.get("type") == "header":
                scan.header = record
            elif record.get("type") == "step" and "key" in record:
                scan.steps[record["key"]] = record
            saw_line = True
        offset += len(chunk) + 1
    if scan.torn_offset is None and tail_offset is not None:
        scan.torn_offset = tail_offset
        scan.header_bad = not saw_line
    if not saw_line and scan.torn_offset is None:
        # an existing-but-empty journal has no header to trust
        scan.header_bad = True
        scan.torn_offset = 0
    return scan


def journal_days(steps: Dict[str, dict]) -> int:
    """Contiguous days with both planes' segment steps, from day 0."""
    day = 0
    while (_segment_key("control", day) in steps
           and _segment_key("data", day) in steps):
        day += 1
    return day


def generation_params(corpus_dir: Path,
                      header: Optional[dict]) -> Optional[dict]:
    """The ``ScenarioConfig.paper`` parameters a synthetic corpus can be
    regenerated from, or None when they are unreadable or untrustworthy.

    The parameters live in ``platform.json`` (the CLI and facade stamp
    scale/duration_days/seed there); when the journal header survived,
    its config hash cross-checks them — a tampered sidecar must not
    drive a "repair" that regenerates a different corpus.
    """
    try:
        meta = json.loads((corpus_dir / META_FILE).read_text())
        # values are taken verbatim: int-vs-float duration_days changes
        # the config hash, and JSON round-trips both exactly
        params = {"scale": meta["scale"],
                  "duration_days": meta["duration_days"],
                  "seed": meta["seed"]}
        if not all(isinstance(v, (int, float)) and not isinstance(v, bool)
                   for v in params.values()):
            return None
    except (OSError, ValueError, TypeError, KeyError):
        return None
    if header is not None and header.get("config_hash"):
        from repro import telemetry
        from repro.scenario.config import ScenarioConfig

        config = ScenarioConfig.paper(**params)
        if telemetry.config_hash(config) != header.get("config_hash"):
            return None
    return params


def _rel(corpus_dir: Path, path: Path) -> str:
    try:
        return str(path.relative_to(corpus_dir))
    except ValueError:
        return str(path)


def scrub_corpus(corpus_dir: str | Path, *, deep: bool = True,
                 cache_dir: str | Path | None = None) -> DamageReport:
    """Examine every durable artifact; see the module docstring."""
    from repro import telemetry

    corpus = Path(corpus_dir)
    if not corpus.is_dir():
        raise DoctorError(f"{corpus}: not a directory")
    journal_path = corpus / JOURNAL_FILE
    if not journal_path.exists() and not (corpus / MANIFEST_FILE).exists() \
            and not (corpus / META_FILE).exists():
        raise DoctorError(
            f"{corpus}: no checkpoint journal, manifest, or platform "
            "sidecar — not a corpus directory")

    report = DamageReport(corpus_dir=str(corpus), deep=deep)
    with telemetry.current().span("doctor.scrub", corpus=str(corpus),
                                  deep=deep):
        scan = _scrub_journals(corpus, report)
        tap_corpus = _is_tap_corpus(corpus, scan)
        params = (None if tap_corpus
                  else generation_params(corpus, scan.header))
        _scrub_segments(corpus, scan, report, tap_corpus, params, deep)
        _scrub_corpus_files(corpus, scan, report, tap_corpus, params, deep)
        _scrub_columnar(corpus, report, deep)
        _scrub_stream_checkpoint(corpus, scan, report)
        _scrub_caches(corpus, report, cache_dir)
        _scrub_obs(corpus, report)
        _scrub_tap_offsets(corpus, report)
        _scrub_tmp_orphans(corpus, report, cache_dir)
    telemetry.current().counter(
        "doctor.scrubs", outcome="clean" if report.clean else "damaged").inc()
    return report


def _is_tap_corpus(corpus: Path, scan: JournalScan) -> bool:
    if scan.header is not None:
        return scan.header.get("command") == "tap"
    try:
        meta = json.loads((corpus / META_FILE).read_text())
        return bool(meta.get("tap_session"))
    except (OSError, ValueError):
        return False


# -- journals ----------------------------------------------------------------

def _scrub_journals(corpus: Path, report: DamageReport) -> JournalScan:
    """Scrub all three journals; returns the commit-log scan."""
    main_scan = scan_journal_file(corpus / JOURNAL_FILE)
    tap_corpus = _is_tap_corpus(corpus, main_scan)
    if main_scan.exists:
        report.count("journal")
        if main_scan.header_bad:
            report.add(Damage(
                artifact=JOURNAL_FILE, kind="journal", damage="bad-header",
                severity="error",
                detail="journal header unreadable; commit log unusable",
                plan="rebuild-tap-journal" if tap_corpus
                else "regenerate",
                context={"resume": False}))
        elif main_scan.torn_offset is not None:
            report.add(Damage(
                artifact=JOURNAL_FILE, kind="journal", damage="torn-tail",
                severity="error",
                detail=(f"unparseable line at byte {main_scan.torn_offset}; "
                        "entries after it are unreachable"),
                plan="rebuild-tap-journal" if tap_corpus
                else "truncate-journal",
                context={"offset": main_scan.torn_offset}))
    for name, discard_plan in ((ANALYSIS_JOURNAL_FILE, "discard-journal"),
                               (DOCTOR_JOURNAL_FILE, "discard-journal")):
        scan = scan_journal_file(corpus / name)
        if not scan.exists:
            continue
        report.count("journal")
        if scan.header_bad:
            report.add(Damage(
                artifact=name, kind="journal", damage="bad-header",
                severity="warning",
                detail="derived journal unreadable; safe to discard",
                plan=discard_plan))
        elif scan.torn_offset is not None:
            report.add(Damage(
                artifact=name, kind="journal", damage="torn-tail",
                severity="warning",
                detail=f"unparseable line at byte {scan.torn_offset}",
                plan="truncate-journal",
                context={"offset": scan.torn_offset}))
    return main_scan


# -- segments ----------------------------------------------------------------

def _segment_damage_plan(tap_corpus: bool, params: Optional[dict]) -> tuple:
    if tap_corpus:
        return "repair-tap-segments", {}
    if params is None:
        return "quarantine", {}
    return "regenerate", {"resume": True}


def _scrub_segments(corpus: Path, scan: JournalScan, report: DamageReport,
                    tap_corpus: bool, params: Optional[dict],
                    deep: bool) -> None:
    seg_dir = corpus / SEGMENT_DIR
    segment_steps = {key: entry for key, entry in scan.steps.items()
                     if key.startswith("segment:")}
    if not seg_dir.is_dir():
        # segments not kept is a legitimate layout — unless a stream
        # checkpoint proves a watcher depends on them
        if segment_steps and (corpus / ".stream.checkpoint.json").exists():
            plan, context = _segment_damage_plan(tap_corpus, params)
            report.add(Damage(
                artifact=SEGMENT_DIR, kind="segment", damage="missing",
                severity="error",
                detail=(f"{len(segment_steps)} journaled segments have no "
                        f"{SEGMENT_DIR}/ directory but a stream checkpoint "
                        "depends on them"),
                plan=plan, context=context))
        return
    for key, entry in sorted(segment_steps.items()):
        _, plane, day_text = key.split(":")
        day = int(day_text)
        suffix = "jsonl" if plane == "control" else "npz"
        path = seg_dir / f"{plane}-{day:03d}.{suffix}"
        artifact = _rel(corpus, path)
        report.count("segment")
        plan, context = _segment_damage_plan(tap_corpus, params)
        context = dict(context, plane=plane, day=day)
        if not path.exists():
            report.add(Damage(
                artifact=artifact, kind="segment", damage="missing",
                severity="error",
                detail="journaled segment file absent", plan=plan,
                context=context))
            continue
        size = path.stat().st_size
        if entry.get("bytes") is not None and size != entry["bytes"]:
            report.add(Damage(
                artifact=artifact, kind="segment", damage="checksum-drift",
                severity="error",
                detail=(f"{size} bytes on disk, {entry['bytes']} in "
                        "journal"),
                plan=plan, context=context))
            continue
        if deep and entry.get("sha256") \
                and file_sha256(path) != entry["sha256"]:
            report.add(Damage(
                artifact=artifact, kind="segment", damage="checksum-drift",
                severity="error",
                detail="SHA-256 differs from the journal commit",
                plan=plan, context=context))


# -- corpus files + manifest -------------------------------------------------

def _scrub_corpus_files(corpus: Path, scan: JournalScan,
                        report: DamageReport, tap_corpus: bool,
                        params: Optional[dict], deep: bool) -> None:
    manifest_path = corpus / MANIFEST_FILE
    finalized = scan.steps.get(FINALIZE_KEY)
    file_plan, file_context = (
        ("refinalize", {}) if tap_corpus
        else ("regenerate", {"resume": True}) if params is not None
        else ("quarantine", {}))
    report.count("manifest")
    manifest = None
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
            if not isinstance(manifest, dict) \
                    or not isinstance(manifest.get("files"), dict):
                raise ValueError("not a manifest object")
        except (OSError, ValueError) as exc:
            report.add(Damage(
                artifact=MANIFEST_FILE, kind="manifest", damage="garbled",
                severity="error", detail=f"unreadable: {exc}",
                plan="rebuild-manifest" if finalized is not None
                else file_plan,
                context=dict(file_context)))
            manifest = None
    elif finalized is not None:
        report.add(Damage(
            artifact=MANIFEST_FILE, kind="manifest", damage="missing",
            severity="error",
            detail="finalize is journaled but the manifest is absent",
            plan="rebuild-manifest"))
    if manifest is None:
        # the manifest is gone, but the finalize journal entry carries
        # its own checksums of the two corpus files — second witness
        if finalized is not None and deep:
            for name, key in ((CONTROL_FILE, "control_sha256"),
                              (DATA_FILE, "data_sha256")):
                recorded = finalized.get(key)
                path = corpus / name
                if not recorded:
                    continue
                report.count("corpus-file")
                if not path.exists():
                    report.add(Damage(
                        artifact=name, kind="corpus-file",
                        damage="missing", severity="error",
                        detail="journaled at finalize but absent",
                        plan=file_plan, context=dict(file_context)))
                elif file_sha256(path) != recorded:
                    report.add(Damage(
                        artifact=name, kind="corpus-file",
                        damage="checksum-drift", severity="error",
                        detail="SHA-256 differs from the finalize entry",
                        plan=file_plan, context=dict(file_context)))
        return
    for name, meta in sorted(manifest.get("files", {}).items()):
        path = corpus / name
        report.count("corpus-file")
        if not path.exists():
            report.add(Damage(
                artifact=name, kind="corpus-file", damage="missing",
                severity="error", detail="listed in manifest but absent",
                plan=file_plan, context=dict(file_context)))
            continue
        size = path.stat().st_size
        if meta.get("bytes") is not None and size != meta["bytes"]:
            report.add(Damage(
                artifact=name, kind="corpus-file", damage="checksum-drift",
                severity="error",
                detail=f"{size} bytes on disk, {meta['bytes']} in manifest",
                plan=file_plan, context=dict(file_context)))
            continue
        if deep and meta.get("sha256") \
                and file_sha256(path) != meta["sha256"]:
            report.add(Damage(
                artifact=name, kind="corpus-file", damage="checksum-drift",
                severity="error",
                detail="SHA-256 differs from the manifest",
                plan=file_plan, context=dict(file_context)))


# -- columnar sidecars -------------------------------------------------------

def _scrub_columnar(corpus: Path, report: DamageReport, deep: bool) -> None:
    """Scrub the ``.columnar/`` sidecar pair.

    Sidecars are derived state — every damage is a warning whose plan
    re-derives both files from the finalized corpus (the mirror image of
    the derived-journal discard plans).  ``deep`` adds the payload hash
    walk; a shallow scrub trusts the structural header checks.
    """
    from repro.columnar.format import open_columnar
    from repro.columnar.store import sidecar_paths, source_checksums
    from repro.errors import ColumnarError, TornColumnarError

    control_path, data_path = sidecar_paths(corpus)
    pairs = ((control_path, "control"), (data_path, "data"))
    if not any(path.exists() for path, _ in pairs):
        return  # pre-columnar corpus: a legitimate layout
    sources: Optional[Dict[str, Optional[str]]] = None
    for path, plane in pairs:
        artifact = _rel(corpus, path)
        report.count("columnar-segment")
        if not path.exists():
            report.add(Damage(
                artifact=artifact, kind="columnar-segment",
                damage="missing", severity="warning",
                detail="one sidecar of the pair is absent; the columnar "
                       "engine needs both",
                plan="rederive-columnar", context={"plane": plane}))
            continue
        try:
            segment = open_columnar(path, verify=deep)
        except TornColumnarError as exc:
            report.add(Damage(
                artifact=artifact, kind="columnar-segment",
                damage="torn-tail", severity="warning", detail=str(exc),
                plan="rederive-columnar", context={"plane": plane}))
            continue
        except ColumnarError as exc:
            report.add(Damage(
                artifact=artifact, kind="columnar-segment",
                damage="garbled", severity="warning", detail=str(exc),
                plan="rederive-columnar", context={"plane": plane}))
            continue
        if segment.plane != plane:
            report.add(Damage(
                artifact=artifact, kind="columnar-segment",
                damage="garbled", severity="warning",
                detail=f"header says plane {segment.plane!r}, "
                       f"expected {plane!r}",
                plan="rederive-columnar", context={"plane": plane}))
            continue
        if sources is None:
            sources = source_checksums(corpus)
        recorded = sources.get(plane)
        if recorded and segment.source_sha256 != recorded:
            report.add(Damage(
                artifact=artifact, kind="columnar-segment",
                damage="stale-source", severity="warning",
                detail="derived from a corpus file that has since "
                       "changed",
                plan="rederive-columnar", context={"plane": plane}))


# -- stream checkpoint -------------------------------------------------------

def _scrub_stream_checkpoint(corpus: Path, scan: JournalScan,
                             report: DamageReport) -> None:
    from repro.errors import StreamCheckpointError
    from repro.streaming.state import STREAM_CHECKPOINT_FILE, load_state

    if not (corpus / STREAM_CHECKPOINT_FILE).exists():
        return
    report.count("stream-checkpoint")
    try:
        state = load_state(corpus)
    except StreamCheckpointError as exc:
        report.add(Damage(
            artifact=STREAM_CHECKPOINT_FILE, kind="stream-checkpoint",
            damage="garbled", severity="error",
            detail=str(exc), plan="discard-stream-checkpoint"))
        return
    if state is None:
        return
    for entry in state.consumed:
        control = scan.steps.get(_segment_key("control", entry.day))
        data = scan.steps.get(_segment_key("data", entry.day))
        if (control is None or data is None
                or control.get("sha256") != entry.control_sha256
                or data.get("sha256") != entry.data_sha256):
            report.add(Damage(
                artifact=STREAM_CHECKPOINT_FILE, kind="stream-checkpoint",
                damage="fence-mismatch", severity="error",
                detail=(f"consumed day {entry.day} disagrees with the "
                        "corpus journal"),
                plan="rebuild-stream-checkpoint",
                context={"config": state.config()}))
            return


# -- caches ------------------------------------------------------------------

def _cache_roots(corpus: Path,
                 cache_dir: str | Path | None) -> List[Path]:
    from repro.parallel.cache import DEFAULT_CACHE_DIRNAME, ENTRY_DIR

    roots = []
    if cache_dir is not None:
        roots.append(Path(cache_dir) / ENTRY_DIR)
    default = corpus / DEFAULT_CACHE_DIRNAME / ENTRY_DIR
    if default.is_dir() and all(r.resolve() != default.resolve()
                                for r in roots):
        roots.append(default)
    return [root for root in roots if root.is_dir()]


def _scrub_caches(corpus: Path, report: DamageReport,
                  cache_dir: str | Path | None) -> None:
    from repro.parallel.cache import ENTRY_VERSION, corpus_digest

    roots = _cache_roots(corpus, cache_dir)
    if not roots:
        return
    current = corpus_digest(corpus)
    try:
        from repro.streaming.engine import stream_corpus_digests
        stream_digests = stream_corpus_digests(corpus)
    except Exception:
        stream_digests = set()
    for root in roots:
        for path in sorted(root.glob("*.json")):
            report.count("cache-entry")
            artifact = _rel(corpus, path)
            try:
                entry = json.loads(path.read_text())
                if not isinstance(entry, dict):
                    raise ValueError("not an object")
            except (OSError, ValueError) as exc:
                report.add(Damage(
                    artifact=artifact, kind="cache-entry", damage="garbled",
                    severity="error", detail=f"unreadable: {exc}",
                    plan="evict-cache-entry"))
                continue
            if entry.get("version") != ENTRY_VERSION:
                report.add(Damage(
                    artifact=artifact, kind="cache-entry",
                    damage="digest-drift", severity="error",
                    detail=f"unsupported entry version "
                           f"{entry.get('version')!r}",
                    plan="evict-cache-entry"))
                continue
            digest = str(entry.get("corpus_digest"))
            if current is not None and digest != current \
                    and digest not in stream_digests:
                report.add(Damage(
                    artifact=artifact, kind="cache-entry",
                    damage="digest-drift", severity="error",
                    detail=(f"keyed to corpus digest {digest[:12]}… but "
                            f"this corpus digests to {current[:12]}…"),
                    plan="evict-cache-entry"))


# -- obs ---------------------------------------------------------------------

def _scrub_obs(corpus: Path, report: DamageReport) -> None:
    from repro.obs.events import DEFAULT_BACKUPS, iter_event_files
    from repro.obs.snapshot import events_path, snapshot_path

    snapshot = snapshot_path(corpus)
    if snapshot.exists():
        report.count("obs-snapshot")
        try:
            raw = json.loads(snapshot.read_text())
            if not isinstance(raw, dict):
                raise ValueError("not an object")
            from repro.obs.snapshot import SNAPSHOT_VERSION
            if raw.get("version") != SNAPSHOT_VERSION:
                raise ValueError(
                    f"unsupported version {raw.get('version')!r}")
        except (OSError, ValueError) as exc:
            report.add(Damage(
                artifact=_rel(corpus, snapshot), kind="obs-snapshot",
                damage="garbled", severity="warning",
                detail=f"unreadable: {exc} (derived state)",
                plan="discard-obs-snapshot"))
    for file in iter_event_files(events_path(corpus), DEFAULT_BACKUPS):
        report.count("obs-events")
        torn = _count_torn_lines(file)
        if torn:
            report.add(Damage(
                artifact=_rel(corpus, file), kind="obs-events",
                damage="torn-tail", severity="warning",
                detail=f"{torn} unparseable line(s)",
                plan="trim-events"))


def _count_torn_lines(path: Path) -> int:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return 0
    torn = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            if not isinstance(json.loads(line), dict):
                torn += 1
        except ValueError:
            torn += 1
    return torn


# -- tap offset sidecars -----------------------------------------------------

def _scrub_tap_offsets(corpus: Path, report: DamageReport) -> None:
    taps_dir = corpus / ".taps"
    if not taps_dir.is_dir():
        return
    for path in sorted(taps_dir.glob("*.offset.json")):
        report.count("tap-offset")
        artifact = _rel(corpus, path)
        try:
            record = json.loads(path.read_text())
            offset = int(record["offset"])
            source = str(record["source"])
        except (OSError, ValueError, TypeError, KeyError) as exc:
            report.add(Damage(
                artifact=artifact, kind="tap-offset", damage="garbled",
                severity="warning", detail=f"unreadable: {exc}",
                plan="reset-tap-offset"))
            continue
        try:
            size = Path(source).stat().st_size
        except OSError:
            continue  # source gone: nothing to bound-check against
        if offset > size:
            report.add(Damage(
                artifact=artifact, kind="tap-offset",
                damage="beyond-source", severity="warning",
                detail=(f"recorded offset {offset} exceeds the source's "
                        f"{size} bytes (source truncated)"),
                plan="reset-tap-offset", context={"source": source}))


# -- temp orphans ------------------------------------------------------------

def _scrub_tmp_orphans(corpus: Path, report: DamageReport,
                       cache_dir: str | Path | None) -> None:
    directories = [corpus, corpus / SEGMENT_DIR, corpus / ".taps",
                   corpus / ".obs"]
    directories.extend(_cache_roots(corpus, cache_dir))
    for directory in directories:
        if not directory.is_dir():
            continue
        report.count("tmp-dir")
        for entry in sorted(directory.iterdir()):
            if entry.is_file() and entry.name.startswith(TMP_PREFIX):
                report.add(Damage(
                    artifact=_rel(corpus, entry), kind="tmp",
                    damage="orphan", severity="warning",
                    detail="atomic-write temporary left by a killed writer",
                    plan="remove-tmp"))
