"""Self-healing state plane: integrity scrubbing and journaled repair.

The doctor package closes the loop the crash-safe runtime opened: the
journals, manifests, and checkpoints written elsewhere in the tree give
every durable artifact at least one redundant witness, and the doctor is
the subsystem that *uses* that redundancy — a scrub pass
(:func:`scrub_corpus`) walks every artifact kind and emits a typed
:class:`DamageReport`, and a repair pass (:func:`repair_corpus`) heals
what the report names, idempotently and under its own fsynced journal.

Quickstart::

    from repro.doctor import scrub_corpus, repair_corpus

    report = scrub_corpus("corpus/")          # deep scrub, no mutation
    if not report.clean:
        outcome = repair_corpus("corpus/", report)
        assert scrub_corpus("corpus/").clean

The CLI front-end is ``repro doctor [--repair]``; the facade equivalent
is :meth:`repro.api.Study.doctor`.  ``repro watch`` runs the quick
variant of the scrub periodically in the background and surfaces damage
through the obs plane (``doctor.damage`` events, degraded readiness).
"""

from repro.doctor.report import (
    SEVERITIES,
    Damage,
    DamageReport,
    RepairAction,
    RepairReport,
)
from repro.doctor.scrub import (
    ANALYSIS_JOURNAL_FILE,
    DOCTOR_JOURNAL_FILE,
    DOCTOR_QUARANTINE_DIR,
    scrub_corpus,
)
from repro.doctor.repair import repair_corpus

__all__ = [
    "ANALYSIS_JOURNAL_FILE",
    "DOCTOR_JOURNAL_FILE",
    "DOCTOR_QUARANTINE_DIR",
    "SEVERITIES",
    "Damage",
    "DamageReport",
    "RepairAction",
    "RepairReport",
    "repair_corpus",
    "scrub_corpus",
]
