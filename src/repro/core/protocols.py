"""§5.4: traffic during RTBH events — protocol mix and amplification
protocols (Table 3).

Only events that (a) had a preceding anomaly and (b) have sampled packets
during their windows enter the protocol analysis, exactly as in the paper.
All statistics are per event to keep heavy hitters from biasing the mix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.core.pre_rtbh import PreRTBHClass, PreRTBHClassification
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix
from repro.net.ports import AMPLIFICATION_PORTS
from repro.net.protocols import IPProtocol

_MAX32 = 0xFFFFFFFF


def _dst_mask(packets: np.ndarray, prefix: IPv4Prefix) -> np.ndarray:
    bits = (_MAX32 << (32 - prefix.length)) & _MAX32 if prefix.length else 0
    return (packets["dst_ip"] & np.uint32(bits)) == np.uint32(prefix.network_int)


def event_window_packets(data: DataPlaneCorpus, event: RTBHEvent) -> np.ndarray:
    """All sampled packets destined into the event's prefix during its
    announced windows."""
    parts = []
    for start, end in event.windows:
        window = data.slice_time(start, end)
        if len(window) == 0:
            continue
        mask = _dst_mask(window, event.prefix)
        if mask.any():
            parts.append(window[mask])
    if not parts:
        return np.zeros(0, dtype=data.packets.dtype)
    return np.concatenate(parts)


@dataclass(frozen=True)
class EventProtocolMix:
    """Corpus-level §5.4 numbers."""

    events_total: int
    events_with_data: int
    events_with_data_and_anomaly: int
    #: mean per-event share of each transport protocol (anomaly events)
    protocol_shares: Dict[IPProtocol, float]
    #: per anomaly event: number of distinct amplification protocols seen
    amplification_protocol_counts: Tuple[int, ...]

    @property
    def share_events_with_data(self) -> float:
        return self.events_with_data / self.events_total if self.events_total else 0.0


def event_protocol_mix(
    data: DataPlaneCorpus,
    events: Sequence[RTBHEvent],
    classification: PreRTBHClassification,
    window_packets: Optional[Callable[[RTBHEvent], np.ndarray]] = None,
) -> EventProtocolMix:
    """Compute the §5.4 statistics (and the Table 3 input).

    ``window_packets`` swaps the per-event packet gather — the columnar
    engine passes a closure over precomputed row indices that returns the
    exact array :func:`event_window_packets` would build.
    """
    if len(events) != len(classification.events):
        raise AnalysisError("events and classification must align")
    if window_packets is None:
        window_packets = lambda event: event_window_packets(data, event)  # noqa: E731
    by_id = {e.event_id: e for e in classification.events}
    with_data = 0
    with_data_and_anomaly = 0
    shares_acc: Dict[IPProtocol, List[float]] = {p: [] for p in IPProtocol}
    amp_counts: List[int] = []
    for event in events:
        packets = window_packets(event)
        if len(packets) == 0:
            continue
        with_data += 1
        pre = by_id[event.event_id]
        if pre.classification is not PreRTBHClass.DATA_ANOMALY:
            continue
        with_data_and_anomaly += 1
        protocols = packets["protocol"]
        n = len(packets)
        for proto in (IPProtocol.UDP, IPProtocol.TCP, IPProtocol.ICMP):
            shares_acc[proto].append(float((protocols == int(proto)).sum()) / n)
        shares_acc[IPProtocol.OTHER].append(
            float(np.isin(protocols, [1, 6, 17], invert=True).sum()) / n
        )
        udp = packets[protocols == int(IPProtocol.UDP)]
        seen: Set[int] = set(np.unique(udp["src_port"]).tolist()) & AMPLIFICATION_PORTS
        amp_counts.append(len(seen))
    protocol_shares = {
        proto: float(np.mean(vals)) if vals else 0.0
        for proto, vals in shares_acc.items()
    }
    return EventProtocolMix(
        events_total=len(events),
        events_with_data=with_data,
        events_with_data_and_anomaly=with_data_and_anomaly,
        protocol_shares=protocol_shares,
        amplification_protocol_counts=tuple(amp_counts),
    )


def amplification_protocol_table(mix: EventProtocolMix,
                                 max_count: int = 5) -> Dict[int, float]:
    """Table 3: share of anomaly events by number of distinct
    amplification protocols observed (0, 1, 2, ... ``max_count``+)."""
    counts = mix.amplification_protocol_counts
    if not counts:
        raise AnalysisError("no anomaly events with data")
    n = len(counts)
    table = {}
    for k in range(max_count + 1):
        if k < max_count:
            table[k] = sum(c == k for c in counts) / n
        else:
            table[k] = sum(c >= k for c in counts) / n
    return table
