"""§7.3 cross-validation: IXP-inferred DDoS events vs external vantage
points.

Jonker et al. link RTBHs with DDoS attacks using a telescope and
amplification honeypots instead of IXP traffic; both methodologies arrive
at the same headline (<30% of RTBHs relate to detectable DDoS), while each
misses attacks the other can see. This module joins the two views over a
common corpus:

* an RTBH event is *externally confirmed* when an observation for a
  victim inside its prefix overlaps the event start (within a tolerance);
* the agreement matrix against the IXP's own anomaly classification then
  quantifies the complementarity — confirmed-but-no-anomaly events are
  the attacks that never crossed the IXP, anomaly-but-unconfirmed events
  are the direct/unspoofed attacks external vantage points miss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.core.pre_rtbh import PreRTBHClass, PreRTBHClassification
from repro.errors import AnalysisError
from repro.telescope.observatory import ExternalObservation


@dataclass(frozen=True)
class CrossValidation:
    """Join result between RTBH events and external observations."""

    total_events: int
    confirmed_event_ids: frozenset
    #: (ixp_says_anomaly, externally_confirmed) -> count
    agreement: Dict[Tuple[bool, bool], int]

    @property
    def confirmed_share(self) -> float:
        return len(self.confirmed_event_ids) / self.total_events if self.total_events else 0.0

    @property
    def both_share(self) -> float:
        """Events both vantage points attribute to DDoS."""
        return self.agreement[(True, True)] / self.total_events

    @property
    def only_external_share(self) -> float:
        """Attacks the IXP missed (did not cross its fabric)."""
        return self.agreement[(False, True)] / self.total_events

    @property
    def only_ixp_share(self) -> float:
        """Attacks external vantage points missed (direct/unspoofed)."""
        return self.agreement[(True, False)] / self.total_events


def cross_validate(
    events: Sequence[RTBHEvent],
    pre: PreRTBHClassification,
    observations: Sequence[ExternalObservation],
    tolerance: float = 3_600.0,
) -> CrossValidation:
    """Join events with observations and build the agreement matrix.

    An observation matches an event when its victim address falls inside
    the event's prefix and its interval, widened by ``tolerance``,
    overlaps the interval from (event start − tolerance) to event end.
    """
    if len(events) != len(pre.events):
        raise AnalysisError("events and classification must align")
    if tolerance < 0:
        raise AnalysisError("tolerance must be >= 0")
    pre_by_id = {e.event_id: e for e in pre.events}

    obs_ips = np.array([o.victim_ip for o in observations], dtype=np.uint64)
    order = np.argsort(obs_ips)
    obs_sorted = [observations[i] for i in order]
    obs_ips_sorted = obs_ips[order]

    confirmed = set()
    for event in events:
        lo_ip = event.prefix.network_int
        hi_ip = event.prefix.broadcast_int
        lo = int(np.searchsorted(obs_ips_sorted, lo_ip, side="left"))
        hi = int(np.searchsorted(obs_ips_sorted, hi_ip, side="right"))
        for obs in obs_sorted[lo:hi]:
            if (obs.end + tolerance >= event.start - tolerance
                    and obs.start - tolerance <= event.end):
                confirmed.add(event.event_id)
                break

    agreement: Dict[Tuple[bool, bool], int] = {
        (True, True): 0, (True, False): 0, (False, True): 0, (False, False): 0,
    }
    for event in events:
        anomaly = pre_by_id[event.event_id].classification is PreRTBHClass.DATA_ANOMALY
        agreement[(anomaly, event.event_id in confirmed)] += 1
    return CrossValidation(
        total_events=len(events),
        confirmed_event_ids=frozenset(confirmed),
        agreement=agreement,
    )
