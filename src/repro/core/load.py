"""Fig. 3: RTBH signaling load over time.

Two per-minute series out of the control corpus: the number of
*simultaneously active* blackhole prefixes, and the number of RTBH-related
BGP messages.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.corpus.control import ControlPlaneCorpus
from repro.errors import AnalysisError

MINUTE = 60.0


@dataclass(frozen=True)
class RTBHLoadSeries:
    """Per-minute load series and their headline statistics."""

    minute_starts: np.ndarray
    active_prefixes: np.ndarray
    messages_per_minute: np.ndarray

    @property
    def mean_active(self) -> float:
        return float(self.active_prefixes.mean())

    @property
    def peak_active(self) -> int:
        return int(self.active_prefixes.max())

    @property
    def peak_messages(self) -> int:
        return int(self.messages_per_minute.max())

    @property
    def mean_messages(self) -> float:
        return float(self.messages_per_minute.mean())


def rtbh_load_series(control: ControlPlaneCorpus,
                     t0: float | None = None,
                     t1: float | None = None) -> RTBHLoadSeries:
    """Build the Fig. 3 series over ``[t0, t1)`` (corpus span by default)."""
    if len(control) == 0:
        raise AnalysisError("empty control corpus")
    t0 = control.start_time if t0 is None else t0
    t1 = control.end_time if t1 is None else t1
    times = np.array([m.time for m in control.rtbh_updates()])
    return load_series_from_state(control.rtbh_windows_by_prefix(), times,
                                  t0, t1)


def load_series_from_state(windows, message_times, t0: float,
                           t1: float) -> RTBHLoadSeries:
    """Fig. 3 from pre-extracted state — no corpus scan.

    ``windows`` is the ``prefix -> [(start, end, announcer)]`` map of
    :meth:`ControlPlaneCorpus.rtbh_windows_by_prefix`; ``message_times``
    the timestamps of the RTBH-related updates.  The streaming engine
    maintains both incrementally and calls this per watermark.
    """
    if t1 <= t0:
        raise AnalysisError("t1 must be after t0")
    edges = np.arange(t0, t1 + MINUTE, MINUTE)
    n_bins = len(edges) - 1

    messages = np.zeros(n_bins, dtype=np.int64)
    # active count via +1/-1 deltas at window edges, prefix-deduplicated
    deltas = np.zeros(n_bins + 1, dtype=np.int64)
    for prefix, prefix_windows in windows.items():
        merged: list[tuple[float, float]] = []
        for start, end, _peer in sorted(prefix_windows):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        for start, end in merged:
            lo = int(np.clip((start - t0) // MINUTE, 0, n_bins))
            hi = int(np.clip((end - t0) // MINUTE, 0, n_bins))
            deltas[lo] += 1
            deltas[hi] -= 1
    active = np.cumsum(deltas[:-1])

    counts, _ = np.histogram(np.asarray(message_times, dtype=np.float64),
                             bins=edges)
    messages += counts
    return RTBHLoadSeries(
        minute_starts=edges[:-1],
        active_prefixes=active,
        messages_per_minute=messages,
    )
