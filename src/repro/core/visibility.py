"""Fig. 4: do operators use targeted blackhole announcements?

For every sample instant the analysis reconstructs, per peer, which of the
currently announced blackhole prefixes the route server redistributes to
that peer (from the redistribution-control communities on the messages).
The per-peer *filtered share* is ``1 − visible/announced``; Fig. 4 plots
the maximum (the worst-served single peer), the 99th percentile and the
median over peers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.bgp.community import redistribution_targets
from repro.corpus.control import ControlPlaneCorpus
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix


@dataclass(frozen=True)
class TargetedVisibilitySeries:
    """Filtered-share quantiles over time."""

    times: np.ndarray
    announced: np.ndarray            # total active blackhole prefixes
    filtered_max: np.ndarray         # worst single peer (the "100%" line)
    filtered_p99: np.ndarray
    filtered_median: np.ndarray

    @property
    def peak_median_filtered(self) -> float:
        return float(self.filtered_median.max())

    @property
    def peak_max_filtered(self) -> float:
        return float(self.filtered_max.max())


def targeted_visibility(
    control: ControlPlaneCorpus,
    peer_asns: Sequence[int],
    route_server_asn: int = 64_500,
    sample_interval: float = 3_600.0,
) -> TargetedVisibilitySeries:
    """Replay the corpus, sampling per-peer blackhole visibility.

    ``peer_asns`` is the membership of the platform (the corpus itself does
    not know who is connected); ``route_server_asn`` anchors the
    redistribution-control community scheme.

    The replay keeps, per standing (announcer, prefix) announcement, the
    boolean per-peer visibility vector, and per prefix the OR over its
    announcers. Per-peer visible counts are updated incrementally, so cost
    is O(messages × peers) worst case but only for prefixes whose
    visibility actually changes.
    """
    if not peer_asns:
        raise AnalysisError("need the peer list")
    peers = sorted(peer_asns)
    peer_index = {asn: i for i, asn in enumerate(peers)}
    rtbh = control.rtbh_updates()
    if not rtbh:
        raise AnalysisError("corpus contains no RTBH messages")

    visible = np.zeros(len(peers), dtype=np.int64)
    active_prefixes = 0
    standing: Dict[Tuple[int, IPv4Prefix], np.ndarray] = {}
    announcers_of: Dict[IPv4Prefix, set] = {}
    prefix_visibility: Dict[IPv4Prefix, np.ndarray] = {}

    sample_times = np.arange(control.start_time, control.end_time + sample_interval,
                             sample_interval)
    out_announced = np.zeros(len(sample_times), dtype=np.int64)
    out_max = np.zeros(len(sample_times))
    out_p99 = np.zeros(len(sample_times))
    out_median = np.zeros(len(sample_times))

    def snapshot(k: int) -> None:
        out_announced[k] = active_prefixes
        if active_prefixes == 0:
            return
        filtered = 1.0 - visible / active_prefixes
        out_max[k] = filtered.max()
        out_p99[k] = float(np.quantile(filtered, 0.99))
        out_median[k] = float(np.quantile(filtered, 0.5))

    def recompute_prefix(prefix: IPv4Prefix) -> None:
        nonlocal active_prefixes
        old = prefix_visibility.pop(prefix, None)
        if old is not None:
            visible[:] -= old
            active_prefixes -= 1
        vectors = [standing[(a, prefix)] for a in announcers_of.get(prefix, ())]
        if vectors:
            new = np.logical_or.reduce(vectors).astype(np.int64)
            prefix_visibility[prefix] = new
            visible[:] += new
            active_prefixes += 1

    k = 0
    for msg in rtbh:
        while k < len(sample_times) and sample_times[k] < msg.time:
            snapshot(k)
            k += 1
        key = (msg.peer_asn, msg.prefix)
        if msg.is_announce:
            targets = redistribution_targets(msg.communities, route_server_asn, peers)
            vec = np.zeros(len(peers), dtype=bool)
            for asn in targets:
                vec[peer_index[asn]] = True
            # the announcer trivially sees its own blackhole
            if msg.peer_asn in peer_index:
                vec[peer_index[msg.peer_asn]] = True
            standing[key] = vec
            announcers_of.setdefault(msg.prefix, set()).add(msg.peer_asn)
        else:
            standing.pop(key, None)
            announcers_of.get(msg.prefix, set()).discard(msg.peer_asn)
        recompute_prefix(msg.prefix)
    while k < len(sample_times):
        snapshot(k)
        k += 1

    return TargetedVisibilitySeries(
        times=sample_times,
        announced=out_announced,
        filtered_max=out_max,
        filtered_p99=out_p99,
        filtered_median=out_median,
    )
