"""Per-analysis outcome tracking for degraded-mode studies.

``AnalysisPipeline.run_all(strict=False)`` executes every figure/table of
the study behind typed-exception capture and returns a :class:`StudyReport`
instead of dying on the first bad analysis — the behaviour a long-running
measurement service needs when one day's feed is rotten but the other
nineteen figures are fine.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.errors import ReproError


class AnalysisStatus(str, Enum):
    """How one analysis fared against (possibly degraded) corpora."""

    #: produced a result from fully-clean inputs
    OK = "ok"
    #: produced a result, but ingestion had dropped records on the way in
    DEGRADED = "degraded"
    #: raised a typed :class:`~repro.errors.ReproError`
    FAILED = "failed"


@dataclass
class AnalysisOutcome:
    """One analysis's result or typed failure."""

    name: str
    status: AnalysisStatus
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    seconds: float = 0.0
    #: executions it took to reach this terminal outcome (supervised runs
    #: may retry transient failures; unsupervised runs always report 1)
    attempts: int = 1
    #: attempts killed at the supervisor's wall-clock timeout
    timeouts: int = 0
    #: canonical SHA-256 of the value (:mod:`repro.parallel.golden`),
    #: filled when fingerprinting was requested; survives even when the
    #: value itself could not cross a worker's pickle pipe
    value_digest: Optional[str] = None
    #: True when this outcome was served from the content-addressed
    #: result cache instead of being recomputed
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status is not AnalysisStatus.FAILED


@dataclass
class StudyReport:
    """Every analysis's outcome, in pipeline order."""

    outcomes: List[AnalysisOutcome] = field(default_factory=list)
    #: corpus-level context (ingest losses etc.) the statuses derive from
    warnings: List[str] = field(default_factory=list)
    #: metrics snapshot from the active telemetry context, when one was
    #: enabled during ``run_all`` (None under the null backend)
    telemetry: Optional[dict] = None

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def ok(self) -> bool:
        """True when no analysis failed (degraded still counts as usable)."""
        return all(o.ok for o in self.outcomes)

    @property
    def all_degraded(self) -> bool:
        """True when *every* analysis ran but none ran on clean inputs.

        A fully-degraded study is technically "ok" (nothing failed), yet
        no figure can be trusted at face value — the CLI surfaces this as
        its own exit code (4) so CI catches silent full degradation.
        """
        return bool(self.outcomes) and all(
            o.status is AnalysisStatus.DEGRADED for o in self.outcomes)

    def counts(self) -> Dict[AnalysisStatus, int]:
        out = {status: 0 for status in AnalysisStatus}
        for outcome in self.outcomes:
            out[outcome.status] += 1
        return out

    def outcome(self, name: str) -> AnalysisOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(name)

    def value(self, name: str, default: Any = None) -> Any:
        """The analysis result, or ``default`` if it failed / is absent."""
        for o in self.outcomes:
            if o.name == name:
                return o.value if o.ok else default
        return default

    def failed(self) -> List[AnalysisOutcome]:
        return [o for o in self.outcomes if o.status is AnalysisStatus.FAILED]

    def to_json(self) -> dict:
        """A machine-readable report: statuses, timings, warnings, metrics.

        Analysis *values* are rich python objects and are deliberately not
        serialized; scripts consuming this JSON get the statuses, errors
        and timings — the shape CI needs to gate on.
        """
        counts = self.counts()
        return {
            "ok": self.ok,
            "all_degraded": self.all_degraded,
            "counts": {status.value: counts[status]
                       for status in AnalysisStatus},
            "warnings": list(self.warnings),
            "analyses": [
                {
                    "name": o.name,
                    "status": o.status.value,
                    "seconds": o.seconds,
                    "error": o.error,
                    "error_type": o.error_type,
                    "attempts": o.attempts,
                    "timeouts": o.timeouts,
                    "value_digest": o.value_digest,
                    "cached": o.cached,
                }
                for o in self.outcomes
            ],
            "telemetry": self.telemetry,
        }

    def canonical_json(self) -> str:
        """A byte-stable projection of the report for equivalence checks.

        Everything execution-dependent — timings, attempt counts, cache
        hits, telemetry — is stripped; what remains (statuses, warnings,
        errors, value fingerprints) must be identical between a serial
        run and any ``--jobs N`` run of the same corpus.  The golden
        suite compares these strings byte for byte.
        """
        import json

        payload = {
            "ok": self.ok,
            "all_degraded": self.all_degraded,
            "warnings": list(self.warnings),
            "analyses": [
                {
                    "name": o.name,
                    "status": o.status.value,
                    "error": o.error,
                    "error_type": o.error_type,
                    "value_digest": o.value_digest,
                }
                for o in self.outcomes
            ],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def format(self) -> str:
        counts = self.counts()
        lines = [
            f"study report: {counts[AnalysisStatus.OK]} ok, "
            f"{counts[AnalysisStatus.DEGRADED]} degraded, "
            f"{counts[AnalysisStatus.FAILED]} failed"
        ]
        for warning in self.warnings:
            lines.append(f"  ! {warning}")
        width = max((len(o.name) for o in self.outcomes), default=0)
        for o in self.outcomes:
            line = f"  {o.name.ljust(width)}  {o.status.value:8s}"
            if o.attempts > 1:
                line += f"  [{o.attempts} attempts, {o.timeouts} timeouts]"
            if o.error is not None:
                line += f"  {o.error_type}: {o.error}"
            lines.append(line)
        return "\n".join(lines)


def run_analysis(name: str, fn, *, strict: bool,
                 degraded_inputs: bool,
                 fingerprint: bool = False) -> AnalysisOutcome:
    """Execute one zero-arg analysis under the capture policy.

    Typed :class:`ReproError` failures are captured (or re-raised when
    ``strict``); anything else is a programming error and always
    propagates — graceful degradation must never paper over bugs.

    ``fingerprint=True`` additionally stamps the outcome with the
    canonical SHA-256 of the value (see :mod:`repro.parallel.golden`);
    the parallel scheduler always requests this so equivalence against
    the serial path stays checkable even for values that cannot pickle.
    """
    base = (AnalysisStatus.DEGRADED if degraded_inputs else AnalysisStatus.OK)
    start = _time.perf_counter()
    try:
        value = fn()
    except ReproError as exc:
        if strict:
            raise
        return AnalysisOutcome(
            name=name, status=AnalysisStatus.FAILED,
            error=str(exc), error_type=type(exc).__name__,
            seconds=_time.perf_counter() - start)
    digest = None
    if fingerprint:
        from repro.parallel.golden import value_fingerprint

        digest = value_fingerprint(value)
    return AnalysisOutcome(name=name, status=base, value=value,
                           seconds=_time.perf_counter() - start,
                           value_digest=digest)
