"""§6.1–6.2: which blackholed hosts are servers, which are clients?
(Figs 16–17, Table 4.)

Host behaviour is profiled on traffic *outside* RTBH events (each event,
plus a 10-minute reaction margin before it, is excluded). A host with
stable daily top ports in its incoming traffic behaves like a server; a
host whose incoming top port changes almost daily — because it talks from
fresh ephemeral ports — behaves like a client.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.corpus.control import ControlPlaneCorpus
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError
from repro.ixp.peeringdb import OrgType, PeeringDB
from repro.net.ip import IPv4Prefix
from repro.net.radix import RadixTree

DAY = 86_400.0
REACTION_MARGIN = 600.0

#: normalisation for the RadViz features (the maximum port number)
PORT_NORMALIZER = 65_535.0

FEATURES = ("in_src_ports", "out_src_ports", "in_dst_ports", "out_dst_ports")


class HostClass(str, Enum):
    SERVER = "server"
    CLIENT = "client"
    UNCLASSIFIED = "unclassified"


@dataclass(frozen=True)
class HostProfile:
    """Per-host behaviour outside of RTBH activity."""

    ip: int
    active_days: int
    port_features: Tuple[int, int, int, int]   # unique-port counts, FEATURES order
    top_ports: Tuple[Tuple[int, int], ...]     # distinct daily top (proto, port)
    port_variation: float                      # unique top ports / active days
    classification: HostClass
    origin_asn: Optional[int] = None


@dataclass
class HostStudy:
    """All profiled hosts plus corpus-level accessors."""

    hosts: List[HostProfile]
    min_days: int

    def classified(self, cls: HostClass) -> List[HostProfile]:
        return [h for h in self.hosts if h.classification is cls]

    def counts(self) -> Dict[HostClass, int]:
        return {cls: len(self.classified(cls)) for cls in HostClass}

    def radviz_matrix(self) -> np.ndarray:
        """Fig. 16 input: (n_hosts, 4) normalised port-diversity features."""
        if not self.hosts:
            raise AnalysisError("no hosts profiled")
        return np.array([h.port_features for h in self.hosts],
                        dtype=np.float64) / PORT_NORMALIZER

    def org_type_table(self, peeringdb: PeeringDB) -> Dict[HostClass, Dict[OrgType, float]]:
        """Table 4: AS-type shares for detected clients and servers."""
        out: Dict[HostClass, Dict[OrgType, float]] = {}
        for cls in (HostClass.CLIENT, HostClass.SERVER):
            hosts = self.classified(cls)
            if not hosts:
                out[cls] = {}
                continue
            histogram: Dict[OrgType, int] = {}
            for host in hosts:
                org = (peeringdb.org_type(host.origin_asn)
                       if host.origin_asn is not None else OrgType.UNKNOWN)
                histogram[org] = histogram.get(org, 0) + 1
            out[cls] = {org: c / len(hosts) for org, c in histogram.items()}
        return out


def _origin_map(control: ControlPlaneCorpus) -> RadixTree:
    """Host → origin AS via the RTBH announcements covering it."""
    tree: RadixTree = RadixTree()
    for msg in control.rtbh_updates():
        if msg.is_announce:
            tree.insert(msg.prefix, msg.origin_asn)
    return tree


def _exclusion_intervals(events: Sequence[RTBHEvent]) -> Dict[IPv4Prefix, List[Tuple[float, float]]]:
    out: Dict[IPv4Prefix, List[Tuple[float, float]]] = {}
    for event in events:
        out.setdefault(event.prefix, []).append(
            (event.start - REACTION_MARGIN, event.end)
        )
    return out


def host_port_features(incoming: np.ndarray, outgoing: np.ndarray) -> Tuple[int, int, int, int]:
    """The four port-diversity features of Fig. 16 for one host."""
    return (
        len(np.unique(incoming["src_port"])) if len(incoming) else 0,
        len(np.unique(outgoing["src_port"])) if len(outgoing) else 0,
        len(np.unique(incoming["dst_port"])) if len(incoming) else 0,
        len(np.unique(outgoing["dst_port"])) if len(outgoing) else 0,
    )


def classify_hosts(
    control: ControlPlaneCorpus,
    data: DataPlaneCorpus,
    events: Sequence[RTBHEvent],
    min_days: int = 20,
    server_variation: float = 0.3,
    client_variation: float = 0.6,
) -> HostStudy:
    """Profile every blackholed host with enough activity (§6.1's
    conservative ≥ ``min_days``-day criterion) and classify it."""
    origin_tree = _origin_map(control)
    exclusions = _exclusion_intervals(events)
    packets = data.packets

    # candidate hosts: addresses covered by any RTBH prefix, as traffic
    # destinations or sources
    unique_dst = np.unique(packets["dst_ip"])
    unique_src = np.unique(packets["src_ip"])
    covered = [ip for ip in np.union1d(unique_dst, unique_src)
               if origin_tree.lookup(int(ip)) is not None]

    hosts: List[HostProfile] = []
    for ip in covered:
        ip = int(ip)
        incoming = packets[packets["dst_ip"] == np.uint32(ip)]
        outgoing = packets[packets["src_ip"] == np.uint32(ip)]
        incoming = _outside_exclusions(incoming, ip, exclusions)
        outgoing = _outside_exclusions(outgoing, ip, exclusions)
        if len(incoming) == 0 and len(outgoing) == 0:
            continue
        in_days = set((incoming["time"] // DAY).astype(int).tolist())
        out_days = set((outgoing["time"] // DAY).astype(int).tolist())
        active_days = len(in_days & out_days)
        top_ports = _daily_top_ports(incoming)
        variation = len(top_ports) / len(in_days) if in_days else 1.0
        if active_days >= min_days:
            if variation <= server_variation:
                cls = HostClass.SERVER
            elif variation >= client_variation:
                cls = HostClass.CLIENT
            else:
                cls = HostClass.UNCLASSIFIED
        else:
            cls = HostClass.UNCLASSIFIED
        hit = origin_tree.lookup(ip)
        hosts.append(HostProfile(
            ip=ip,
            active_days=active_days,
            port_features=host_port_features(incoming, outgoing),
            top_ports=tuple(sorted(top_ports)),
            port_variation=variation,
            classification=cls,
            origin_asn=None if hit is None else int(hit[1]),
        ))
    return HostStudy(hosts=hosts, min_days=min_days)


def _outside_exclusions(packets: np.ndarray, ip: int,
                        exclusions: Dict[IPv4Prefix, List[Tuple[float, float]]]) -> np.ndarray:
    if len(packets) == 0:
        return packets
    keep = np.ones(len(packets), dtype=bool)
    times = packets["time"]
    for prefix, intervals in exclusions.items():
        if ip not in prefix:
            continue
        for start, end in intervals:
            keep &= ~((times >= start) & (times < end))
    return packets[keep]


def _daily_top_ports(incoming: np.ndarray) -> set[Tuple[int, int]]:
    """Distinct daily top (protocol, destination port) pairs."""
    tops: set[Tuple[int, int]] = set()
    if len(incoming) == 0:
        return tops
    days = (incoming["time"] // DAY).astype(np.int64)
    order = np.argsort(days, kind="stable")
    days = days[order]
    sorted_packets = incoming[order]
    bounds = np.flatnonzero(np.r_[True, days[1:] != days[:-1]])
    bounds = np.r_[bounds, len(days)]
    for b in range(len(bounds) - 1):
        chunk = sorted_packets[bounds[b]:bounds[b + 1]]
        key = chunk["protocol"].astype(np.int64) << np.int64(16)
        key |= chunk["dst_port"].astype(np.int64)
        values, counts = np.unique(key, return_counts=True)
        top = int(values[np.argmax(counts)])
        tops.add((top >> 16, top & 0xFFFF))
    return tops
