"""End-to-end analysis pipeline.

:class:`AnalysisPipeline` strings every per-figure analysis together with
shared caching: events are extracted once, the pre-RTBH classification and
per-event traffic are computed once, and every figure/table draws on those.
Consumes only the two corpora (plus the membership list and the PeeringDB
registry for the joins) — never scenario ground truth.

Analyses are addressed by name through the registry
(:data:`repro.core.registry.ANALYSES`)::

    pipeline.run("fig10_merge_sweep")

The historical per-figure methods (``pipeline.fig10_merge_sweep()``)
remain as thin shims that emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from functools import cached_property
from typing import Callable, Dict, List, Sequence

from repro.core import classify as classify_mod
from repro.core import collateral as collateral_mod
from repro.core import droprate as droprate_mod
from repro.core import filtering as filtering_mod
from repro.core import hosts as hosts_mod
from repro.core import load as load_mod
from repro.core import offset as offset_mod
from repro.core import pre_rtbh as pre_mod
from repro.core import protocols as protocols_mod
from repro.core import visibility as visibility_mod
from repro.core.events import DEFAULT_DELTA, RTBHEvent, extract_events
from repro.core.registry import ANALYSES, get_analysis
from repro.core.study import StudyReport, run_analysis
from repro.corpus.control import ControlPlaneCorpus
from repro.corpus.data import DataPlaneCorpus
from repro.ixp.peeringdb import PeeringDB
from repro import telemetry

#: every analysis `run_all` executes, in study order; names are registry
#: names (see :data:`repro.core.registry.ANALYSES`) so reports stay
#: greppable against the paper
ANALYSIS_NAMES = tuple(spec.name for spec in ANALYSES)


class AnalysisPipeline:
    """Lazy, cached access to every analysis of the study."""

    def __init__(
        self,
        control: ControlPlaneCorpus,
        data: DataPlaneCorpus,
        peer_asns: Sequence[int],
        peeringdb: PeeringDB | None = None,
        route_server_asn: int = 64_500,
        delta: float = DEFAULT_DELTA,
        host_min_days: int = 20,
    ):
        self.control = control
        self.data = data
        self.peer_asns = list(peer_asns)
        self.peeringdb = peeringdb or PeeringDB()
        self.route_server_asn = route_server_asn
        self.delta = delta
        self.host_min_days = host_min_days

    # -- shared intermediates ---------------------------------------------------

    @cached_property
    def events(self) -> List[RTBHEvent]:
        """Δ-merged RTBH events (§5.1)."""
        return extract_events(self.control, delta=self.delta)

    @cached_property
    def pre_classification(self) -> pre_mod.PreRTBHClassification:
        """Pre-RTBH traffic classification (§5.2–5.3)."""
        return pre_mod.classify_pre_rtbh_events(self.data, self.events)

    @cached_property
    def event_traffic(self) -> List[droprate_mod.EventTraffic]:
        """Per-event during-blackhole traffic totals."""
        return droprate_mod.event_traffic(self.data, self.events)

    @cached_property
    def host_study(self) -> hosts_mod.HostStudy:
        """Figs 16–17 / Table 4 host profiling."""
        return hosts_mod.classify_hosts(self.control, self.data, self.events,
                                        min_days=self.host_min_days)

    # -- named execution --------------------------------------------------------

    def run(self, name: str, /, **kwargs):
        """Run one analysis by its registry name.

        ``kwargs`` are forwarded to the analysis (e.g. ``top_n`` for
        ``fig7_top_sources``).  Unknown names raise
        :class:`~repro.errors.AnalysisError`.
        """
        return self.analysis_fn(name)(**kwargs)

    def analysis_fn(self, name: str) -> Callable:
        """The bound zero-argument callable for a registry name.

        The non-deprecated accessor used by the serial, supervised, and
        parallel runners — unlike ``getattr(pipeline, name)`` it does not
        trip the deprecation shims.
        """
        return getattr(self, "_impl_" + get_analysis(name).name)

    # -- figures & tables -------------------------------------------------------

    def _impl_fig2_time_offset(self) -> "offset_mod.OffsetEstimate":
        return offset_mod.time_offset_analysis(self.control, self.data)

    def _impl_fig3_load(self) -> load_mod.RTBHLoadSeries:
        return load_mod.rtbh_load_series(self.control)

    def _impl_fig4_targeted_visibility(
            self, sample_interval: float = 3_600.0,
    ) -> visibility_mod.TargetedVisibilitySeries:
        return visibility_mod.targeted_visibility(
            self.control, self.peer_asns, self.route_server_asn,
            sample_interval=sample_interval,
        )

    def _impl_fig5_drop_by_length(self) -> droprate_mod.PrefixLengthDropRates:
        return droprate_mod.drop_rate_by_prefix_length(self.data, self.events)

    def _impl_fig6_drop_cdfs(self, lengths=(24, 32)):
        return droprate_mod.drop_rate_cdf_by_length(self.data, self.events,
                                                    lengths=lengths)

    def _impl_fig7_top_sources(self, top_n: int = 100,
                               ) -> List[droprate_mod.SourceReaction]:
        return droprate_mod.top_source_reactions(self.data, self.events,
                                                 top_n=top_n)

    def _impl_fig8_org_types(self, top_n: int = 100):
        return droprate_mod.top_source_org_types(
            self._impl_fig7_top_sources(top_n), self.peeringdb)

    def _impl_fig10_merge_sweep(self, deltas=None):
        return droprate_sweep(self.control, deltas)

    def _impl_table2_pre_classes(self) -> Dict[pre_mod.PreRTBHClass, float]:
        return self.pre_classification.class_shares()

    def _impl_sec54_protocol_mix(self) -> protocols_mod.EventProtocolMix:
        return protocols_mod.event_protocol_mix(self.data, self.events,
                                                self.pre_classification)

    def _impl_table3_amplification(self) -> Dict[int, float]:
        return protocols_mod.amplification_protocol_table(
            self._impl_sec54_protocol_mix())

    def _impl_fig14_filterable(self):
        return filtering_mod.filterable_share_cdf(self.data, self.events,
                                                  self.pre_classification)

    def _impl_fig15_participation(self) -> filtering_mod.ASParticipation:
        return filtering_mod.as_participation(self.data, self.events,
                                              self.pre_classification)

    def _impl_table4_host_types(self):
        return self.host_study.org_type_table(self.peeringdb)

    def _impl_fig18_collateral(self) -> collateral_mod.CollateralDamage:
        return collateral_mod.collateral_damage(self.data, self.events,
                                                self.host_study)

    def _impl_fig19_use_cases(self) -> classify_mod.UseCaseClassification:
        # On short corpora the absolute month-scale squatting threshold is
        # unreachable; scale it down to a large fraction of the span.
        span_days = (self.control.end_time - self.control.start_time) / 86_400.0
        return classify_mod.classify_events(
            self.events, self.pre_classification, self.event_traffic,
            corpus_end=self.control.end_time,
            squatting_min_days=min(14.0, 0.5 * span_days),
            zombie_min_days=min(7.0, 0.3 * span_days),
        )

    # -- degraded-mode execution ------------------------------------------------

    @property
    def degraded_inputs(self) -> bool:
        """Whether either corpus lost records during (lenient) ingestion."""
        for corpus in (self.control, self.data):
            report = getattr(corpus, "ingest_report", None)
            if report is not None and not report.ok:
                return True
        return False

    def warm_shared_caches(self) -> None:
        """Precompute the shared intermediates (events, classifications).

        The supervised runner calls this in the parent before forking the
        per-analysis children, so every child inherits the caches via
        copy-on-write instead of recomputing them.  Typed failures are
        swallowed — the affected analyses will surface them individually.
        """
        from repro.errors import ReproError

        for attr in ("events", "pre_classification", "event_traffic",
                     "host_study"):
            try:
                getattr(self, attr)
            except ReproError:
                pass

    def run_all(self, strict: bool = True,
                analyses: Sequence[str] | None = None,
                supervisor=None, checkpoint=None, jobs: int = 1,
                cache=None, corpus_digest=None,
                config_hash=None) -> StudyReport:
        """Run every analysis of the study and report per-figure status.

        ``strict=True`` re-raises the first typed
        :class:`~repro.errors.ReproError`; ``strict=False`` captures typed
        failures per analysis so one rotten figure cannot take down the
        other fifteen.  Analyses that succeed on lossy inputs (lenient
        ingestion dropped records) are marked ``degraded`` rather than
        ``ok``.  Untyped exceptions always propagate — they are bugs, not
        data problems.

        Passing a :class:`~repro.runtime.supervisor.SupervisorPolicy` as
        ``supervisor`` delegates to the crash-safe runner instead: each
        analysis executes in a child process under a wall-clock timeout
        with bounded retries, and a hung/killed/crashing analysis becomes
        a ``failed`` outcome rather than taking down the run.
        ``checkpoint`` (a :class:`~repro.runtime.checkpoint
        .CheckpointJournal`) additionally persists terminal outcomes so a
        resumed run re-executes only unfinished analyses.

        ``jobs != 1`` delegates to the parallel scheduler
        (:func:`~repro.parallel.scheduler.run_parallel`): up to ``jobs``
        analyses run concurrently in forked workers (0 = all CPUs) with
        the same supervision semantics; ``jobs=1`` is the serial
        reference path the golden-equivalence suite compares against.
        ``cache`` (a :class:`~repro.parallel.cache.ResultCache`, with the
        corpus digest and config hash to key on) skips analyses whose
        results are already cached for this exact corpus + config.
        """
        if jobs != 1 or cache is not None:
            from repro.parallel.scheduler import run_parallel

            return run_parallel(self, analyses=analyses, policy=supervisor,
                                jobs=jobs or None, strict=strict,
                                journal=checkpoint, cache=cache,
                                corpus_digest=corpus_digest,
                                config_hash=config_hash)
        if supervisor is not None:
            from repro.runtime.supervisor import run_supervised

            return run_supervised(self, analyses=analyses, policy=supervisor,
                                  strict=strict, journal=checkpoint)
        telem = telemetry.current()
        report = StudyReport()
        degraded = self.degraded_inputs
        for corpus_name, corpus in (("control", self.control),
                                    ("data", self.data)):
            ingest = getattr(corpus, "ingest_report", None)
            if ingest is not None and not ingest.ok:
                report.warnings.append(
                    f"{corpus_name} ingest dropped {ingest.skipped} of "
                    f"{ingest.total} records")
        for name in (analyses if analyses is not None else ANALYSIS_NAMES):
            with telem.span(f"analyze.{name}") as sp:
                outcome = run_analysis(
                    name, self.analysis_fn(name), strict=strict,
                    degraded_inputs=degraded, fingerprint=True)
                sp.attrs["status"] = outcome.status.value
            telem.histogram("pipeline.analysis_seconds",
                            name=name).observe(outcome.seconds)
            telem.counter("pipeline.analyses",
                          status=outcome.status.value).inc()
            report.outcomes.append(outcome)
        if telem.enabled:
            report.telemetry = telem.metrics_snapshot()
        return report


def _deprecated_accessor(name: str):
    """A shim method delegating ``pipeline.<name>()`` to the registry."""
    impl_name = "_impl_" + name

    def shim(self, *args, **kwargs):
        warnings.warn(
            f"AnalysisPipeline.{name}() is deprecated; use "
            f"pipeline.run({name!r}) instead (see "
            "repro.core.registry.ANALYSES)",
            DeprecationWarning, stacklevel=2)
        return getattr(self, impl_name)(*args, **kwargs)

    shim.__name__ = name
    shim.__qualname__ = f"AnalysisPipeline.{name}"
    shim.__doc__ = (f"Deprecated alias for ``run({name!r})`` — "
                    "emits ``DeprecationWarning``.")
    return shim


for _name in ANALYSIS_NAMES:
    setattr(AnalysisPipeline, _name, _deprecated_accessor(_name))
del _name


def droprate_sweep(control: ControlPlaneCorpus, deltas=None):
    """Thin alias kept next to the pipeline for discoverability."""
    from repro.core.events import merge_threshold_sweep

    return merge_threshold_sweep(control, deltas)
