"""§5.5: potentials of fine-grained filtering (Figs 14–15).

Fig. 14 emulates a port-based filter: for each anomaly event with data,
which share of its packets would an a-priori list of UDP amplification
source ports have dropped? Fig. 15 asks how concentrated the reflector
population is: for every handover AS and origin AS, in what share of the
amplification events did it participate?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.core.pre_rtbh import PreRTBHClass, PreRTBHClassification
from repro.core.protocols import event_window_packets
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError
from repro.net.ports import AMPLIFICATION_PORTS
from repro.net.protocols import IPProtocol
from repro.stats.cdf import EmpiricalCDF


def _anomaly_events(events: Sequence[RTBHEvent],
                    classification: PreRTBHClassification) -> List[RTBHEvent]:
    anomalous = {e.event_id for e in classification.events
                 if e.classification is PreRTBHClass.DATA_ANOMALY}
    return [e for e in events if e.event_id in anomalous]


def filterable_share_cdf(
    data: DataPlaneCorpus,
    events: Sequence[RTBHEvent],
    classification: PreRTBHClassification,
    ports: frozenset[int] = AMPLIFICATION_PORTS,
    window_packets: Optional[Callable[[RTBHEvent], np.ndarray]] = None,
) -> EmpiricalCDF:
    """Fig. 14: ECDF over events of the share of packets a UDP
    source-port filter would have dropped.

    ``window_packets`` swaps the per-event packet gather (columnar hook).
    """
    if window_packets is None:
        window_packets = lambda event: event_window_packets(data, event)  # noqa: E731
    shares = []
    for event in _anomaly_events(events, classification):
        packets = window_packets(event)
        if len(packets) == 0:
            continue
        udp = packets["protocol"] == int(IPProtocol.UDP)
        matches = udp & np.isin(packets["src_port"], sorted(ports))
        shares.append(float(matches.sum()) / len(packets))
    if not shares:
        raise AnalysisError("no anomaly events with traffic")
    return EmpiricalCDF(shares)


@dataclass(frozen=True)
class ASParticipation:
    """Fig. 15: per-AS participation in amplification events."""

    total_events: int
    #: AS -> share of events it appeared in
    handover: Dict[int, float]
    origin: Dict[int, float]
    mean_amplifiers_per_event: float
    mean_handover_asns_per_event: float
    mean_origin_asns_per_event: float

    def top(self, which: str, n: int = 10) -> List[Tuple[int, float]]:
        table = self.handover if which == "handover" else self.origin
        return sorted(table.items(), key=lambda kv: kv[1], reverse=True)[:n]

    def participation_cdf(self, which: str) -> EmpiricalCDF:
        table = self.handover if which == "handover" else self.origin
        return EmpiricalCDF(list(table.values()))


def as_participation(
    data: DataPlaneCorpus,
    events: Sequence[RTBHEvent],
    classification: PreRTBHClassification,
    ports: frozenset[int] = AMPLIFICATION_PORTS,
    window_packets: Optional[Callable[[RTBHEvent], np.ndarray]] = None,
) -> ASParticipation:
    """Fig. 15 over all anomaly events with UDP-amplification traffic.

    Only reflected packets (UDP with an amplification source port) count:
    their source addresses are genuine reflector addresses, so the origin
    AS attribution is not spoofable — the handover AS (MAC-derived) never
    is.  ``window_packets`` swaps the per-event packet gather (columnar
    hook).
    """
    if window_packets is None:
        window_packets = lambda event: event_window_packets(data, event)  # noqa: E731
    handover_hits: Dict[int, int] = {}
    origin_hits: Dict[int, int] = {}
    amp_counts, handover_counts, origin_counts = [], [], []
    n_events = 0
    port_list = sorted(ports)
    for event in _anomaly_events(events, classification):
        packets = window_packets(event)
        if len(packets) == 0:
            continue
        amp = packets[(packets["protocol"] == int(IPProtocol.UDP))
                      & np.isin(packets["src_port"], port_list)]
        if len(amp) == 0:
            continue
        n_events += 1
        handovers = set(np.unique(amp["ingress_asn"]).tolist())
        origins = set(np.unique(amp["origin_asn"]).tolist())
        amp_counts.append(len(np.unique(amp["src_ip"])))
        handover_counts.append(len(handovers))
        origin_counts.append(len(origins))
        for asn in handovers:
            handover_hits[asn] = handover_hits.get(asn, 0) + 1
        for asn in origins:
            origin_hits[asn] = origin_hits.get(asn, 0) + 1
    if n_events == 0:
        raise AnalysisError("no amplification events with traffic")
    return ASParticipation(
        total_events=n_events,
        handover={asn: c / n_events for asn, c in handover_hits.items()},
        origin={asn: c / n_events for asn, c in origin_hits.items()},
        mean_amplifiers_per_event=float(np.mean(amp_counts)),
        mean_handover_asns_per_event=float(np.mean(handover_counts)),
        mean_origin_asns_per_event=float(np.mean(origin_counts)),
    )
