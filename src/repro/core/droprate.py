"""§4.2: acceptance of blackhole routes, measured on the data plane
(Figs 5–8).

For every RTBH event the analysis selects the packets destined into the
blackholed prefix *while the blackhole was announced* and splits them into
dropped (they resolved to the blackhole MAC) and forwarded. Aggregating by
prefix length gives Fig. 5; the per-event drop-share distributions give
Fig. 6; grouping the /32 traffic by the handover AS gives Fig. 7 and the
PeeringDB join Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError
from repro.ixp.peeringdb import OrgType, PeeringDB
from repro.net.ip import IPv4Prefix
from repro.stats.cdf import EmpiricalCDF

_MAX32 = 0xFFFFFFFF


def _dst_mask(packets: np.ndarray, prefix: IPv4Prefix) -> np.ndarray:
    """Boolean mask of ``packets`` destined into ``prefix``."""
    bits = (_MAX32 << (32 - prefix.length)) & _MAX32 if prefix.length else 0
    return (packets["dst_ip"] & np.uint32(bits)) == np.uint32(prefix.network_int)


@dataclass(frozen=True)
class EventTraffic:
    """Per-event traffic totals during announced windows."""

    event_id: int
    prefix_length: int
    packets: int
    dropped_packets: int
    bytes: int
    dropped_bytes: int

    @property
    def drop_share_packets(self) -> float:
        return self.dropped_packets / self.packets if self.packets else 0.0

    @property
    def drop_share_bytes(self) -> float:
        return self.dropped_bytes / self.bytes if self.bytes else 0.0


def event_traffic(data: DataPlaneCorpus, events: Sequence[RTBHEvent],
                  ) -> List[EventTraffic]:
    """Select and total each event's during-blackhole traffic."""
    out = []
    for event in events:
        # The corpus is time-sorted: work on the window slices only.
        parts = []
        for start, end in event.windows:
            window = data.slice_time(start, end)
            if len(window) == 0:
                continue
            mask = _dst_mask(window, event.prefix)
            if mask.any():
                parts.append(window[mask])
        sub = np.concatenate(parts) if parts else np.zeros(0, dtype=data.packets.dtype)
        if len(sub) == 0:
            out.append(EventTraffic(event.event_id, event.prefix.length, 0, 0, 0, 0))
            continue
        sizes = sub["size"].astype(np.int64)
        dropped = sub["dropped"]
        out.append(EventTraffic(
            event_id=event.event_id,
            prefix_length=event.prefix.length,
            packets=len(sub),
            dropped_packets=int(dropped.sum()),
            bytes=int(sizes.sum()),
            dropped_bytes=int(sizes[dropped].sum()),
        ))
    return out


@dataclass(frozen=True)
class PrefixLengthDropRates:
    """Fig. 5: per-length aggregate drop rates and traffic shares."""

    lengths: np.ndarray
    drop_share_packets: np.ndarray
    drop_share_bytes: np.ndarray
    traffic_share: np.ndarray        # share of all blackhole traffic (packets)
    average_drop_packets: float      # dashed lines of Fig. 5
    average_drop_bytes: float

    def row(self, length: int) -> Tuple[float, float, float]:
        idx = int(np.flatnonzero(self.lengths == length)[0])
        return (float(self.drop_share_packets[idx]),
                float(self.drop_share_bytes[idx]),
                float(self.traffic_share[idx]))


def window_traffic_totals(data: DataPlaneCorpus, prefix: IPv4Prefix,
                          t0: float, t1: float) -> Tuple[int, int, int, int]:
    """``(packets, dropped, bytes, dropped_bytes)`` destined into
    ``prefix`` during ``[t0, t1)``.

    The per-window kernel of :func:`event_traffic`, exposed so the
    streaming engine can accumulate the same integer totals window
    fragment by window fragment — sums of fragment totals equal the
    batch totals exactly.
    """
    window = data.slice_time(t0, t1)
    if len(window) == 0:
        return 0, 0, 0, 0
    mask = _dst_mask(window, prefix)
    if not mask.any():
        return 0, 0, 0, 0
    sub = window[mask]
    sizes = sub["size"].astype(np.int64)
    dropped = sub["dropped"]
    return (len(sub), int(dropped.sum()),
            int(sizes.sum()), int(sizes[dropped].sum()))


def drop_rate_by_prefix_length(data: DataPlaneCorpus,
                               events: Sequence[RTBHEvent]) -> PrefixLengthDropRates:
    """Aggregate Fig. 5 from per-event traffic."""
    return aggregate_drop_rates(event_traffic(data, events))


def aggregate_drop_rates(traffic: Sequence[EventTraffic],
                         ) -> PrefixLengthDropRates:
    """Fig. 5 from already-computed per-event totals (reducer state)."""
    by_len: Dict[int, List[EventTraffic]] = {}
    for t in traffic:
        by_len.setdefault(t.prefix_length, []).append(t)
    total_packets = sum(t.packets for t in traffic)
    if total_packets == 0:
        raise AnalysisError("no traffic to any blackholed prefix")
    lengths = np.array(sorted(by_len))
    drop_p, drop_b, share = [], [], []
    for length in lengths:
        group = by_len[length]
        pk = sum(t.packets for t in group)
        by = sum(t.bytes for t in group)
        drop_p.append(sum(t.dropped_packets for t in group) / pk if pk else 0.0)
        drop_b.append(sum(t.dropped_bytes for t in group) / by if by else 0.0)
        share.append(pk / total_packets)
    total_bytes = sum(t.bytes for t in traffic)
    return PrefixLengthDropRates(
        lengths=lengths,
        drop_share_packets=np.array(drop_p),
        drop_share_bytes=np.array(drop_b),
        traffic_share=np.array(share),
        average_drop_packets=sum(t.dropped_packets for t in traffic) / total_packets,
        average_drop_bytes=(sum(t.dropped_bytes for t in traffic) / total_bytes
                            if total_bytes else 0.0),
    )


def drop_rate_cdf_by_length(data: DataPlaneCorpus, events: Sequence[RTBHEvent],
                            lengths: Sequence[int] = (24, 32),
                            min_packets: int = 10) -> Dict[int, EmpiricalCDF]:
    """Fig. 6: per-event drop-share ECDFs for selected prefix lengths.

    Events with fewer than ``min_packets`` sampled packets are skipped —
    a drop share estimated from a couple of samples is noise.
    """
    return drop_cdfs_from_traffic(event_traffic(data, events),
                                  lengths=lengths, min_packets=min_packets)


def drop_cdfs_from_traffic(traffic: Sequence[EventTraffic],
                           lengths: Sequence[int] = (24, 32),
                           min_packets: int = 10) -> Dict[int, EmpiricalCDF]:
    """Fig. 6 from already-computed per-event totals (reducer state)."""
    out: Dict[int, EmpiricalCDF] = {}
    for length in lengths:
        shares = [t.drop_share_packets for t in traffic
                  if t.prefix_length == length and t.packets >= min_packets]
        if shares:
            out[length] = EmpiricalCDF(shares)
    if not out:
        raise AnalysisError(f"no events with >= {min_packets} packets at {lengths}")
    return out


@dataclass(frozen=True)
class SourceReaction:
    """One handover AS's aggregate reaction to /32 blackholes (Fig. 7)."""

    asn: int
    packets: int
    dropped: int

    @property
    def drop_share(self) -> float:
        return self.dropped / self.packets if self.packets else 0.0


def top_source_reactions(data: DataPlaneCorpus, events: Sequence[RTBHEvent],
                         top_n: int = 100,
                         prefix_length: int = 32) -> List[SourceReaction]:
    """Fig. 7: the ``top_n`` handover ASes by traffic volume towards
    /32 blackholes, with their drop shares, ordered by drop share."""
    parts = []
    for event in events:
        if event.prefix.length != prefix_length:
            continue
        for start, end in event.windows:
            window = data.slice_time(start, end)
            if len(window) == 0:
                continue
            mask = _dst_mask(window, event.prefix)
            if mask.any():
                parts.append(window[mask])
    sub = (np.concatenate(parts) if parts
           else np.zeros(0, dtype=data.packets.dtype))
    if len(sub) == 0:
        raise AnalysisError("no traffic towards blackholes of that length")
    asns, inverse = np.unique(sub["ingress_asn"], return_inverse=True)
    totals = np.bincount(inverse, minlength=len(asns))
    dropped = np.bincount(inverse, weights=sub["dropped"].astype(np.float64),
                          minlength=len(asns)).astype(np.int64)
    order = np.argsort(totals)[::-1][:top_n]
    reactions = [SourceReaction(int(asns[i]), int(totals[i]), int(dropped[i]))
                 for i in order]
    reactions.sort(key=lambda r: r.drop_share, reverse=True)
    return reactions


def reaction_buckets(reactions: Sequence[SourceReaction],
                     hi: float = 0.99, lo: float = 0.01) -> Dict[str, int]:
    """The Fig. 7 / §7.1 summary: how many of the top sources drop almost
    everything, forward almost everything, or are inconsistent."""
    return {
        "drop_ge_99": sum(r.drop_share >= hi for r in reactions),
        "forward_ge_99": sum(r.drop_share <= lo for r in reactions),
        "inconsistent": sum(lo < r.drop_share < hi for r in reactions),
    }


def top_source_org_types(reactions: Sequence[SourceReaction],
                         peeringdb: PeeringDB) -> Dict[OrgType, int]:
    """Fig. 8: PeeringDB organisation types of the top traffic sources."""
    return peeringdb.type_histogram(r.asn for r in reactions)
