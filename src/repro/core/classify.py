"""§7.3: use-case classification of RTBH events (Fig. 19, driven by the
expected characteristics of Table 1).

The rule set mirrors the paper's reasoning:

* an event whose pre-window shows a traffic anomaly within 10 minutes is
  highly likely **infrastructure protection** (DDoS mitigation);
* a ≤ /24 event held for weeks without DDoS traffic matches **squatting
  protection**;
* a /32 event with fewer than 10 sampled packets that stays active for a
  very long time (often until the end of the corpus) is an **RTBH
  zombie** — once triggered, then forgotten;
* everything else is **other**: constant traffic, no anomalous change, no
  matching known use case.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence

import numpy as np

from repro.core.droprate import EventTraffic
from repro.core.events import RTBHEvent
from repro.core.pre_rtbh import PreRTBHClass, PreRTBHClassification
from repro.errors import AnalysisError

DAY = 86_400.0


class UseCase(str, Enum):
    INFRASTRUCTURE_PROTECTION = "infrastructure-protection"
    SQUATTING_PROTECTION = "squatting-protection"
    ZOMBIE = "rtbh-zombie"
    OTHER = "other"


@dataclass(frozen=True)
class ExpectedCharacteristics:
    """One row of the paper's Table 1: literature/interview-based
    expectations per RTBH use case."""

    use_case: UseCase
    trigger: str
    prefix_length: str
    reaction_latency: str
    typical_duration: str
    traffic: str
    target: str


#: Table 1 of the paper, as data. The classifier's rule set below is the
#: operational encoding of these expectations.
TABLE1_EXPECTATIONS: tuple[ExpectedCharacteristics, ...] = (
    ExpectedCharacteristics(
        use_case=UseCase.INFRASTRUCTURE_PROTECTION,
        trigger="automatic detection and triggering",
        prefix_length="/32",
        reaction_latency="seconds-minutes",
        typical_duration="minutes-hours",
        traffic="attack",
        target="server",
    ),
    ExpectedCharacteristics(
        use_case=UseCase.SQUATTING_PROTECTION,
        trigger="manual",
        prefix_length="<= /24",
        reaction_latency="n/a",
        typical_duration="months",
        traffic="scanning",
        target="none",
    ),
    ExpectedCharacteristics(
        use_case=UseCase.OTHER,  # content blocking, §2.4
        trigger="manual",
        prefix_length="/32",
        reaction_latency="n/a",
        typical_duration="weeks-months",
        traffic="normal",
        target="server",
    ),
)


@dataclass(frozen=True)
class ClassifiedEvent:
    event_id: int
    use_case: UseCase
    duration: float
    prefix_length: int
    packets: int


@dataclass
class UseCaseClassification:
    """Fig. 19: per-event use cases plus the summary shares."""

    events: List[ClassifiedEvent]

    def shares(self) -> Dict[UseCase, float]:
        if not self.events:
            raise AnalysisError("no events classified")
        n = len(self.events)
        out = {uc: 0 for uc in UseCase}
        for event in self.events:
            out[event.use_case] += 1
        return {uc: c / n for uc, c in out.items()}

    def counts(self) -> Dict[UseCase, int]:
        out = {uc: 0 for uc in UseCase}
        for event in self.events:
            out[event.use_case] += 1
        return out

    def duration_quartiles(self, use_case: UseCase) -> tuple[float, float, float]:
        durations = [e.duration for e in self.events if e.use_case is use_case]
        if not durations:
            raise AnalysisError(f"no events of {use_case}")
        q = np.quantile(durations, [0.25, 0.5, 0.75])
        return float(q[0]), float(q[1]), float(q[2])


def classify_events(
    events: Sequence[RTBHEvent],
    pre: PreRTBHClassification,
    traffic: Sequence[EventTraffic],
    corpus_end: float,
    squatting_min_days: float = 14.0,
    zombie_min_days: float = 7.0,
    zombie_max_packets: int = 10,
) -> UseCaseClassification:
    """Apply the Table 1 / §7.3 rule set to every event."""
    if not (len(events) == len(pre.events) == len(traffic)):
        raise AnalysisError("events, pre-classification and traffic must align")
    pre_by_id = {e.event_id: e for e in pre.events}
    traffic_by_id = {t.event_id: t for t in traffic}
    out: List[ClassifiedEvent] = []
    for event in events:
        pre_event = pre_by_id[event.event_id]
        packets = traffic_by_id[event.event_id].packets
        runs_to_end = event.end >= corpus_end - 60.0
        if pre_event.classification is PreRTBHClass.DATA_ANOMALY:
            use_case = UseCase.INFRASTRUCTURE_PROTECTION
        elif (event.prefix.length <= 24
              and event.duration >= squatting_min_days * DAY):
            use_case = UseCase.SQUATTING_PROTECTION
        elif (event.prefix.length == 32
              and packets < zombie_max_packets
              and (runs_to_end or event.duration >= zombie_min_days * DAY)):
            use_case = UseCase.ZOMBIE
        else:
            use_case = UseCase.OTHER
        out.append(ClassifiedEvent(
            event_id=event.event_id,
            use_case=use_case,
            duration=event.duration,
            prefix_length=event.prefix.length,
            packets=packets,
        ))
    return UseCaseClassification(events=out)
