"""§5.2–5.3: traffic before RTBH events (Figs 11–13, Table 2).

For every RTBH event the 72 hours before the first announcement (the
*pre-RTBH event*) are aggregated into 5-minute slots with five features —
packets, flows, unique source IPs, unique destination ports, non-TCP
flows — and scanned with the EWMA anomaly detector (24 h span, 2.5 SD).
Events are classified into: no sampled data at all / data but no anomaly /
data with an anomaly within 10 minutes of the first announcement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix
from repro.stats.anomaly import AnomalyConfig, EWMAAnomalyDetector

SLOT = 300.0                 # 5-minute slots
PRE_WINDOW = 72 * 3_600.0    # 72 hours
N_SLOTS = int(PRE_WINDOW / SLOT)
FEATURE_NAMES = ("packets", "flows", "src_ips", "dst_ports", "non_tcp_flows")

_MAX32 = 0xFFFFFFFF


def _dst_mask(packets: np.ndarray, prefix: IPv4Prefix) -> np.ndarray:
    bits = (_MAX32 << (32 - prefix.length)) & _MAX32 if prefix.length else 0
    return (packets["dst_ip"] & np.uint32(bits)) == np.uint32(prefix.network_int)


def slot_features(packets: np.ndarray, window_start: float,
                  n_slots: int = N_SLOTS, slot: float = SLOT) -> np.ndarray:
    """The §5.3 feature matrix, ``(n_slots, 5)``.

    ``packets`` must already be restricted to the traffic of interest.
    Uniques (flows, sources, ports) are counted per slot.
    """
    features = np.zeros((n_slots, len(FEATURE_NAMES)), dtype=np.float64)
    if len(packets) == 0:
        return features
    slots = ((packets["time"] - window_start) // slot).astype(np.int64)
    valid = (slots >= 0) & (slots < n_slots)
    packets = packets[valid]
    slots = slots[valid]
    if len(packets) == 0:
        return features
    order = np.argsort(slots, kind="stable")
    packets, slots = packets[order], slots[order]
    bounds = np.flatnonzero(np.r_[True, slots[1:] != slots[:-1]])
    bounds = np.r_[bounds, len(slots)]
    flow_key = (
        packets["src_ip"].astype(np.uint64) * np.uint64(2654435761)
        ^ (packets["dst_ip"].astype(np.uint64) << np.uint64(16))
        ^ (packets["src_port"].astype(np.uint64) << np.uint64(32))
        ^ (packets["dst_port"].astype(np.uint64) << np.uint64(48))
        ^ packets["protocol"].astype(np.uint64)
    )
    for b in range(len(bounds) - 1):
        lo, hi = bounds[b], bounds[b + 1]
        s = slots[lo]
        chunk = packets[lo:hi]
        keys = flow_key[lo:hi]
        features[s, 0] = hi - lo
        features[s, 1] = len(np.unique(keys))
        features[s, 2] = len(np.unique(chunk["src_ip"]))
        features[s, 3] = len(np.unique(chunk["dst_port"]))
        non_tcp = chunk["protocol"] != 6
        features[s, 4] = len(np.unique(keys[non_tcp])) if non_tcp.any() else 0
    return features


class PreRTBHClass(str, Enum):
    NO_DATA = "no-data"
    DATA_NO_ANOMALY = "data-no-anomaly"
    DATA_ANOMALY = "data-anomaly"


@dataclass(frozen=True)
class PreRTBHEvent:
    """Per-event pre-window summary."""

    event_id: int
    classification: PreRTBHClass
    slots_with_data: int
    total_packets: int
    #: (minutes before the event start, anomaly level) per anomalous slot
    anomalies: Tuple[Tuple[float, int], ...] = ()
    #: per-feature last-slot / window-mean ratios (NaN when undefined)
    amplification_factors: Tuple[float, ...] = ()
    last_slot_is_max: bool = False

    @property
    def has_anomaly_within(self) -> Dict[str, bool]:
        return {
            "10min": any(off <= 10.0 for off, _ in self.anomalies),
            "1h": any(off <= 60.0 for off, _ in self.anomalies),
        }


@dataclass
class PreRTBHClassification:
    """Corpus-wide results: Table 2 plus the Fig. 11–13 inputs."""

    events: List[PreRTBHEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def class_shares(self) -> Dict[PreRTBHClass, float]:
        """Table 2: the three-class split (anomaly = within 10 min)."""
        n = len(self.events)
        if n == 0:
            raise AnalysisError("no events classified")
        counts = {c: 0 for c in PreRTBHClass}
        for event in self.events:
            counts[event.classification] += 1
        return {c: counts[c] / n for c in PreRTBHClass}

    def anomaly_share_within(self, minutes: float) -> float:
        """Share of all events with an anomaly at most ``minutes`` before."""
        n = len(self.events)
        hits = sum(any(off <= minutes for off, _ in e.anomalies)
                   for e in self.events)
        return hits / n if n else 0.0

    def slots_with_data_histogram(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fig. 11: cumulative #events with ≤ k data slots (k on x)."""
        slots = np.array([e.slots_with_data for e in self.events
                          if e.classification is not PreRTBHClass.NO_DATA])
        if len(slots) == 0:
            return np.array([0]), np.array([0])
        ks = np.arange(0, slots.max() + 1)
        cumulative = np.array([(slots <= k).sum() for k in ks])
        return ks, cumulative

    def anomaly_offsets_levels(self) -> Tuple[np.ndarray, np.ndarray]:
        """Fig. 12: (minutes-before, level) pairs over all events."""
        offsets, levels = [], []
        for event in self.events:
            for off, level in event.anomalies:
                offsets.append(off)
                levels.append(level)
        return np.array(offsets), np.array(levels)

    def amplification_factor_summary(self) -> Dict[str, float]:
        """Fig. 13: last-slot amplification factors."""
        factors = []
        max_hits = 0
        considered = 0
        for event in self.events:
            if not event.amplification_factors:
                continue
            finite = [f for f in event.amplification_factors if np.isfinite(f)]
            if not finite:
                continue
            considered += 1
            factors.append(max(finite))
            max_hits += event.last_slot_is_max
        if not factors:
            raise AnalysisError("no events with a populated last slot")
        arr = np.array(factors)
        return {
            "events_with_last_slot_data": considered,
            "median_factor": float(np.median(arr)),
            "p90_factor": float(np.quantile(arr, 0.90)),
            "max_factor": float(arr.max()),
            "share_last_slot_is_max": max_hits / considered,
        }


def classify_pre_rtbh_events(
    data: DataPlaneCorpus,
    events: Sequence[RTBHEvent],
    detector: EWMAAnomalyDetector | None = None,
    anomaly_horizon_min: float = 10.0,
    window_packets: Optional[Callable[[RTBHEvent], np.ndarray]] = None,
) -> PreRTBHClassification:
    """Run the full §5.2–5.3 pipeline over all events.

    ``window_packets`` swaps the pre-window gather (slice + prefix mask)
    — the columnar engine passes a closure over precomputed row indices
    returning the exact array the default path would build.
    """
    detector = detector or EWMAAnomalyDetector(AnomalyConfig())
    result = PreRTBHClassification()
    corpus_start = data.start_time if len(data) else 0.0
    for event in events:
        window = window_packets(event) if window_packets is not None else None
        result.events.append(classify_single_event(
            data, event, detector, corpus_start=corpus_start,
            anomaly_horizon_min=anomaly_horizon_min, window=window))
    return result


def classify_single_event(
    data: DataPlaneCorpus,
    event: RTBHEvent,
    detector: EWMAAnomalyDetector,
    *,
    corpus_start: float,
    anomaly_horizon_min: float = 10.0,
    window: Optional[np.ndarray] = None,
) -> PreRTBHEvent:
    """Classify one event's 72 h pre-window.

    The result depends only on data *before* ``event.start`` (and the
    fixed ``corpus_start``), so the streaming engine classifies each
    event exactly once — at the watermark where it first appears — and
    the outcome never changes as the corpus grows.

    ``window`` supplies the pre-window prefix packets directly (already
    sliced and masked); default ``None`` computes them from ``data``.
    """
    window_start = event.start - PRE_WINDOW
    if window is None:
        window = data.slice_time(window_start, event.start)
        window = window[_dst_mask(window, event.prefix)]
    total = len(window)
    if total == 0:
        return PreRTBHEvent(
            event_id=event.event_id,
            classification=PreRTBHClass.NO_DATA,
            slots_with_data=0, total_packets=0,
        )
    features = slot_features(window, window_start)
    flags = detector.detect_multi(features)
    # Slots before the corpus began are *artificially* zero; they must
    # not serve as detection history. Re-apply the full-window rule
    # relative to the first real slot.
    first_real = int(max(0.0, np.ceil((corpus_start - window_start) / SLOT)))
    if first_real > 0:
        cutoff = min(first_real + detector.config.min_window, N_SLOTS)
        flags[:cutoff] = False
    levels = flags.sum(axis=1)
    anomalous = np.flatnonzero(levels > 0)
    anomalies = tuple(
        (float((N_SLOTS - s) * SLOT / 60.0), int(levels[s])) for s in anomalous
    )
    slots_with_data = int((features[:, 0] > 0).sum())
    # Fig. 13: relative rise of the final 5-minute slot
    means = features.mean(axis=0)
    last = features[-1]
    with np.errstate(divide="ignore", invalid="ignore"):
        factors = np.where(means > 0, last / means, np.nan)
    has_recent = any(off <= anomaly_horizon_min for off, _ in anomalies)
    return PreRTBHEvent(
        event_id=event.event_id,
        classification=(PreRTBHClass.DATA_ANOMALY if has_recent
                        else PreRTBHClass.DATA_NO_ANOMALY),
        slots_with_data=slots_with_data,
        total_packets=total,
        anomalies=anomalies,
        amplification_factors=tuple(float(f) for f in factors),
        last_slot_is_max=bool(last[0] > 0 and last[0] >= features[:, 0].max()),
    )
