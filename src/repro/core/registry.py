"""Named registry of every analysis in the study.

The pipeline's figures and tables are addressed by *name* — the same
names ``run_all`` reports, the CLI prints, and the checkpoint journal
keys on.  Each :class:`AnalysisSpec` records where the analysis lives in
the paper, whether the streaming engine can maintain it incrementally
from reducer state (see :mod:`repro.streaming`), and which corpus planes
its result depends on (the invalidation key for per-analysis result
caching — a control-only analysis need not recompute when only data
segments changed).

Run one by name via :meth:`AnalysisPipeline.run`::

    pipeline.run("fig10_merge_sweep")

The old per-figure accessors (``pipeline.fig10_merge_sweep()``) survive
as deprecation shims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import AnalysisError

#: corpus planes an analysis result can depend on
CONTROL = "control"
DATA = "data"


@dataclass(frozen=True)
class AnalysisSpec:
    """One analysis: its name, paper anchor, and execution properties."""

    name: str
    #: where the result appears in the paper
    section: str
    #: one-line description of what it measures
    title: str
    #: True when ``repro.streaming`` maintains it from reducer state
    #: instead of recomputing from the full corpus
    incremental: bool
    #: corpus planes the result depends on — the cache-invalidation key
    inputs: Tuple[str, ...]
    #: True when :class:`repro.columnar.pipeline.ColumnarPipeline` has a
    #: vectorized twin (``_columnar_<name>``); the differential suite in
    #: ``tests/columnar`` holds every flagged analysis to bit-equality
    #: with the record path
    columnar: bool = False


ANALYSES: Tuple[AnalysisSpec, ...] = (
    AnalysisSpec("fig2_time_offset", "§3.1 / Fig. 2",
                 "control/data clock offset MLE", False, (CONTROL, DATA)),
    AnalysisSpec("fig3_load", "§3.2 / Fig. 3",
                 "RTBH signaling load per minute", True, (CONTROL,)),
    AnalysisSpec("fig4_targeted_visibility", "§4.1 / Fig. 4",
                 "visibility of targeted prefixes", False, (CONTROL,)),
    AnalysisSpec("fig5_drop_by_length", "§4.2 / Fig. 5",
                 "drop rates by prefix length", True, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("fig6_drop_cdfs", "§4.2 / Fig. 6",
                 "per-event drop-share ECDFs", True, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("fig7_top_sources", "§4.2 / Fig. 7",
                 "top handover ASes' reactions", False, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("fig8_org_types", "§4.2 / Fig. 8",
                 "PeeringDB org types of top sources", False,
                 (CONTROL, DATA), columnar=True),
    AnalysisSpec("fig10_merge_sweep", "§5.1 / Fig. 10",
                 "event merge-threshold sweep", False, (CONTROL,),
                 columnar=True),
    AnalysisSpec("table2_pre_classes", "§5.2 / Table 2",
                 "pre-RTBH anomaly classification", True, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("sec54_protocol_mix", "§5.4",
                 "protocol mix of anomalous events", False, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("table3_amplification", "§5.4 / Table 3",
                 "amplification protocol shares", False, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("fig14_filterable", "§6.1 / Fig. 14",
                 "share of filterable attack traffic", False,
                 (CONTROL, DATA), columnar=True),
    AnalysisSpec("fig15_participation", "§6.2 / Fig. 15",
                 "AS participation in filtering", False, (CONTROL, DATA),
                 columnar=True),
    AnalysisSpec("table4_host_types", "§7.2 / Table 4",
                 "org types of blackholed hosts", False, (CONTROL, DATA)),
    AnalysisSpec("fig18_collateral", "§7.3 / Fig. 18",
                 "collateral damage of /24 blackholes", False,
                 (CONTROL, DATA)),
    AnalysisSpec("fig19_use_cases", "§8 / Fig. 19",
                 "use-case classification of events", True, (CONTROL, DATA)),
)

ANALYSES_BY_NAME: Dict[str, AnalysisSpec] = {s.name: s for s in ANALYSES}


def get_analysis(name: str) -> AnalysisSpec:
    """The spec for ``name``; :class:`AnalysisError` for unknown names."""
    try:
        return ANALYSES_BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(ANALYSES_BY_NAME))
        raise AnalysisError(
            f"unknown analysis {name!r}; known analyses: {known}") from None


def incremental_names() -> Tuple[str, ...]:
    """Names the streaming engine maintains from reducer state."""
    return tuple(s.name for s in ANALYSES if s.incremental)


def columnar_names() -> Tuple[str, ...]:
    """Names with a vectorized columnar twin."""
    return tuple(s.name for s in ANALYSES if s.columnar)
