"""RTBH event extraction (§5.1, Figs 9–10).

Operators announce and withdraw the same blackhole repeatedly to probe
whether an attack is still running. To reason about *attack episodes*
rather than BGP messages, consecutive windows of the same prefix whose gap
is at most the merge threshold Δ are grouped into one *RTBH event*:

    |bh_i[withdraw] − bh_{i+1}[announce]| ≤ Δ

The paper settles on Δ = 10 minutes (the knee of Fig. 10), which groups
its 400k announcements into 34k events (8.5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.corpus.control import ControlPlaneCorpus
from repro.dataplane.timeline import IntervalSet
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix

#: the paper's merge threshold: 10 minutes
DEFAULT_DELTA = 600.0


@dataclass(frozen=True)
class RTBHEvent:
    """One merged blackholing episode for a single prefix."""

    event_id: int
    prefix: IPv4Prefix
    #: (announce, withdraw) windows, sorted; already gap-merged at Δ
    windows: Tuple[Tuple[float, float], ...]
    announcer_asns: Tuple[int, ...]
    origin_asn: int

    @property
    def start(self) -> float:
        return self.windows[0][0]

    @property
    def end(self) -> float:
        return self.windows[-1][1]

    @property
    def duration(self) -> float:
        """Wall-clock span from first announce to last withdraw."""
        return self.end - self.start

    @property
    def active_time(self) -> float:
        """Seconds the blackhole was actually announced."""
        return sum(e - s for s, e in self.windows)

    @property
    def num_windows(self) -> int:
        return len(self.windows)

    def active_interval_set(self) -> IntervalSet:
        """The announced intervals as a queryable :class:`IntervalSet`."""
        iset = IntervalSet()
        for s, e in self.windows:
            iset.open_at(s)
            iset.close_at(e)
        return iset.finalize(self.end)

    def covers_time(self, time: float) -> bool:
        return any(s <= time < e for s, e in self.windows)


def merge_annotated_windows(
    raw: Dict[IPv4Prefix, List[Tuple[float, float, int]]],
    origin_of: Dict[Tuple[IPv4Prefix, int], int],
) -> Dict[IPv4Prefix, List[Tuple[float, float, frozenset, int]]]:
    """Per prefix: announcement windows merged *across announcers* (overlaps
    coalesced), annotated with (start, end, announcer set, origin).

    ``raw`` maps each prefix to its ``(start, end, announcer)`` windows
    (the shape of :meth:`ControlPlaneCorpus.rtbh_windows_by_prefix`);
    ``origin_of`` maps ``(prefix, announcer)`` to the first origin ASN
    seen.  Split out so the streaming reducers can feed the same merge
    from incrementally-maintained state.
    """
    out: Dict[IPv4Prefix, List[Tuple[float, float, frozenset, int]]] = {}
    for prefix, windows in raw.items():
        annotated = [
            (s, e, frozenset({peer}), origin_of.get((prefix, peer), peer))
            for s, e, peer in windows
        ]
        annotated.sort()
        merged: List[Tuple[float, float, frozenset, int]] = []
        for s, e, peers, origin in annotated:
            if merged and s <= merged[-1][1]:
                ps, pe, ppeers, porigin = merged[-1]
                merged[-1] = (ps, max(pe, e), ppeers | peers, porigin)
            else:
                merged.append((s, e, peers, origin))
        out[prefix] = merged
    return out


def _merged_prefix_windows(
    control: ControlPlaneCorpus,
) -> Dict[IPv4Prefix, List[Tuple[float, float, frozenset, int]]]:
    """The annotated merge, fed from a full corpus scan."""
    raw = control.rtbh_windows_by_prefix()
    origin_of: Dict[Tuple[IPv4Prefix, int], int] = {}
    for msg in control.rtbh_updates():
        if msg.is_announce:
            origin_of.setdefault((msg.prefix, msg.peer_asn), msg.origin_asn)
    return merge_annotated_windows(raw, origin_of)


def extract_events(control: ControlPlaneCorpus,
                   delta: float = DEFAULT_DELTA) -> List[RTBHEvent]:
    """Group the corpus' blackhole windows into RTBH events at threshold Δ."""
    return events_from_merged_windows(_merged_prefix_windows(control), delta)


def events_from_merged_windows(
    merged: Dict[IPv4Prefix, List[Tuple[float, float, frozenset, int]]],
    delta: float = DEFAULT_DELTA,
) -> List[RTBHEvent]:
    """Δ-group pre-merged annotated windows into numbered RTBH events.

    The grouping half of :func:`extract_events`, callable on reducer
    state.  Event numbering is by global ``(start, prefix)`` order —
    stable under append-only corpus growth, which is what lets the
    streaming engine keep per-event accumulators across watermarks.
    """
    if delta < 0:
        raise AnalysisError(f"delta must be non-negative: {delta}")
    events: List[RTBHEvent] = []
    eid = 0
    for prefix, windows in sorted(merged.items()):
        group: List[Tuple[float, float]] = []
        announcers: set[int] = set()
        origin = windows[0][3]

        def flush() -> None:
            nonlocal eid, group, announcers, origin
            if group:
                events.append(RTBHEvent(
                    event_id=eid, prefix=prefix, windows=tuple(group),
                    announcer_asns=tuple(sorted(announcers)), origin_asn=origin,
                ))
                eid += 1
                group, announcers = [], set()

        for s, e, peers, org in windows:
            if group and s - group[-1][1] > delta:
                flush()
            if not group:
                origin = org
            group.append((s, e))
            announcers |= peers
        flush()
    events.sort(key=lambda ev: (ev.start, ev.prefix))
    return [RTBHEvent(event_id=i, prefix=ev.prefix, windows=ev.windows,
                      announcer_asns=ev.announcer_asns, origin_asn=ev.origin_asn)
            for i, ev in enumerate(events)]


def merge_threshold_sweep(
    control: ControlPlaneCorpus,
    deltas: Sequence[float] | np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig. 10: fraction of events per announcement as a function of Δ.

    Returns ``(deltas, fraction)`` where ``fraction[i]`` is
    ``#events(deltas[i]) / #rtbh_announcements``. The count is computed
    from the inter-window gap distribution, so the sweep costs one pass.
    """
    announcements = sum(1 for m in control.rtbh_updates() if m.is_announce)
    return sweep_from_merged(_merged_prefix_windows(control), announcements,
                             deltas)


def sweep_from_merged(
    merged: Dict[IPv4Prefix, List[Tuple[float, float, frozenset, int]]],
    announcements: int,
    deltas: Sequence[float] | np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The gap-distribution half of :func:`merge_threshold_sweep`.

    Split out so the columnar engine can feed the same sweep from its
    vectorized window state and stay bit-equal with the corpus scan.
    """
    if deltas is None:
        deltas = np.r_[0.0, np.geomspace(1.0, 48 * 3600.0, 120)]
    deltas = np.asarray(deltas, dtype=np.float64)
    if announcements == 0:
        raise AnalysisError("corpus contains no RTBH announcements")
    gaps: List[float] = []
    total_windows = 0
    for windows in merged.values():
        total_windows += len(windows)
        for (s0, e0, *_), (s1, *_rest) in zip(windows, windows[1:]):
            gaps.append(s1 - e0)
    gaps_arr = np.sort(np.asarray(gaps))
    merged_counts = np.searchsorted(gaps_arr, deltas, side="right")
    events = total_windows - merged_counts
    return deltas, events / announcements


def unique_prefix_count(control: ControlPlaneCorpus) -> int:
    """The Δ = ∞ lower bound of Fig. 10 (one event per prefix)."""
    return len(control.rtbh_prefixes())
