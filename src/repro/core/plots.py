"""Terminal plots.

The benchmark harness reports the *series* behind each paper figure, not
just summary numbers; these renderers draw them as compact ASCII charts so
a tee'd benchmark log shows the curve shapes (Fig. 2's likelihood peak,
Fig. 10's knee, the Fig. 6 CDFs) next to the numbers.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError

_BARS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float] | np.ndarray, width: int = 60) -> str:
    """One-line bar chart of a series (resampled to ``width`` columns)."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise AnalysisError("nothing to plot")
    if data.size > width:
        # average-pool into `width` buckets
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].mean() if b > a else data[min(a, data.size - 1)]
                         for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(data.min()), float(data.max())
    if hi - lo < 1e-12:
        return _BARS[1] * len(data)
    scaled = (data - lo) / (hi - lo) * (len(_BARS) - 2) + 1
    return "".join(_BARS[int(round(s))] for s in scaled)


def line_plot(xs: Sequence[float] | np.ndarray,
              ys: Sequence[float] | np.ndarray,
              width: int = 64, height: int = 12,
              x_label: str = "", y_label: str = "") -> str:
    """A small scatter/line chart in a character grid.

    Points are mapped to the grid and marked with ``*``; axes carry min
    and max annotations. Intended for monotone series (CDFs, likelihood
    curves) where the dot cloud reads as a line.
    """
    x = np.asarray(xs, dtype=np.float64)
    y = np.asarray(ys, dtype=np.float64)
    if x.size == 0 or x.size != y.size:
        raise AnalysisError("need equal-length non-empty series")
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        col = int((xi - x_lo) / x_span * (width - 1))
        row = height - 1 - int((yi - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = []
    for r, row in enumerate(grid):
        prefix = f"{y_hi:10.3g} |" if r == 0 else (
            f"{y_lo:10.3g} |" if r == height - 1 else " " * 10 + " |")
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    footer = f"{' ' * 12}{x_lo:<.4g}{' ' * max(1, width - 16)}{x_hi:>.4g}"
    lines.append(footer)
    if x_label or y_label:
        lines.append(f"{' ' * 12}x: {x_label}   y: {y_label}".rstrip())
    return "\n".join(lines)


def cdf_plot(cdf, width: int = 64, height: int = 10, points: int = 80,
             x_label: str = "") -> str:
    """Render an :class:`~repro.stats.cdf.EmpiricalCDF`."""
    xs, ys = cdf.series(points=min(points, max(2, cdf.n)))
    return line_plot(xs, ys, width=width, height=height,
                     x_label=x_label, y_label="F(x)")
