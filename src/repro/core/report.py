"""Plain-text rendering of analysis results.

The benchmark harness prints the same rows the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """A fixed-width ASCII table."""
    rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def pct(value: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def seconds_human(value: float) -> str:
    """Render a duration at the most natural unit."""
    if value < 120:
        return f"{value:.0f}s"
    if value < 7_200:
        return f"{value / 60:.1f}min"
    if value < 2 * 86_400:
        return f"{value / 3_600:.1f}h"
    return f"{value / 86_400:.1f}d"
