"""The paper's analysis pipeline.

Every figure and table of the evaluation maps to one module here (see
DESIGN.md §4 for the index). All analyses consume only the two corpora —
control-plane BGP messages and sampled data-plane packets — never the
scenario ground truth, so the pipeline would run unchanged on real IXP
data of the same shape.
"""

from repro.core.events import RTBHEvent, extract_events, merge_threshold_sweep
from repro.core.offset import time_offset_analysis
from repro.core.load import rtbh_load_series
from repro.core.visibility import targeted_visibility
from repro.core.droprate import (
    drop_rate_by_prefix_length,
    drop_rate_cdf_by_length,
    top_source_reactions,
    top_source_org_types,
)
from repro.core.pre_rtbh import (
    PreRTBHClassification,
    classify_pre_rtbh_events,
    slot_features,
)
from repro.core.protocols import event_protocol_mix, amplification_protocol_table
from repro.core.filtering import filterable_share_cdf, as_participation
from repro.core.hosts import HostClass, classify_hosts, host_port_features
from repro.core.collateral import collateral_damage
from repro.core.classify import UseCase, classify_events
from repro.core.crossval import CrossValidation, cross_validate
from repro.core.pipeline import AnalysisPipeline

__all__ = [
    "RTBHEvent",
    "extract_events",
    "merge_threshold_sweep",
    "time_offset_analysis",
    "rtbh_load_series",
    "targeted_visibility",
    "drop_rate_by_prefix_length",
    "drop_rate_cdf_by_length",
    "top_source_reactions",
    "top_source_org_types",
    "PreRTBHClassification",
    "classify_pre_rtbh_events",
    "slot_features",
    "event_protocol_mix",
    "amplification_protocol_table",
    "filterable_share_cdf",
    "as_participation",
    "HostClass",
    "classify_hosts",
    "host_port_features",
    "collateral_damage",
    "UseCase",
    "classify_events",
    "CrossValidation",
    "cross_validate",
    "AnalysisPipeline",
]
