"""Fig. 2: control/data-plane time-offset estimation.

Builds the per-prefix announced intervals from the control corpus, the
per-prefix dropped-packet timestamps from the data corpus, and hands both
to the MLE of :mod:`repro.stats.mle`.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.corpus.control import ControlPlaneCorpus
from repro.corpus.data import DataPlaneCorpus
from repro.dataplane.timeline import IntervalSet
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix
from repro.net.radix import RadixTree
from repro.stats.mle import OffsetEstimate, estimate_time_offset


def announced_interval_sets(control: ControlPlaneCorpus) -> Dict[IPv4Prefix, IntervalSet]:
    """Per-prefix announced intervals (any-announcer union) on the
    control-plane clock."""
    out: Dict[IPv4Prefix, IntervalSet] = {}
    for prefix, windows in control.rtbh_windows_by_prefix().items():
        merged: list[tuple[float, float]] = []
        for start, end, _peer in sorted(windows):
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        iset = IntervalSet()
        for start, end in merged:
            iset.open_at(start)
            iset.close_at(end)
        out[prefix] = iset.finalize(merged[-1][1] if merged else 0.0)
    return out


def time_offset_analysis(
    control: ControlPlaneCorpus,
    data: DataPlaneCorpus,
    offsets: np.ndarray | None = None,
    max_packets_per_group: int = 20_000,
) -> OffsetEstimate:
    """Scan trial offsets and return the likelihood curve and peak.

    Each dropped packet is attributed once: it counts as explained when
    *any* blackhole prefix covering its destination was announced at the
    shifted time. Packets are therefore grouped by destination address and
    tested against the union of the covering prefixes' intervals.

    ``max_packets_per_group`` bounds the per-destination sample to keep
    the scan cheap on heavy-hitter victims; the estimate is share-based,
    so subsampling is unbiased.
    """
    intervals = announced_interval_sets(control)
    tree: RadixTree[bool] = RadixTree()
    for prefix in intervals:
        tree.insert(prefix, True)

    dropped = data.packets[data.packets["dropped"]]
    if len(dropped) == 0:
        raise AnalysisError(
            "time-offset estimation needs dropped packets; the data-plane "
            "corpus has none")
    grouped_times: Dict[IPv4Prefix, np.ndarray] = {}
    grouped_intervals: Dict[IPv4Prefix, IntervalSet] = {}
    dst = dropped["dst_ip"]
    order = np.argsort(dst, kind="stable")
    sorted_dst = dst[order]
    bounds = np.flatnonzero(np.r_[True, sorted_dst[1:] != sorted_dst[:-1]])
    bounds = np.r_[bounds, len(sorted_dst)]
    for b in range(len(bounds) - 1):
        rows = order[bounds[b]:bounds[b + 1]]
        address = int(sorted_dst[bounds[b]])
        covering = [p for p, _ in tree.lookup_all(address)]
        key = IPv4Prefix(address, 32)
        times = dropped["time"][rows].astype(np.float64)
        if len(times) > max_packets_per_group:
            times = times[:: len(times) // max_packets_per_group + 1]
        grouped_times[key] = times
        if covering:
            grouped_intervals[key] = IntervalSet.union(intervals[p] for p in covering)
        # else: dropped by an RTBH source outside the route-server view
        # (e.g. bilateral blackholing) — stays unexplained at any offset,
        # exactly like the paper's residual ~5%.
    return estimate_time_offset(grouped_times, grouped_intervals, offsets)
