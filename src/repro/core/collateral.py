"""§6.3: towards quantifying collateral damage (Fig. 18).

For every detected *server* (stable top ports), count the sampled packets
sent to its top ports while an RTBH event covering it was active — all of
them, and those that were actually dropped. Absolute counts, deliberately
not shares (§6.3 explains why), form the unnormalised CDF of Fig. 18.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.events import RTBHEvent
from repro.core.hosts import HostClass, HostStudy
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError
from repro.stats.cdf import EmpiricalCDF


@dataclass(frozen=True)
class CollateralRecord:
    """One (event, server) pair with collateral traffic."""

    event_id: int
    server_ip: int
    packets_to_top_ports: int
    dropped_to_top_ports: int


@dataclass
class CollateralDamage:
    """Fig. 18 results."""

    records: List[CollateralRecord]
    servers_considered: int

    @property
    def events_with_collateral(self) -> int:
        return len({r.event_id for r in self.records})

    def cdf(self, dropped_only: bool = False) -> EmpiricalCDF:
        values = [(r.dropped_to_top_ports if dropped_only else r.packets_to_top_ports)
                  for r in self.records]
        values = [v for v in values if v > 0]
        if not values:
            raise AnalysisError("no collateral traffic found")
        return EmpiricalCDF(values)

    def total_packets(self, dropped_only: bool = False) -> int:
        return sum(r.dropped_to_top_ports if dropped_only else r.packets_to_top_ports
                   for r in self.records)


def collateral_damage(
    data: DataPlaneCorpus,
    events: Sequence[RTBHEvent],
    hosts: HostStudy,
) -> CollateralDamage:
    """Count per-event traffic to detected servers' top ports during the
    event's announced windows.

    The count is an *upper bound*: application-layer attacks on the same
    ports are indistinguishable from legitimate clients (§6.3)."""
    servers = hosts.classified(HostClass.SERVER)
    by_ip: Dict[int, frozenset] = {
        s.ip: frozenset(port for _proto, port in s.top_ports) for s in servers
    }
    records: List[CollateralRecord] = []
    for event in events:
        covered = [ip for ip in by_ip if ip in event.prefix]
        if not covered:
            continue
        for start, end in event.windows:
            window = data.slice_time(start, end)
            if len(window) == 0:
                continue
            for ip in covered:
                sub = window[window["dst_ip"] == np.uint32(ip)]
                if len(sub) == 0:
                    continue
                tops = sorted(by_ip[ip])
                hit = np.isin(sub["dst_port"], tops)
                if not hit.any():
                    continue
                records.append(CollateralRecord(
                    event_id=event.event_id,
                    server_ip=ip,
                    packets_to_top_ports=int(hit.sum()),
                    dropped_to_top_ports=int((hit & sub["dropped"]).sum()),
                ))
    # merge multiple windows of the same (event, server)
    merged: Dict[Tuple[int, int], CollateralRecord] = {}
    for rec in records:
        key = (rec.event_id, rec.server_ip)
        if key in merged:
            old = merged[key]
            merged[key] = CollateralRecord(
                event_id=rec.event_id, server_ip=rec.server_ip,
                packets_to_top_ports=old.packets_to_top_ports + rec.packets_to_top_ports,
                dropped_to_top_ports=old.dropped_to_top_ports + rec.dropped_to_top_ports,
            )
        else:
            merged[key] = rec
    return CollateralDamage(records=list(merged.values()),
                            servers_considered=len(servers))
