"""BGP FlowSpec dissemination at the IXP (RFC 5575, the paper's
"advanced alternative" to RTBH — §1, §7.2, and the authors' follow-up
work on Advanced Blackholing).

Where RTBH can only say *drop everything towards this prefix*, FlowSpec
carries a match rule (protocol, ports, prefixes) plus an action. This
module models the service the way the blackholing service is modelled:

* a victim-side member announces a rule (validated against its address
  space) with optional targeted distribution;
* each receiving member *may or may not* honour FlowSpec — deployment is
  famously partial, so members have a boolean capability plus the same
  acceptance considerations as for blackholes;
* the service keeps per-member rule timelines and can mark a sampled
  packet array with the drops the deployed rules would have caused —
  directly comparable with the RTBH acceptance timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import BGPError, ScenarioError
from repro.ixp.member import IXPMember
from repro.mitigation.finegrained import FilterRule
from repro.net.ip import IPv4Prefix


@dataclass(frozen=True)
class FlowSpecRule:
    """One disseminated FlowSpec entry: a match rule owned by a member."""

    rule_id: int
    owner_asn: int
    match: FilterRule
    #: peers the rule was distributed to (None = all capable peers)
    targets: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.match.dst_prefix is None:
            raise ScenarioError("FlowSpec rules here must pin a destination prefix")


@dataclass
class _ActiveRule:
    rule: FlowSpecRule
    announce_time: float
    withdraw_time: Optional[float] = None


class FlowSpecService:
    """Rule dissemination with per-member capability and history."""

    def __init__(self, capable_asns: Sequence[int]):
        self._capable: Set[int] = set(capable_asns)
        self._history: List[_ActiveRule] = []
        self._active: Dict[int, _ActiveRule] = {}
        self._next_id = 0

    @property
    def capable_asns(self) -> Set[int]:
        return set(self._capable)

    def is_capable(self, asn: int) -> bool:
        return asn in self._capable

    # -- signalling -----------------------------------------------------------

    def announce_rule(self, time: float, member: IXPMember, match: FilterRule,
                      targets: Optional[Sequence[int]] = None) -> FlowSpecRule:
        """Validate and distribute a rule; returns the assigned entry.

        Like the blackholing service, a member may only pin destinations
        inside its own address space (RFC 5575's validation procedure ties
        FlowSpec NLRI to the unicast route of the destination)."""
        assert match.dst_prefix is not None  # enforced by FlowSpecRule too
        if not member.originates(match.dst_prefix):
            raise BGPError(
                f"AS{member.asn} may not filter {match.dst_prefix}: "
                "not its address space"
            )
        rule = FlowSpecRule(
            rule_id=self._next_id, owner_asn=member.asn, match=match,
            targets=None if targets is None else tuple(sorted(targets)),
        )
        self._next_id += 1
        entry = _ActiveRule(rule=rule, announce_time=time)
        self._history.append(entry)
        self._active[rule.rule_id] = entry
        return rule

    def withdraw_rule(self, time: float, rule_id: int) -> None:
        entry = self._active.pop(rule_id, None)
        if entry is None:
            raise BGPError(f"FlowSpec rule {rule_id} is not active")
        if time < entry.announce_time:
            raise BGPError("withdraw before announce")
        entry.withdraw_time = time

    def active_rules(self, at_time: float) -> List[FlowSpecRule]:
        return [e.rule for e in self._history
                if e.announce_time <= at_time
                and (e.withdraw_time is None or at_time < e.withdraw_time)]

    def rules_seen_by(self, asn: int, at_time: float) -> List[FlowSpecRule]:
        """Rules a member enforces at ``at_time`` (capability + targeting)."""
        if asn not in self._capable:
            return []
        return [r for r in self.active_rules(at_time)
                if r.targets is None or asn in r.targets]

    # -- data-plane effect -------------------------------------------------------

    def mark_dropped(self, packets: np.ndarray) -> np.ndarray:
        """OR the drops of every deployed rule into ``packets['dropped']``.

        A packet is dropped when its ingress member is FlowSpec-capable,
        the rule was distributed to that member, the packet matches, and
        its timestamp falls into the rule's active window."""
        if len(packets) == 0:
            return packets
        times = packets["time"]
        ingress = packets["ingress_asn"]
        capable = np.isin(ingress, sorted(self._capable))
        for entry in self._history:
            in_window = times >= entry.announce_time
            if entry.withdraw_time is not None:
                in_window &= times < entry.withdraw_time
            if not in_window.any():
                continue
            eligible = capable.copy()
            if entry.rule.targets is not None:
                eligible &= np.isin(ingress, list(entry.rule.targets))
            candidates = in_window & eligible
            if not candidates.any():
                continue
            matched = entry.rule.match.matches(packets)
            packets["dropped"] |= candidates & matched
        return packets

    def __len__(self) -> int:
        return len(self._history)
