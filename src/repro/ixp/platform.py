"""The IXP facade: route server + switching fabric + members + PeeringDB +
blackholing service + acceptance-timeline recorder, wired together.

Scenario code builds one :class:`IXP`, attaches members with their import
policies and address space, and then drives blackholes and traffic through
it. Addressing on the peering LAN is managed internally (sequential router
IPs/MACs from dedicated ranges, plus the blackhole binding).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bgp.message import announce
from repro.bgp.policy import ImportPolicy
from repro.bgp.route_server import RouteServer
from repro.dataplane.fabric import BLACKHOLE_MAC, SwitchingFabric
from repro.dataplane.listener import TimelineRecorder
from repro.dataplane.timeline import AcceptanceTimeline
from repro.errors import ScenarioError
from repro.ixp.blackholing import BlackholingService
from repro.ixp.member import IXPMember
from repro.ixp.peeringdb import PeeringDB
from repro.net.ip import IPv4Address, IPv4Prefix
from repro.net.mac import MACAddress

#: Peering LAN of the platform; router IPs are assigned from it.
PEERING_LAN = IPv4Prefix("172.16.0.0/16")
#: Well-known next hop announced by the blackholing service.
BLACKHOLE_NEXT_HOP = IPv4Address("172.16.255.254")
#: Base of the locally-administered MAC range handed to member routers.
ROUTER_MAC_BASE = 0x06_00_00_00_00_00


class IXP:
    """A complete IXP platform instance."""

    def __init__(self, route_server_asn: int = 64500,
                 enforce_blackhole_ownership: bool = True):
        self.route_server = RouteServer(asn=route_server_asn)
        self.fabric = SwitchingFabric(blackhole_ip=BLACKHOLE_NEXT_HOP,
                                      blackhole_mac=BLACKHOLE_MAC)
        self.blackholing = BlackholingService(
            self.route_server, BLACKHOLE_NEXT_HOP,
            enforce_ownership=enforce_blackhole_ownership,
        )
        self.peeringdb = PeeringDB()
        self.recorder = TimelineRecorder(self.route_server)
        self._members: Dict[int, IXPMember] = {}
        self._next_host = 1  # peering-LAN host counter

    # -- membership -------------------------------------------------------------

    def add_member(
        self,
        asn: int,
        policy: Optional[ImportPolicy] = None,
        originated: Optional[List[IPv4Prefix]] = None,
        name: Optional[str] = None,
        announce_routes: bool = True,
    ) -> IXPMember:
        """Connect a member: route-server session, fabric port, addressing.

        With ``announce_routes`` the member's originated prefixes are
        announced through the route server right away (at time 0), so every
        peer's Loc-RIB carries the regular routes blackholes later override.
        """
        if asn in self._members:
            raise ScenarioError(f"AS{asn} is already an IXP member")
        router_ip = self._allocate_router_ip()
        router_mac = MACAddress(ROUTER_MAC_BASE + len(self._members) + 1)
        peer = self.route_server.add_peer(asn, policy=policy)
        self.fabric.attach(asn, router_mac, router_ip)
        member = IXPMember(
            asn=asn,
            name=name or f"AS{asn}",
            router_mac=router_mac,
            router_ip=router_ip,
            peer=peer,
            originated=list(originated or []),
        )
        self._members[asn] = member
        for prefix in member.originated:
            self.fabric.claim_prefix(prefix, asn)
            if announce_routes:
                self.route_server.process(
                    announce(0.0, asn, prefix, router_ip)
                )
        return member

    def _allocate_router_ip(self) -> IPv4Address:
        while True:
            candidate = IPv4Address(PEERING_LAN.network_int + self._next_host)
            self._next_host += 1
            if self._next_host >= PEERING_LAN.num_addresses - 2:
                raise ScenarioError("peering LAN exhausted")
            if candidate != BLACKHOLE_NEXT_HOP:
                return candidate

    def member(self, asn: int) -> IXPMember:
        try:
            return self._members[asn]
        except KeyError:
            raise ScenarioError(f"AS{asn} is not an IXP member") from None

    @property
    def member_asns(self) -> List[int]:
        return sorted(self._members)

    def members(self) -> List[IXPMember]:
        return [self._members[asn] for asn in self.member_asns]

    def owner_of(self, address: IPv4Address | int) -> Optional[IXPMember]:
        """The member whose address space contains ``address``."""
        asn = self.fabric.owner_of(address)
        return None if asn is None else self._members.get(asn)

    def __len__(self) -> int:
        return len(self._members)

    # -- timeline ------------------------------------------------------------------

    def finalize_timeline(self, end_time: float) -> AcceptanceTimeline:
        """Freeze and return the blackhole acceptance timeline."""
        return self.recorder.timeline.finalize(end_time)
