"""IXP assembly: the member registry, a synthetic PeeringDB, the
blackholing service, and the :class:`~repro.ixp.platform.IXP` facade that
wires route server, switching fabric and acceptance timeline together.
"""

from repro.ixp.peeringdb import OrgType, PeeringDB, PeeringDBRecord
from repro.ixp.member import IXPMember
from repro.ixp.blackholing import BlackholingService
from repro.ixp.flowspec import FlowSpecRule, FlowSpecService
from repro.ixp.platform import IXP

__all__ = [
    "OrgType",
    "PeeringDB",
    "PeeringDBRecord",
    "IXPMember",
    "BlackholingService",
    "FlowSpecService",
    "FlowSpecRule",
    "IXP",
]
