"""A synthetic PeeringDB.

The paper joins AS numbers against PeeringDB organisation types twice: for
the top-100 traffic sources towards /32 blackholes (Fig. 8) and for the
origin ASes of detected client/server hosts (Table 4). This registry holds
the same information — ``info_type`` per ASN — and the scenario generator
populates it with a mix matching the paper's observed distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.errors import ScenarioError


class OrgType(str, Enum):
    """PeeringDB ``info_type`` values the paper reports."""

    CONTENT = "Content"
    CABLE_DSL_ISP = "Cable/DSL/ISP"
    NSP = "NSP"
    ENTERPRISE = "Enterprise"
    EDUCATIONAL = "Educational/Research"
    NON_PROFIT = "Non-Profit"
    UNKNOWN = "Unknown"


@dataclass(frozen=True)
class PeeringDBRecord:
    """One network entry."""

    asn: int
    name: str
    org_type: OrgType
    #: geographic scope as PeeringDB reports it ("Global", "Europe", ...)
    scope: str = "Regional"


class PeeringDB:
    """ASN → organisation metadata, with an `Unknown` default like the
    real database (not every AS maintains an entry)."""

    def __init__(self) -> None:
        self._records: Dict[int, PeeringDBRecord] = {}

    def register(self, record: PeeringDBRecord) -> None:
        if record.asn in self._records:
            raise ScenarioError(f"AS{record.asn} already registered in PeeringDB")
        self._records[record.asn] = record

    def get(self, asn: int) -> Optional[PeeringDBRecord]:
        return self._records.get(asn)

    def org_type(self, asn: int) -> OrgType:
        """The organisation type, `UNKNOWN` when the AS has no entry."""
        record = self._records.get(asn)
        return OrgType.UNKNOWN if record is None else record.org_type

    def __contains__(self, asn: int) -> bool:
        return asn in self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PeeringDBRecord]:
        return iter(self._records.values())

    def type_histogram(self, asns: Iterable[int]) -> Dict[OrgType, int]:
        """Count organisation types over a set of ASNs (Fig. 8 / Table 4)."""
        out: Dict[OrgType, int] = {}
        for asn in asns:
            t = self.org_type(asn)
            out[t] = out.get(t, 0) + 1
        return out

    @classmethod
    def synthesize(
        cls,
        asns: Iterable[int],
        rng: np.random.Generator,
        type_mix: Mapping[OrgType, float] | None = None,
        coverage: float = 0.8,
    ) -> "PeeringDB":
        """Populate a registry for ``asns``.

        ``type_mix`` gives sampling weights over org types;
        ``coverage`` is the fraction of ASes that have an entry at all
        (the rest resolve to `UNKNOWN`, as in the paper's tables).
        """
        if not 0.0 <= coverage <= 1.0:
            raise ScenarioError(f"coverage must be in [0,1]: {coverage}")
        mix = dict(type_mix or {
            OrgType.NSP: 0.30,
            OrgType.CABLE_DSL_ISP: 0.30,
            OrgType.CONTENT: 0.25,
            OrgType.ENTERPRISE: 0.10,
            OrgType.EDUCATIONAL: 0.05,
        })
        total = sum(mix.values())
        if total <= 0:
            raise ScenarioError("type_mix weights must sum to a positive value")
        types = list(mix)
        weights = np.array([mix[t] for t in types]) / total
        db = cls()
        for asn in asns:
            if rng.random() >= coverage:
                continue
            org_type = types[int(rng.choice(len(types), p=weights))]
            scope = "Global" if rng.random() < 0.15 else "Regional"
            db.register(PeeringDBRecord(asn=asn, name=f"AS{asn} Networks",
                                        org_type=org_type, scope=scope))
        return db
