"""IXP members: an AS connected to the peering platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bgp.route_server import RouteServerPeer
from repro.net.ip import IPv4Address, IPv4Prefix
from repro.net.mac import MACAddress


@dataclass
class IXPMember:
    """One member: its session at the route server, its port on the fabric,
    and the address space it originates (and may blackhole into)."""

    asn: int
    name: str
    router_mac: MACAddress
    router_ip: IPv4Address
    peer: RouteServerPeer
    #: prefixes this member originates on the platform
    originated: List[IPv4Prefix] = field(default_factory=list)

    def originates(self, prefix: IPv4Prefix) -> bool:
        """Whether ``prefix`` falls inside this member's address space."""
        return any(prefix in owned for owned in self.originated)

    @property
    def policy_name(self) -> str:
        return self.peer.policy.name

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.name}, {self.policy_name})"
