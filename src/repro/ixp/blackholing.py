"""The IXP's RTBH service.

Wraps blackhole signalling the way the IXP offers it: a member announces a
prefix with the BLACKHOLE community and the service's well-known next-hop
IP; the route server redistributes it (honouring targeted-announcement
communities); the fabric maps the next hop to the blackhole MAC. The
service validates that members only blackhole their own address space,
mirroring the route-server filters real IXPs apply.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.bgp.community import BLACKHOLE, Community, announce_to, suppress_all
from repro.bgp.message import BGPUpdate, announce, withdraw
from repro.bgp.route_server import RouteServer
from repro.errors import BGPError
from repro.ixp.member import IXPMember
from repro.net.ip import IPv4Address, IPv4Prefix


class BlackholingService:
    """Build and submit RTBH announcements/withdrawals for members."""

    def __init__(self, route_server: RouteServer, blackhole_next_hop: IPv4Address,
                 enforce_ownership: bool = True):
        self._server = route_server
        self.next_hop = blackhole_next_hop
        self.enforce_ownership = enforce_ownership

    def build_announcement(
        self,
        time: float,
        member: IXPMember,
        prefix: IPv4Prefix,
        targets: Optional[Iterable[int]] = None,
        extra_communities: Iterable[Community] = (),
        origin_asn: Optional[int] = None,
    ) -> BGPUpdate:
        """An RTBH announcement; ``targets`` restricts redistribution to the
        given peer ASNs (a *targeted* blackhole, §4.1). Untargeted
        announcements reach every peer. ``origin_asn`` marks a customer AS
        the member announces the blackhole on behalf of (it becomes the
        rightmost AS of the path, as the paper's origin-AS extraction
        expects)."""
        if self.enforce_ownership and not member.originates(prefix):
            raise BGPError(
                f"AS{member.asn} may not blackhole {prefix}: not its address space"
            )
        communities = {BLACKHOLE, *extra_communities}
        if targets is not None:
            communities.add(suppress_all(self._server.asn))
            for asn in targets:
                communities.add(announce_to(self._server.asn, asn))
        as_path: tuple[int, ...] = ()
        if origin_asn is not None and origin_asn != member.asn:
            as_path = (member.asn, origin_asn)
        return announce(time, member.asn, prefix, self.next_hop,
                        as_path=as_path, communities=frozenset(communities))

    def announce_blackhole(self, time: float, member: IXPMember, prefix: IPv4Prefix,
                           targets: Optional[Iterable[int]] = None,
                           origin_asn: Optional[int] = None) -> BGPUpdate:
        """Build, submit, and return an RTBH announcement."""
        update = self.build_announcement(time, member, prefix, targets,
                                         origin_asn=origin_asn)
        self._server.process(update)
        return update

    def withdraw_blackhole(self, time: float, member: IXPMember,
                           prefix: IPv4Prefix) -> BGPUpdate:
        """Withdraw a blackhole previously announced by ``member``."""
        update = withdraw(time, member.asn, prefix)
        self._server.process(update)
        return update

    def active_blackholes(self) -> set[IPv4Prefix]:
        return self._server.announced_blackholes()
