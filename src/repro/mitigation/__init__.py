"""Operator-side mitigation behaviour: volumetric DDoS detection and the
RTBH announce/withdraw patterns (automatic on–off probing, manual
long-lived blackholes, forgotten zombies, squatting protection).
"""

from repro.mitigation.detector import DetectorConfig, VolumetricDetector
from repro.mitigation.controller import (
    BlackholeWindow,
    RTBHControllerConfig,
    ddos_reaction_windows,
    manual_window,
    squatting_window,
    zombie_window,
)
from repro.mitigation.finegrained import (
    FilterAction,
    FilterChain,
    FilterRule,
    MitigationScore,
    amplification_filter,
    rtbh_filter,
    score_mitigation,
)

__all__ = [
    "VolumetricDetector",
    "DetectorConfig",
    "BlackholeWindow",
    "RTBHControllerConfig",
    "ddos_reaction_windows",
    "manual_window",
    "zombie_window",
    "squatting_window",
    "FilterRule",
    "FilterChain",
    "FilterAction",
    "MitigationScore",
    "amplification_filter",
    "rtbh_filter",
    "score_mitigation",
]
