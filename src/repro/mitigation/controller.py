"""RTBH announce/withdraw behaviour.

Produces :class:`BlackholeWindow` sequences — one window per
announce…withdraw pair — for each operational pattern the paper
identifies:

* **automatic DDoS reaction** (§2.2, Fig. 9): first announcement a short
  reaction delay after the attack starts, then repeated
  withdraw-to-probe / re-announce cycles, because a victim behind an
  effective blackhole is blind to the attack's progress;
* **manual blackholes**: hours-late reaction, very long hold times;
* **zombies** (§7.3): announced once, never withdrawn;
* **squatting protection** (§2.3): a ≤ /24 covering prefix held for
  months, announced in parallel with nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import ScenarioError


@dataclass(frozen=True)
class BlackholeWindow:
    """One contiguous announce→withdraw span of a blackhole.

    ``withdraw_time`` of ``None`` means "never withdrawn" (the window runs
    to the end of the observation, a zombie).
    """

    announce_time: float
    withdraw_time: Optional[float]

    def __post_init__(self) -> None:
        if self.withdraw_time is not None and self.withdraw_time <= self.announce_time:
            raise ScenarioError("withdraw must come after announce")

    @property
    def duration(self) -> Optional[float]:
        if self.withdraw_time is None:
            return None
        return self.withdraw_time - self.announce_time


@dataclass(frozen=True)
class RTBHControllerConfig:
    """Timing of the automatic reaction pattern (all in seconds)."""

    #: detection + triggering latency range (uniform draw)
    reaction_delay: tuple[float, float] = (30.0, 600.0)
    #: how long a blackhole is held before probing for attack end
    hold_time: tuple[float, float] = (300.0, 1800.0)
    #: withdrawal gap used to probe whether the attack still runs
    probe_gap: tuple[float, float] = (60.0, 420.0)
    #: extra hold after the attack actually ended (the victim only learns
    #: about the end through a probe)
    max_windows: int = 40

    def __post_init__(self) -> None:
        for name in ("reaction_delay", "hold_time", "probe_gap"):
            low, high = getattr(self, name)
            if not 0 <= low <= high:
                raise ScenarioError(f"invalid {name} range: ({low}, {high})")
        if self.max_windows < 1:
            raise ScenarioError("max_windows must be >= 1")


def _draw(rng: np.random.Generator, bounds: tuple[float, float]) -> float:
    low, high = bounds
    return float(rng.uniform(low, high)) if high > low else low


def ddos_reaction_windows(
    rng: np.random.Generator,
    attack_start: float,
    attack_end: float,
    config: RTBHControllerConfig | None = None,
) -> List[BlackholeWindow]:
    """The automatic on–off mitigation pattern for one attack.

    The first window opens ``reaction_delay`` after the attack begins;
    subsequent windows follow probe gaps for as long as the probe still
    sees attack traffic. The final withdrawal happens at the first probe
    after the attack ended.
    """
    if attack_end <= attack_start:
        raise ScenarioError("attack must have positive duration")
    config = config or RTBHControllerConfig()
    windows: List[BlackholeWindow] = []
    t = attack_start + _draw(rng, config.reaction_delay)
    while len(windows) < config.max_windows:
        hold_until = t + _draw(rng, config.hold_time)
        windows.append(BlackholeWindow(t, hold_until))
        if hold_until >= attack_end:
            # the probe after this hold finds the attack gone: stop
            break
        t = hold_until + _draw(rng, config.probe_gap)
        if t >= attack_end:
            # probed after the end: no re-announcement needed
            break
    return windows


def manual_window(
    rng: np.random.Generator,
    attack_start: float,
    reaction_delay: tuple[float, float] = (1800.0, 14_400.0),
    hold: tuple[float, float] = (21_600.0, 604_800.0),
) -> BlackholeWindow:
    """A manually triggered blackhole: late, and held from hours to a week."""
    start = attack_start + _draw(rng, reaction_delay)
    return BlackholeWindow(start, start + _draw(rng, hold))


def zombie_window(announce_time: float) -> BlackholeWindow:
    """A blackhole that is never withdrawn (§7.3's "RTBH zombies")."""
    return BlackholeWindow(announce_time, None)


def squatting_window(
    rng: np.random.Generator,
    start: float,
    hold: tuple[float, float] = (30 * 86_400.0, 120 * 86_400.0),
) -> BlackholeWindow:
    """Squatting-protection blackhole: months-long, for a covering prefix."""
    return BlackholeWindow(start, start + _draw(rng, hold))
