"""Fine-grained filtering — the alternative to RTBH the paper argues for.

§5.5 shows that ~90% of the observed DDoS events could have been fully
mitigated by dropping UDP packets from a-priori known amplification source
ports, with zero collateral damage. This module implements that mitigation
primitive: an ordered rule chain in the spirit of BGP FlowSpec
(RFC 5575) / ACL filters, vectorized over packet arrays, plus an
evaluator that scores a rule chain against coarse RTBH dropping on the
same traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from repro.dataplane.flow import FlowLabel
from repro.errors import ScenarioError
from repro.net.ip import IPv4Prefix
from repro.net.ports import AMPLIFICATION_PORTS

_MAX32 = 0xFFFFFFFF


class FilterAction(str, Enum):
    DROP = "drop"
    ACCEPT = "accept"


@dataclass(frozen=True)
class FilterRule:
    """One match/action rule (a simplified FlowSpec entry).

    All given match components must hold (logical AND); ``None`` matches
    anything. Port sets match exact values; ranges are inclusive.
    """

    action: FilterAction = FilterAction.DROP
    protocol: Optional[int] = None
    src_ports: Optional[FrozenSet[int]] = None
    dst_ports: Optional[FrozenSet[int]] = None
    src_port_range: Optional[Tuple[int, int]] = None
    dst_port_range: Optional[Tuple[int, int]] = None
    src_prefix: Optional[IPv4Prefix] = None
    dst_prefix: Optional[IPv4Prefix] = None

    def __post_init__(self) -> None:
        for name in ("src_port_range", "dst_port_range"):
            bounds = getattr(self, name)
            if bounds is not None:
                low, high = bounds
                if not 0 <= low <= high <= 0xFFFF:
                    raise ScenarioError(f"bad {name}: {bounds}")

    def matches(self, packets: np.ndarray) -> np.ndarray:
        """Vectorized match over a PACKET_DTYPE array."""
        mask = np.ones(len(packets), dtype=bool)
        if self.protocol is not None:
            mask &= packets["protocol"] == self.protocol
        if self.src_ports is not None:
            mask &= np.isin(packets["src_port"], sorted(self.src_ports))
        if self.dst_ports is not None:
            mask &= np.isin(packets["dst_port"], sorted(self.dst_ports))
        if self.src_port_range is not None:
            low, high = self.src_port_range
            mask &= (packets["src_port"] >= low) & (packets["src_port"] <= high)
        if self.dst_port_range is not None:
            low, high = self.dst_port_range
            mask &= (packets["dst_port"] >= low) & (packets["dst_port"] <= high)
        if self.src_prefix is not None:
            mask &= _in_prefix(packets["src_ip"], self.src_prefix)
        if self.dst_prefix is not None:
            mask &= _in_prefix(packets["dst_ip"], self.dst_prefix)
        return mask


def _in_prefix(addresses: np.ndarray, prefix: IPv4Prefix) -> np.ndarray:
    bits = (_MAX32 << (32 - prefix.length)) & _MAX32 if prefix.length else 0
    return (addresses & np.uint32(bits)) == np.uint32(prefix.network_int)


@dataclass
class FilterChain:
    """An ordered rule chain with a default action (first match wins)."""

    rules: Sequence[FilterRule] = field(default_factory=list)
    default: FilterAction = FilterAction.ACCEPT

    def dropped(self, packets: np.ndarray) -> np.ndarray:
        """Boolean drop decision per packet."""
        decided = np.zeros(len(packets), dtype=bool)
        drop = np.zeros(len(packets), dtype=bool)
        for rule in self.rules:
            hit = rule.matches(packets) & ~decided
            if rule.action is FilterAction.DROP:
                drop |= hit
            decided |= hit
        if self.default is FilterAction.DROP:
            drop |= ~decided
        return drop

    def __len__(self) -> int:
        return len(self.rules)


def amplification_filter(victim: IPv4Prefix,
                         ports: FrozenSet[int] = AMPLIFICATION_PORTS) -> FilterChain:
    """The §5.5 mitigation: drop UDP traffic from known amplification
    source ports towards the victim, accept everything else."""
    return FilterChain(rules=[FilterRule(
        action=FilterAction.DROP,
        protocol=17,
        src_ports=frozenset(ports),
        dst_prefix=victim,
    )])


def rtbh_filter(victim: IPv4Prefix) -> FilterChain:
    """Coarse RTBH as a rule chain: drop *everything* towards the victim."""
    return FilterChain(rules=[FilterRule(action=FilterAction.DROP,
                                         dst_prefix=victim)])


@dataclass(frozen=True)
class MitigationScore:
    """How a filter chain performs against labelled traffic."""

    attack_packets: int
    attack_dropped: int
    legit_packets: int
    legit_dropped: int

    @property
    def attack_coverage(self) -> float:
        """Share of attack packets the mitigation removes."""
        return self.attack_dropped / self.attack_packets if self.attack_packets else 0.0

    @property
    def collateral_rate(self) -> float:
        """Share of legitimate packets the mitigation kills."""
        return self.legit_dropped / self.legit_packets if self.legit_packets else 0.0


def score_mitigation(chain: FilterChain, packets: np.ndarray) -> MitigationScore:
    """Score a chain against generator ground-truth labels.

    Only meaningful on synthetic corpora (labels are never available on
    real data); used by ablation benches and validation tests.
    """
    dropped = chain.dropped(packets)
    attack = packets["label"] == int(FlowLabel.ATTACK)
    legit = packets["label"] == int(FlowLabel.LEGIT)
    return MitigationScore(
        attack_packets=int(attack.sum()),
        attack_dropped=int((attack & dropped).sum()),
        legit_packets=int(legit.sum()),
        legit_dropped=int((legit & dropped).sum()),
    )
