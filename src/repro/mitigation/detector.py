"""Victim-side volumetric DDoS detection.

The paper observes that most RTBHs follow their traffic anomaly within
minutes, "indicating automatic DDoS mitigation tools" (§5.3). This module
is that tool: a threshold detector over a binned per-destination rate
series, with an EWMA baseline. The scenario generator schedules reactions
directly from its ground truth for efficiency, but the examples and the
detection-latency tests exercise this detector against sampled corpora.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

_EPS = 1e-12


@dataclass(frozen=True)
class DetectorConfig:
    """Volumetric detection parameters.

    A bin alarms when its rate exceeds ``max(factor × baseline,
    min_rate)``; the baseline is the EWMA of earlier bins. ``hold_bins``
    keeps an alarm active across short dips before declaring the attack
    over.
    """

    bin_width: float = 60.0
    factor: float = 10.0
    min_rate: float = 1.0
    baseline_span: int = 60
    hold_bins: int = 3

    def __post_init__(self) -> None:
        if self.bin_width <= 0 or self.factor <= 1 or self.min_rate < 0:
            raise ValueError("invalid detector parameters")
        if self.baseline_span < 1 or self.hold_bins < 0:
            raise ValueError("invalid detector parameters")


class VolumetricDetector:
    """Detects attack intervals in a packet-timestamp stream."""

    def __init__(self, config: DetectorConfig | None = None):
        self.config = config or DetectorConfig()

    def rate_series(self, times: np.ndarray, t0: float, t1: float) -> Tuple[np.ndarray, np.ndarray]:
        """Bin timestamps into a per-bin rate series over ``[t0, t1)``."""
        if t1 <= t0:
            raise ValueError("t1 must be after t0")
        width = self.config.bin_width
        edges = np.arange(t0, t1 + width, width)
        counts, _ = np.histogram(np.asarray(times, dtype=np.float64), bins=edges)
        rates = counts / width
        return edges[:-1], rates

    def detect(self, times: np.ndarray, t0: float, t1: float) -> List[Tuple[float, float]]:
        """Attack intervals ``(detected_at, cleared_at)`` in the stream.

        Detection latency is inherently one bin (an attack starting inside
        a bin is seen when the bin closes) — consistent with the
        seconds-to-minutes reaction the paper expects of automatic tools.
        """
        bin_starts, rates = self.rate_series(times, t0, t1)
        if len(rates) == 0:
            return []
        # Recursive EWMA baseline, *frozen while an alarm is active*:
        # feeding attack bins into the baseline would let a long attack
        # normalise itself and clear its own alarm.
        alpha = 2.0 / (self.config.baseline_span + 1.0)
        num = 0.0  # weighted sum
        den = 0.0  # weight sum

        intervals: List[Tuple[float, float]] = []
        width = self.config.bin_width
        active_since: float | None = None
        cold_run = 0
        for i, rate in enumerate(rates):
            baseline = num / den if den > 0 else 0.0
            hot = rate > max(self.config.factor * (baseline + _EPS), self.config.min_rate)
            if hot:
                if active_since is None:
                    active_since = bin_starts[i] + width  # alarm when the bin closes
                cold_run = 0
            else:
                num = rate + (1.0 - alpha) * num
                den = 1.0 + (1.0 - alpha) * den
                if active_since is not None:
                    cold_run += 1
                    if cold_run > self.config.hold_bins:
                        intervals.append((active_since, bin_starts[i] + width))
                        active_since = None
                        cold_run = 0
        if active_since is not None:
            intervals.append((active_since, float(bin_starts[-1] + width)))
        return intervals
