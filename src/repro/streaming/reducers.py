"""Serializable reducer states behind the incremental analyses.

Each reducer mirrors one batch computation exactly:

* :class:`ControlReducer` — the stateful RTBH classification of
  :meth:`ControlPlaneCorpus._classify` plus the window automaton of
  :meth:`~repro.corpus.control.ControlPlaneCorpus.rtbh_windows_by_prefix`,
  fed one UPDATE at a time.  Its snapshot feeds the §5.1 Δ-merge
  (:func:`~repro.core.events.events_from_merged_windows`) and the Fig. 3
  load series (:func:`~repro.core.load.load_series_from_state`).
* :class:`TrafficReducer` — the §4.2 per-event integer traffic totals
  (Figs 5–6), accumulated over half-open window *fragments* between
  control-plane frontiers, so each packet is counted exactly once.
* :class:`PreRTBHReducer` — the §5.2–5.3 EWMA classification.  An
  event's pre-window depends only on data before its start, so each
  event is classified once, at the watermark where it first appears.

Every reducer round-trips through plain-JSON state (``to_state`` /
``from_state``) — the pieces the stream checkpoint persists atomically so
a SIGKILLed ``repro watch`` resumes without recomputation.  Floats
survive the round trip exactly (shortest-repr JSON), which is what keeps
resumed fingerprints byte-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bgp.message import BGPUpdate
from repro.core.droprate import EventTraffic, window_traffic_totals
from repro.core.events import (
    DEFAULT_DELTA,
    RTBHEvent,
    events_from_merged_windows,
    merge_annotated_windows,
)
from repro.core.load import RTBHLoadSeries, load_series_from_state
from repro.core.pre_rtbh import (
    PreRTBHClass,
    PreRTBHClassification,
    PreRTBHEvent,
    classify_single_event,
)
from repro.corpus.data import DataPlaneCorpus
from repro.errors import AnalysisError, StreamError
from repro.net.ip import IPv4Prefix
from repro.stats.anomaly import AnomalyConfig, EWMAAnomalyDetector


class ControlReducer:
    """Incremental mirror of the corpus-level RTBH automata.

    Feeding every message of a corpus in time order leaves this reducer
    in a state whose :meth:`windows_snapshot` equals
    ``corpus.rtbh_windows_by_prefix()`` and whose :attr:`rtbh_times`
    equal the timestamps of ``corpus.rtbh_updates()`` — the invariants
    the golden-equivalence suite asserts per watermark.
    """

    def __init__(self) -> None:
        #: (peer, prefix) pairs with a standing blackhole announcement
        self.active: set = set()
        #: (peer, prefix) -> announce time of the currently-open window
        self.open_at: Dict[Tuple[int, IPv4Prefix], float] = {}
        #: prefix -> closed (start, end, announcer) windows
        self.windows: Dict[IPv4Prefix, List[Tuple[float, float, int]]] = {}
        #: (prefix, announcer) -> first origin ASN announced
        self.origin_of: Dict[Tuple[IPv4Prefix, int], int] = {}
        #: timestamps of every RTBH-related update (Fig. 3 message series)
        self.rtbh_times: List[float] = []
        self.message_count = 0
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None

    def feed(self, msg: BGPUpdate) -> None:
        """Apply one UPDATE (messages must arrive in time order)."""
        self.message_count += 1
        if self.start_time is None:
            self.start_time = msg.time
        self.end_time = msg.time
        key = (msg.peer_asn, msg.prefix)
        if msg.is_announce:
            if msg.is_blackhole:
                self.active.add(key)
                flagged = True
            else:
                # replaces any standing blackhole from this peer
                flagged = key in self.active
                self.active.discard(key)
        else:
            flagged = key in self.active
            self.active.discard(key)
        if not flagged:
            return
        self.rtbh_times.append(msg.time)
        if msg.is_announce:
            self.origin_of.setdefault((msg.prefix, msg.peer_asn),
                                      msg.origin_asn)
            self.open_at.setdefault(key, msg.time)
        else:
            start = self.open_at.pop(key, None)
            if start is not None:
                self.windows.setdefault(msg.prefix, []).append(
                    (start, msg.time, msg.peer_asn))

    # -- snapshots -----------------------------------------------------------

    def windows_snapshot(self) -> Dict[IPv4Prefix,
                                       List[Tuple[float, float, int]]]:
        """``rtbh_windows_by_prefix()`` of the messages fed so far.

        Still-open windows close artificially at the current end time —
        exactly the batch semantics, so the snapshot matches the batch
        map at every frontier.
        """
        out = {prefix: list(ws) for prefix, ws in self.windows.items()}
        end = self.end_time if self.message_count else 0.0
        for (peer, prefix), start in self.open_at.items():
            out.setdefault(prefix, []).append((start, end, peer))
        for ws in out.values():
            ws.sort()
        return out

    def events(self, delta: float = DEFAULT_DELTA) -> List[RTBHEvent]:
        """The Δ-merged events of the stream so far (§5.1)."""
        merged = merge_annotated_windows(self.windows_snapshot(),
                                         self.origin_of)
        return events_from_merged_windows(merged, delta)

    def load_series(self) -> RTBHLoadSeries:
        """The Fig. 3 series of the stream so far."""
        if self.message_count == 0:
            raise AnalysisError("empty control corpus")
        return load_series_from_state(
            self.windows_snapshot(),
            np.array(self.rtbh_times, dtype=np.float64),
            self.start_time, self.end_time)

    # -- persistence ---------------------------------------------------------

    def to_state(self) -> dict:
        return {
            "active": [[peer, str(prefix)] for peer, prefix in self.active],
            "open_at": [[peer, str(prefix), start]
                        for (peer, prefix), start in self.open_at.items()],
            "windows": {str(prefix): [list(w) for w in ws]
                        for prefix, ws in self.windows.items()},
            "origin_of": [[str(prefix), peer, origin]
                          for (prefix, peer), origin
                          in self.origin_of.items()],
            "rtbh_times": self.rtbh_times,
            "message_count": self.message_count,
            "start_time": self.start_time,
            "end_time": self.end_time,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ControlReducer":
        reducer = cls()
        try:
            reducer.active = {(int(peer), IPv4Prefix(prefix))
                              for peer, prefix in state["active"]}
            reducer.open_at = {
                (int(peer), IPv4Prefix(prefix)): float(start)
                for peer, prefix, start in state["open_at"]}
            reducer.windows = {
                IPv4Prefix(prefix): [(float(s), float(e), int(peer))
                                     for s, e, peer in ws]
                for prefix, ws in state["windows"].items()}
            reducer.origin_of = {
                (IPv4Prefix(prefix), int(peer)): int(origin)
                for prefix, peer, origin in state["origin_of"]}
            reducer.rtbh_times = [float(t) for t in state["rtbh_times"]]
            reducer.message_count = int(state["message_count"])
            reducer.start_time = state["start_time"]
            reducer.end_time = state["end_time"]
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(f"corrupt control reducer state: {exc}") from exc
        return reducer


class TrafficReducer:
    """Per-event §4.2 traffic totals, accumulated between frontiers.

    At each advance the reducer adds, for every event window, the totals
    of the *fragment* ``[max(start, previous frontier), end)``.  Window
    ends never exceed the control frontier and fragments tile each
    window exactly, so after the final advance the integer totals equal
    the batch :func:`~repro.core.droprate.event_traffic` run.
    """

    def __init__(self) -> None:
        #: event_id -> [packets, dropped_packets, bytes, dropped_bytes]
        self.totals: Dict[int, List[int]] = {}
        #: control-time frontier the totals are accumulated up to
        self.frontier: Optional[float] = None

    def advance(self, data: DataPlaneCorpus, events: Sequence[RTBHEvent],
                new_frontier: float) -> None:
        """Accumulate window fragments in ``[frontier, new_frontier)``."""
        previous = self.frontier
        for event in events:
            acc = self.totals.setdefault(event.event_id, [0, 0, 0, 0])
            for start, end in event.windows:
                lo = start if previous is None else max(start, previous)
                hi = min(end, new_frontier)
                if hi <= lo:
                    continue
                packets, dropped, size, dropped_size = window_traffic_totals(
                    data, event.prefix, lo, hi)
                acc[0] += packets
                acc[1] += dropped
                acc[2] += size
                acc[3] += dropped_size
        self.frontier = new_frontier

    def traffic(self, events: Sequence[RTBHEvent]) -> List[EventTraffic]:
        """The accumulated totals in batch ``event_traffic`` shape."""
        out = []
        for event in events:
            acc = self.totals.get(event.event_id, (0, 0, 0, 0))
            out.append(EventTraffic(
                event_id=event.event_id,
                prefix_length=event.prefix.length,
                packets=acc[0], dropped_packets=acc[1],
                bytes=acc[2], dropped_bytes=acc[3],
            ))
        return out

    def to_state(self) -> dict:
        return {
            "totals": {str(eid): list(acc)
                       for eid, acc in self.totals.items()},
            "frontier": self.frontier,
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrafficReducer":
        reducer = cls()
        try:
            reducer.totals = {int(eid): [int(v) for v in acc]
                              for eid, acc in state["totals"].items()}
            reducer.frontier = state["frontier"]
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(f"corrupt traffic reducer state: {exc}") from exc
        return reducer


class PreRTBHReducer:
    """§5.2–5.3 classification, one event at a time.

    Classification of an event depends only on (a) data strictly before
    the event start and (b) the fixed corpus start time, both immutable
    under append-only growth — so a classified event never needs
    revisiting and the stored results equal the batch run's.
    """

    def __init__(self, anomaly_horizon_min: float = 10.0) -> None:
        self.anomaly_horizon_min = anomaly_horizon_min
        #: event_id -> classified PreRTBHEvent
        self.classified: Dict[int, PreRTBHEvent] = {}

    def advance(self, data: DataPlaneCorpus,
                events: Sequence[RTBHEvent]) -> int:
        """Classify events not seen before; returns how many were new."""
        pending = [ev for ev in events
                   if ev.event_id not in self.classified]
        if not pending:
            return 0
        detector = EWMAAnomalyDetector(AnomalyConfig())
        corpus_start = data.start_time if len(data) else 0.0
        for event in pending:
            self.classified[event.event_id] = classify_single_event(
                data, event, detector, corpus_start=corpus_start,
                anomaly_horizon_min=self.anomaly_horizon_min)
        return len(pending)

    def classification(self, events: Sequence[RTBHEvent],
                       ) -> PreRTBHClassification:
        result = PreRTBHClassification()
        result.events = [self.classified[ev.event_id] for ev in events]
        return result

    def to_state(self) -> dict:
        return {
            "anomaly_horizon_min": self.anomaly_horizon_min,
            "classified": [
                {
                    "event_id": ev.event_id,
                    "classification": ev.classification.value,
                    "slots_with_data": ev.slots_with_data,
                    "total_packets": ev.total_packets,
                    "anomalies": [list(a) for a in ev.anomalies],
                    "amplification_factors": list(ev.amplification_factors),
                    "last_slot_is_max": ev.last_slot_is_max,
                }
                for ev in self.classified.values()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "PreRTBHReducer":
        try:
            reducer = cls(float(state["anomaly_horizon_min"]))
            for raw in state["classified"]:
                event = PreRTBHEvent(
                    event_id=int(raw["event_id"]),
                    classification=PreRTBHClass(raw["classification"]),
                    slots_with_data=int(raw["slots_with_data"]),
                    total_packets=int(raw["total_packets"]),
                    anomalies=tuple((float(off), int(level))
                                    for off, level in raw["anomalies"]),
                    amplification_factors=tuple(
                        float(f) for f in raw["amplification_factors"]),
                    last_slot_is_max=bool(raw["last_slot_is_max"]),
                )
                reducer.classified[event.event_id] = event
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamError(
                f"corrupt pre-RTBH reducer state: {exc}") from exc
        return reducer
