"""The incremental streaming analysis engine (``repro watch``).

:class:`StreamEngine` tails a corpus directory produced by
``repro generate --keep-segments``: the per-day segment files under
``.segments/`` plus the checkpoint journal (``.checkpoint.jsonl``) act as
an append-only commit log.  Each :meth:`tick` re-reads the journal,
ingests every newly committed day (a day counts only once *both* planes'
segments are committed), feeds the control messages through the
serializable reducers of :mod:`repro.streaming.reducers`, and persists a
stream checkpoint atomically — so a SIGKILLed watcher resumes mid-stream
from the last consumed day instead of re-ingesting the prefix.

:meth:`report` then produces a :class:`~repro.streaming.report
.StreamReport`: incremental analyses are answered straight from reducer
state, everything else falls back to a cache-aware batch recompute over
the accumulated corpora.  Either way the per-analysis value fingerprints
must equal a from-scratch batch run over the same corpus prefix — the
invariant the golden suite and the CI watch-smoke job assert.
"""

from __future__ import annotations

import hashlib
import math
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import telemetry
from repro.bgp.message import BGPUpdate
from repro.core.droprate import aggregate_drop_rates, drop_cdfs_from_traffic
from repro.core.events import DEFAULT_DELTA
from repro.core.pipeline import ANALYSIS_NAMES, AnalysisPipeline
from repro.core.registry import CONTROL, DATA, get_analysis
from repro.core.study import StudyReport, run_analysis
from repro.corpus.control import ControlPlaneCorpus, read_updates_jsonl
from repro.corpus.data import DataPlaneCorpus
from repro.corpus.ingest import ErrorPolicy, IngestReport, check_policy
from repro.corpus.manifest import CONTROL_FILE, DATA_FILE, file_sha256
from repro.corpus.platform import load_platform, read_platform_meta
from repro.dataplane.packet import PACKET_DTYPE
from repro.errors import CorpusError, IngestError, ReproError, StreamError
from repro.parallel.cache import ResultCache
from repro.runtime.generate import (
    JOURNAL_FILE,
    SEGMENT_DIR,
    _segment_key,
    _segment_name,
)
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.supervisor import ingest_warnings
from repro.streaming.reducers import (
    ControlReducer,
    PreRTBHReducer,
    TrafficReducer,
)
from repro.streaming.report import (
    MODE_BATCH,
    MODE_CACHED,
    MODE_INCREMENTAL,
    StreamReport,
)
from repro.streaming.state import (
    STREAM_CHECKPOINT_FILE,
    ConsumedDay,
    StreamState,
    load_state,
    save_state,
)

def stream_corpus_digests(corpus_dir: str | Path) -> set:
    """Every ``stream:`` cache corpus key a watcher of this corpus may
    have written: one per (committed day prefix, input-plane subset).

    ``repro validate`` uses this to tell a legitimately prefix-keyed
    stream cache entry apart from one left behind by a different
    (e.g. since-regenerated) corpus.
    """
    journal_path = Path(corpus_dir) / JOURNAL_FILE
    if not journal_path.exists():
        return set()
    journal = CheckpointJournal.load(journal_path)
    shas = []
    day = 0
    while True:
        control = journal.committed(_segment_key("control", day))
        data = journal.committed(_segment_key("data", day))
        if control is None or data is None:
            break
        shas.append((day, control.get("sha256"), data.get("sha256")))
        day += 1
    digests = set()
    for subset in ((CONTROL,), (DATA,), (CONTROL, DATA)):
        h = hashlib.sha256()
        digests.add("stream:" + h.hexdigest())
        for day, control_sha, data_sha in shas:
            if CONTROL in subset:
                h.update(f"control:{day}:{control_sha}\n".encode("utf-8"))
            if DATA in subset:
                h.update(f"data:{day}:{data_sha}\n".encode("utf-8"))
            digests.add("stream:" + h.hexdigest())
    return digests


class StreamEngine:
    """One watcher over one corpus directory.

    Use :meth:`open` (which restores a persisted stream checkpoint when
    one exists) rather than constructing directly.
    """

    def __init__(self, corpus_dir: str | Path, *,
                 policy: Union[str, ErrorPolicy] = ErrorPolicy.SKIP,
                 delta: float = DEFAULT_DELTA,
                 host_min_days: int = 20,
                 cache: Optional[ResultCache] = None,
                 scrub_every: Optional[int] = None):
        self.corpus_dir = Path(corpus_dir)
        self.policy = check_policy(policy)
        self.delta = float(delta)
        self.host_min_days = int(host_min_days)
        self.cache = cache
        #: run a quick integrity scrub every N ticks (None disables);
        #: damage surfaces through obs, never crashes the watcher
        self.scrub_every = scrub_every
        self._ticks = 0
        self._last_scrub: Optional[dict] = None
        self._control = ControlReducer()
        self._traffic = TrafficReducer()
        self._pre = PreRTBHReducer()
        self._consumed: List[ConsumedDay] = []
        #: raw parsed control messages, in segment (= time) order
        self._messages: List[BGPUpdate] = []
        #: raw data-plane day chunks, in segment order
        self._chunks: List[np.ndarray] = []
        # ingest accounting mirroring what a batch load of the
        # accumulated prefix would report
        self._control_total = 0
        self._control_skipped = 0
        self._data_total = 0
        self._sampling_rate: Optional[int] = None
        self._data_cache: Optional[DataPlaneCorpus] = None
        #: attached live-feed tap session (see :meth:`attach_taps`)
        self._taps = None
        #: attached operations plane (see :meth:`attach_obs`)
        self._obs = None

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(cls, corpus_dir: str | Path, *,
             policy: Union[str, ErrorPolicy] = ErrorPolicy.SKIP,
             delta: float = DEFAULT_DELTA,
             host_min_days: int = 20,
             cache: Optional[ResultCache] = None,
             fresh: bool = False,
             scrub_every: Optional[int] = None) -> "StreamEngine":
        """Open a watcher, resuming its stream checkpoint if one exists.

        ``fresh=True`` ignores any existing checkpoint and starts from
        day 0 (the checkpoint file is overwritten at the next tick).
        """
        engine = cls(corpus_dir, policy=policy, delta=delta,
                     host_min_days=host_min_days, cache=cache,
                     scrub_every=scrub_every)
        if not fresh:
            state = load_state(corpus_dir)
            if state is not None:
                engine._restore(state)
        return engine

    def attach_taps(self, session) -> None:
        """Feed this watcher from a :class:`~repro.taps.session.TapSession`.

        Each :meth:`tick` first pumps the session — polling every
        supervised tap and committing completed days into this corpus's
        journal — then tails the journal exactly as it would a
        ``generate --keep-segments`` corpus.  The taps therefore cannot
        bypass any streaming invariant: only committed days reach the
        reducers, and the fingerprints still match a batch ``analyze``
        of the same prefix.
        """
        self._taps = session

    @property
    def taps(self):
        return self._taps

    def attach_obs(self, plane) -> None:
        """Report into an :class:`~repro.obs.plane.ObsPlane` every tick.

        At the end of each :meth:`tick` the engine hands the plane its
        :meth:`obs_sample`; the plane evaluates the SLO rules over it,
        appends any transition events, flushes the ``.obs/snapshot.json``
        document, and feeds the HTTP endpoint.  The engine itself never
        blocks on (or even knows about) HTTP handlers.
        """
        self._obs = plane

    @property
    def obs(self):
        return self._obs

    @property
    def watermark_days(self) -> int:
        """Days fully consumed by this watcher."""
        return len(self._consumed)

    @property
    def segments_consumed(self) -> int:
        return 2 * len(self._consumed)

    def state(self) -> StreamState:
        """The serializable snapshot :meth:`tick` persists per day."""
        return StreamState(
            policy=self.policy.value, delta=self.delta,
            host_min_days=self.host_min_days,
            consumed=list(self._consumed),
            control_state=self._control.to_state(),
            traffic_state=self._traffic.to_state(),
            pre_state=self._pre.to_state(),
        )

    def _restore(self, state: StreamState) -> None:
        """Rebuild in-memory context from a persisted checkpoint.

        Reducer states come from the checkpoint; the raw messages and
        packet chunks (needed for batch-fallback analyses) are re-read
        from the consumed segment files, each re-verified against the
        corpus journal so a regenerated corpus cannot be silently spliced
        onto foreign reducer state.
        """
        mine = self.state().config()
        if state.config() != mine:
            raise StreamError(
                f"{self.corpus_dir}: stream checkpoint was written with "
                f"config {state.config()} but the watcher was opened with "
                f"{mine}; re-run with matching options or start fresh")
        journal = self._journal()
        for entry in state.consumed:
            control_entry = journal.committed(_segment_key("control",
                                                           entry.day))
            data_entry = journal.committed(_segment_key("data", entry.day))
            for plane, committed, expected in (
                    ("control", control_entry, entry.control_sha256),
                    ("data", data_entry, entry.data_sha256)):
                if committed is None or committed.get("sha256") != expected:
                    raise StreamError(
                        f"{self.corpus_dir}: stream checkpoint consumed "
                        f"{plane} day {entry.day} with sha {expected[:12]}… "
                        "but the corpus journal disagrees; the corpus was "
                        "regenerated — remove the stream checkpoint to "
                        "start over")
            self._ingest_day(entry.day, entry.control_sha256,
                             entry.data_sha256, feed=False)
            self._consumed.append(entry)
        if state.consumed:
            self._control = ControlReducer.from_state(state.control_state)
            self._traffic = TrafficReducer.from_state(state.traffic_state)
            self._pre = PreRTBHReducer.from_state(state.pre_state)

    # -- consumption ---------------------------------------------------------

    def _journal(self) -> CheckpointJournal:
        path = self.corpus_dir / JOURNAL_FILE
        if not path.exists():
            raise StreamError(
                f"{self.corpus_dir}: no checkpoint journal to tail; "
                "is this a generated corpus directory?")
        return CheckpointJournal.load(path)

    def _committed_days(self, journal: CheckpointJournal) -> int:
        """Days with *both* planes' segments committed, from day 0 on."""
        day = 0
        while (journal.committed(_segment_key("control", day)) is not None
               and journal.committed(_segment_key("data", day)) is not None):
            day += 1
        return day

    def tick(self, *, final: bool = False) -> int:
        """Consume every newly committed day; returns how many.

        After each day the reducers have advanced and the stream
        checkpoint is durably on disk — the chaos kill point
        ``stream:day:NNN`` fires between days, and a watcher killed
        there resumes with that day already consumed.

        With taps attached the tick first pumps them (``final=True``
        drains the sources to EOF and flushes the partial tail day —
        the ``--once`` semantics); without taps ``final`` is a no-op.
        """
        telem = telemetry.current()
        if self._taps is not None:
            self._taps.pump(final=final)
        journal = self._journal()
        committed = self._committed_days(journal)
        telem.gauge("stream.lag_days").set(committed - self.watermark_days)
        consumed = 0
        with telem.span("stream.tick", watermark=self.watermark_days,
                        committed=committed) as sp:
            while self.watermark_days < committed:
                day = self.watermark_days
                control_sha = journal.committed(
                    _segment_key("control", day))["sha256"]
                data_sha = journal.committed(
                    _segment_key("data", day))["sha256"]
                self._ingest_day(day, control_sha, data_sha, feed=True)
                self._consumed.append(ConsumedDay(
                    day=day, control_sha256=control_sha,
                    data_sha256=data_sha))
                self._advance_reducers()
                save_state(self.corpus_dir, self.state())
                consumed += 1
                telem.counter("stream.segments_consumed").inc(2)
                telem.event("stream.day_consumed", day=day,
                            watermark=self.watermark_days,
                            control_sha256=control_sha[:12],
                            data_sha256=data_sha[:12])
            sp.attrs["consumed_days"] = consumed
        telem.gauge("stream.lag_days").set(
            self._committed_days(journal) - self.watermark_days)
        self._ticks += 1
        if self.scrub_every and self._ticks % self.scrub_every == 0:
            self._scrub_tick()
        if self._obs is not None:
            self._obs.observe(self.obs_sample())
        return consumed

    def _scrub_tick(self) -> None:
        """Background integrity scrub: quick mode, advisory only.

        Damage never crashes the watcher — it lands in the obs sample
        (degrading readiness via the ``doctor.damage`` SLO check) and
        the event log, and the operator runs ``repro doctor --repair``.
        """
        from repro.doctor import scrub_corpus

        telem = telemetry.current()
        try:
            report = scrub_corpus(self.corpus_dir, deep=False,
                                  cache_dir=None if self.cache is None
                                  else self.cache.root)
        except ReproError as exc:  # scrub trouble is a finding, not a crash
            self._last_scrub = {"tick": self._ticks, "damage_count": 1,
                                "error_count": 1, "classes": ["scrub-failed"],
                                "detail": str(exc)}
            telem.event("doctor.damage", severity="error",
                        classes=["scrub-failed"], detail=str(exc))
            return
        self._last_scrub = {
            "tick": self._ticks,
            "damage_count": len(report.damages),
            "error_count": len(report.errors),
            "classes": report.classes(),
        }
        if not report.clean:
            telem.counter("doctor.damage_found").inc(len(report.damages))
            telem.event(
                "doctor.damage", severity="warning",
                damage_count=len(report.damages),
                error_count=len(report.errors), classes=report.classes(),
                damages=[str(d) for d in report.damages[:10]])

    def obs_sample(self) -> dict:
        """The operational sample the obs plane judges and publishes.

        A plain dict — watermark/commit-log position, checkpoint
        staleness, per-tap status, and the full metrics snapshot — so the
        SLO evaluator stays a pure function and the snapshot document is
        self-contained for ``repro status`` after the process dies.
        """
        telem = telemetry.current()
        try:
            committed = self._committed_days(self._journal())
        except StreamError:
            committed = 0
        sample: dict = {
            "corpus": str(self.corpus_dir),
            "watermark_days": self.watermark_days,
            "committed_days": committed,
            "lag_days": committed - self.watermark_days,
            "metrics": telem.metrics_snapshot() if telem.enabled else {},
        }
        checkpoint = self.corpus_dir / STREAM_CHECKPOINT_FILE
        try:
            sample["checkpoint_age_seconds"] = max(
                0.0, time.time() - checkpoint.stat().st_mtime)
        except OSError:
            pass  # nothing persisted yet — not applicable, not a failure
        if self._taps is not None:
            sample["taps"] = self._taps.status()
            sample["taps_degraded"] = self._taps.degraded
        if self._last_scrub is not None:
            sample["doctor"] = dict(self._last_scrub)
        return sample

    def _segment_path(self, plane: str, day: int) -> Path:
        path = self.corpus_dir / SEGMENT_DIR / _segment_name(plane, day)
        if not path.exists():
            raise StreamError(
                f"{path}: committed segment file is missing; generate the "
                "corpus with --keep-segments to leave the day segments "
                "on disk for streaming")
        return path

    def _ingest_day(self, day: int, control_sha: str, data_sha: str, *,
                    feed: bool) -> None:
        """Read one day's two segments into the accumulated context.

        ``feed=True`` additionally runs the control messages through the
        control reducer (first consumption); restore passes ``feed=False``
        because the reducer state comes from the checkpoint.
        """
        control_path = self._segment_path("control", day)
        data_path = self._segment_path("data", day)
        for path, expected in ((control_path, control_sha),
                               (data_path, data_sha)):
            actual = file_sha256(path)
            if actual != expected:
                raise StreamError(
                    f"{path}: segment checksum {actual[:12]}… does not "
                    f"match the journal's {expected[:12]}…; the corpus "
                    "changed underneath the watcher")
        policy = self.policy.value
        for line_no, item in read_updates_jsonl(control_path,
                                                on_error=policy):
            self._control_total += 1
            if not isinstance(item, BGPUpdate):
                self._control_skipped += 1
                continue
            if not math.isfinite(item.time):
                # mirror ControlPlaneCorpus construction: strict raises,
                # lenient drops with accounting
                if policy == "strict":
                    raise CorpusError(
                        f"control-plane record {control_path.name}:{line_no} "
                        f"has non-finite timestamp {item.time!r}")
                self._control_skipped += 1
                continue
            self._messages.append(item)
            if feed:
                self._control.feed(item)
        try:
            with np.load(data_path) as archive:
                chunk = archive["packets"]
        except Exception as exc:
            raise IngestError(
                f"{data_path}: unreadable segment archive: {exc}") from exc
        if chunk.dtype != PACKET_DTYPE or chunk.ndim != 1:
            raise CorpusError(
                f"{data_path}: expected 1-D PACKET_DTYPE array, got "
                f"{chunk.dtype} with shape {chunk.shape}")
        self._data_total += len(chunk)
        self._chunks.append(chunk)
        self._data_cache = None

    def _advance_reducers(self) -> None:
        data = self._data_corpus()
        events = self._control.events(self.delta)
        if self._control.message_count:
            self._traffic.advance(data, events, self._control.end_time)
        self._pre.advance(data, events)

    # -- accumulated corpora -------------------------------------------------

    def _sampling(self) -> int:
        if self._sampling_rate is None:
            meta = read_platform_meta(self.corpus_dir)
            try:
                self._sampling_rate = int(meta["sampling_rate"])
            except (KeyError, TypeError, ValueError) as exc:
                raise CorpusError(
                    f"{self.corpus_dir}: platform sidecar lacks a usable "
                    f"sampling_rate: {exc}") from exc
        return self._sampling_rate

    def _data_corpus(self) -> DataPlaneCorpus:
        """The accumulated data-plane corpus up to the watermark.

        Constructed exactly as a batch ``load_npz`` of the concatenated
        chunks would be (same validation, same stable time sort, same
        ingest accounting), so every downstream number matches.
        """
        if self._data_cache is None:
            packets = (np.concatenate(self._chunks) if self._chunks
                       else np.zeros(0, dtype=PACKET_DTYPE))
            report = IngestReport(source=str(self.corpus_dir / DATA_FILE),
                                  policy=self.policy.value)
            report.total = self._data_total
            self._data_cache = DataPlaneCorpus(
                packets, sampling_rate=self._sampling(),
                on_error=self.policy.value, ingest_report=report)
        return self._data_cache

    def _control_corpus(self) -> ControlPlaneCorpus:
        """The accumulated control-plane corpus up to the watermark."""
        report = IngestReport(source=str(self.corpus_dir / CONTROL_FILE),
                              policy=self.policy.value)
        report.total = self._control_total
        report.skipped = self._control_skipped
        return ControlPlaneCorpus(list(self._messages),
                                  on_error=self.policy.value,
                                  ingest_report=report)

    # -- reporting -----------------------------------------------------------

    def _config_hash(self) -> Optional[str]:
        return telemetry.config_hash(self.state().config())

    def _stream_digest(self, inputs: Sequence[str]) -> str:
        """Cache corpus key over the consumed segments an analysis reads.

        Keyed per plane, so (for instance) a control-only analysis keeps
        hitting its cache entry even if only data segments were corrupt
        and re-committed.  The ``stream:`` prefix keeps these entries
        disjoint from batch ``analyze`` entries in a shared cache dir.
        """
        h = hashlib.sha256()
        for entry in self._consumed:
            if CONTROL in inputs:
                h.update(f"control:{entry.day}:{entry.control_sha256}\n"
                         .encode("utf-8"))
            if DATA in inputs:
                h.update(f"data:{entry.day}:{entry.data_sha256}\n"
                         .encode("utf-8"))
        return "stream:" + h.hexdigest()

    def _pipeline(self) -> AnalysisPipeline:
        try:
            peers, rs_asn, peeringdb = load_platform(self.corpus_dir)
        except (OSError, KeyError, ValueError) as exc:
            raise CorpusError(
                f"{self.corpus_dir}: unusable platform sidecar: {exc}"
                ) from exc
        # ColumnarPipeline with no sidecar columns: the on-disk sidecars
        # describe the *full* corpus, not the consumed prefix, so the
        # batch-recompute analyses vectorize over in-memory columns of
        # the accumulated corpora instead — fingerprints stay equal to
        # the record path either way.
        from repro.columnar.pipeline import ColumnarPipeline

        pipeline = ColumnarPipeline(
            self._control_corpus(), self._data_corpus(), peers,
            peeringdb=peeringdb, route_server_asn=rs_asn,
            delta=self.delta, host_min_days=self.host_min_days)
        # Inject the incrementally-maintained shared intermediates into
        # the cached_property slots so neither the incremental analyses
        # nor the batch fallbacks recompute them from scratch.
        events = self._control.events(self.delta)
        pipeline.__dict__["events"] = events
        pipeline.__dict__["event_traffic"] = self._traffic.traffic(events)
        pipeline.__dict__["pre_classification"] = \
            self._pre.classification(events)
        return pipeline

    def _incremental_fn(self, name: str,
                        pipeline: AnalysisPipeline) -> Callable:
        if name == "fig3_load":
            return self._control.load_series
        events = pipeline.__dict__["events"]
        if name == "fig5_drop_by_length":
            return lambda: aggregate_drop_rates(self._traffic.traffic(events))
        if name == "fig6_drop_cdfs":
            return lambda: drop_cdfs_from_traffic(self._traffic.traffic(events))
        # table2_pre_classes / fig19_use_cases read only the injected
        # intermediates through the pipeline — already incremental
        return pipeline.analysis_fn(name)

    def report(self, analyses: Optional[Sequence[str]] = None,
               ) -> StreamReport:
        """Analyze the consumed prefix; see the module docstring.

        ``analyses`` restricts to a subset of registry names (default:
        the full study).  Incremental analyses are answered from reducer
        state; the rest recompute batch-style over the accumulated
        corpora, consulting the result cache when one was given.
        """
        telem = telemetry.current()
        names = list(analyses if analyses is not None else ANALYSIS_NAMES)
        specs = [get_analysis(name) for name in names]
        with telem.span("stream.report", watermark=self.watermark_days,
                        analyses=len(names)):
            pipeline = self._pipeline()
            degraded = pipeline.degraded_inputs
            study = StudyReport()
            study.warnings.extend(ingest_warnings(pipeline))
            modes: Dict[str, str] = {}
            for spec in specs:
                name = spec.name
                if spec.incremental:
                    outcome = run_analysis(
                        name, self._incremental_fn(name, pipeline),
                        strict=False, degraded_inputs=degraded,
                        fingerprint=True)
                    modes[name] = MODE_INCREMENTAL
                else:
                    outcome = None
                    digest = None
                    if self.cache is not None:
                        digest = self._stream_digest(spec.inputs)
                        outcome = self.cache.get(digest, self._config_hash(),
                                                 name)
                    if outcome is not None:
                        modes[name] = MODE_CACHED
                    else:
                        outcome = run_analysis(
                            name, pipeline.analysis_fn(name), strict=False,
                            degraded_inputs=degraded, fingerprint=True)
                        modes[name] = MODE_BATCH
                        if self.cache is not None:
                            self.cache.put(digest, self._config_hash(),
                                           outcome)
                telem.counter("stream.analyses", mode=modes[name],
                              status=outcome.status.value).inc()
                study.outcomes.append(outcome)
            if telem.enabled:
                study.telemetry = telem.metrics_snapshot()
        return StreamReport(
            corpus=str(self.corpus_dir),
            watermark_days=self.watermark_days,
            segments_consumed=self.segments_consumed,
            study=study, modes=modes,
            taps=None if self._taps is None else self._taps.status())

    # -- the watch loop ------------------------------------------------------

    def watch(self, *, interval: float = 1.0,
              max_ticks: Optional[int] = None,
              until_days: Optional[int] = None,
              sleep: Callable[[float], None] = time.sleep,
              on_tick: Optional[Callable[["StreamEngine", int], None]] = None,
              ) -> int:
        """Tick until a stop condition; returns the final watermark.

        ``until_days`` stops once that many days are consumed (the CI
        smoke job's condition); ``max_ticks`` bounds the loop regardless;
        ``on_tick(engine, consumed_days)`` observes each tick.  With
        neither bound set this loops forever (the interactive
        ``repro watch`` case — the user interrupts it).
        """
        ticks = 0
        while True:
            consumed = self.tick()
            ticks += 1
            if on_tick is not None:
                on_tick(self, consumed)
            if until_days is not None and self.watermark_days >= until_days:
                break
            if max_ticks is not None and ticks >= max_ticks:
                break
            sleep(interval)
        return self.watermark_days
