"""repro.streaming — incremental analysis over an append-only corpus.

The streaming engine (``repro watch``) tails the committed day segments
of a generated corpus, advances serializable per-analysis reducers, and
reports results whose value fingerprints equal a from-scratch batch run
over the same corpus prefix.  ``repro advance`` extends a corpus by more
days through the same commit log.  See DESIGN.md §10.
"""

from repro.streaming.advance import AdvanceReport, advance_corpus
from repro.streaming.engine import StreamEngine
from repro.streaming.reducers import (
    ControlReducer,
    PreRTBHReducer,
    TrafficReducer,
)
from repro.streaming.report import StreamReport
from repro.streaming.state import (
    STREAM_CHECKPOINT_FILE,
    StreamState,
    load_state,
    reset_stream,
    save_state,
)

__all__ = [
    "AdvanceReport",
    "ControlReducer",
    "PreRTBHReducer",
    "STREAM_CHECKPOINT_FILE",
    "StreamEngine",
    "StreamReport",
    "StreamState",
    "TrafficReducer",
    "advance_corpus",
    "load_state",
    "reset_stream",
    "save_state",
]
