"""The stream checkpoint: reducer states + consumed-segment ledger.

``repro watch`` persists one JSON file, ``.stream.checkpoint.json``, in
the corpus directory it tails.  The file is written atomically after
every consumed day (temp + fsync + rename, like every other artifact of
the crash-safe layer), so a SIGKILLed watcher finds either the previous
complete checkpoint or the new one — never a hybrid.  The chaos hook
``stream:day:NNN`` fires right after the save, letting the chaos suite
kill the watcher at exactly that boundary.

Resume validation is deliberately strict: every consumed segment's
SHA-256 must still match the corpus checkpoint journal.  A corpus that
was regenerated underneath the watcher fails with
:class:`~repro.errors.StreamError` instead of silently splicing reducer
state from one corpus onto the segments of another.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

from repro import telemetry
from repro.errors import StreamCheckpointError, StreamError
from repro.runtime import chaos
from repro.runtime.atomic import atomic_write_text

#: checkpoint file name inside the watched corpus directory (dot-prefixed
#: so manifests and corpus digests never include it)
STREAM_CHECKPOINT_FILE = ".stream.checkpoint.json"

STATE_VERSION = 1


@dataclass
class ConsumedDay:
    """One fully-consumed day: both planes' committed segment checksums."""

    day: int
    control_sha256: str
    data_sha256: str


@dataclass
class StreamState:
    """Everything a resumed watcher needs besides the segment files."""

    policy: str
    delta: float
    host_min_days: int
    consumed: List[ConsumedDay] = field(default_factory=list)
    control_state: Optional[dict] = None
    traffic_state: Optional[dict] = None
    pre_state: Optional[dict] = None

    @property
    def watermark_days(self) -> int:
        """Days fully consumed (both planes ingested and reduced)."""
        return len(self.consumed)

    def config(self) -> dict:
        """The knobs that change results; resume refuses on mismatch."""
        return {"policy": self.policy, "delta": self.delta,
                "host_min_days": self.host_min_days}

    def to_json(self) -> dict:
        return {
            "version": STATE_VERSION,
            "policy": self.policy,
            "delta": self.delta,
            "host_min_days": self.host_min_days,
            "consumed": [
                {"day": c.day, "control_sha256": c.control_sha256,
                 "data_sha256": c.data_sha256}
                for c in self.consumed
            ],
            "control_state": self.control_state,
            "traffic_state": self.traffic_state,
            "pre_state": self.pre_state,
        }

    @classmethod
    def from_json(cls, raw: dict) -> "StreamState":
        if raw.get("version") != STATE_VERSION:
            raise StreamCheckpointError(
                f"unsupported stream checkpoint version {raw.get('version')!r}"
                f" (expected {STATE_VERSION})")
        try:
            state = cls(
                policy=str(raw["policy"]),
                delta=float(raw["delta"]),
                host_min_days=int(raw["host_min_days"]),
                control_state=raw.get("control_state"),
                traffic_state=raw.get("traffic_state"),
                pre_state=raw.get("pre_state"),
            )
            for entry in raw["consumed"]:
                state.consumed.append(ConsumedDay(
                    day=int(entry["day"]),
                    control_sha256=str(entry["control_sha256"]),
                    data_sha256=str(entry["data_sha256"])))
        except (KeyError, TypeError, ValueError) as exc:
            raise StreamCheckpointError(
                f"corrupt stream checkpoint: {exc}") from exc
        return state


def checkpoint_path(corpus_dir: str | Path) -> Path:
    return Path(corpus_dir) / STREAM_CHECKPOINT_FILE


def save_state(corpus_dir: str | Path, state: StreamState) -> Path:
    """Atomically persist the stream state, then fire the chaos hook.

    The hook announces the *last consumed* day — a configured
    ``REPRO_CHAOS_KILL_AT=stream:day:001`` SIGKILLs the watcher the
    instant day 1's checkpoint is durable, exactly like a power cut
    between ticks.
    """
    path = checkpoint_path(corpus_dir)
    atomic_write_text(path, json.dumps(state.to_json()))
    telemetry.current().event(
        "stream.checkpoint_saved", severity="debug",
        days=len(state.consumed))
    if state.consumed:
        chaos.maybe_kill(f"stream:day:{state.consumed[-1].day:03d}")
    return path


def load_state(corpus_dir: str | Path) -> Optional[StreamState]:
    """The persisted stream state, or None when none exists yet.

    An unreadable or truncated checkpoint raises
    :class:`~repro.errors.StreamCheckpointError`: unlike the
    torn-tail-tolerant journal, this file is replaced atomically, so
    corruption means something external happened to it and silently
    starting from scratch would hide that.  The checkpoint is *derived*
    state though, so recovery is always available:
    :func:`reset_stream` (``repro watch --reset-stream``) discards it
    and the watcher re-consumes the commit log from day 0.
    """
    path = checkpoint_path(corpus_dir)
    if not path.exists():
        return None
    try:
        raw = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise StreamCheckpointError(
            f"{path}: unreadable stream checkpoint: {exc}") from exc
    if not isinstance(raw, dict):
        raise StreamCheckpointError(
            f"{path}: stream checkpoint is not an object")
    return StreamState.from_json(raw)


def reset_stream(corpus_dir: str | Path) -> bool:
    """Discard the stream checkpoint (the ``--reset-stream`` recovery).

    Safe because the checkpoint only memoizes consumption of the
    corpus's own committed segments; the next watcher rebuilds it from
    day 0.  Returns whether a checkpoint existed.
    """
    path = checkpoint_path(corpus_dir)
    try:
        path.unlink()
        return True
    except FileNotFoundError:
        return False
    except OSError as exc:
        raise StreamError(f"{path}: cannot remove stream checkpoint: {exc}"
                          ) from exc
