"""The streaming analysis report.

A :class:`StreamReport` wraps the per-analysis outcomes of one watch
tick's report pass, plus the streaming context a batch
:class:`~repro.core.study.StudyReport` has no notion of: the watermark
(days consumed), how each analysis was produced (incrementally from
reducer state, recomputed batch-style, or served from the result cache),
and the consumed-segment count.

The load-bearing guarantee — asserted by the golden suite and the CI
watch-smoke job — is that :meth:`fingerprints` equals the batch study's
fingerprints for the same corpus prefix: streaming must change *when*
numbers are computed, never the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.study import AnalysisStatus, StudyReport

#: how one analysis's outcome was produced this tick
MODE_INCREMENTAL = "incremental"
MODE_BATCH = "batch"
MODE_CACHED = "cached"


@dataclass
class StreamReport:
    """Outcomes of one streaming report pass over a corpus prefix."""

    corpus: str
    watermark_days: int
    segments_consumed: int
    study: StudyReport = field(default_factory=StudyReport)
    #: analysis name -> "incremental" | "batch" | "cached"
    modes: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.study.ok

    @property
    def all_degraded(self) -> bool:
        return self.study.all_degraded

    def fingerprints(self) -> Dict[str, Optional[str]]:
        """Per-analysis canonical value fingerprints (None for failures).

        Must equal the batch study's fingerprints for the same corpus
        prefix — the streaming-equivalence invariant.
        """
        return {o.name: o.value_digest for o in self.study.outcomes}

    def to_json(self) -> dict:
        payload = self.study.to_json()
        payload["stream"] = {
            "corpus": self.corpus,
            "watermark_days": self.watermark_days,
            "segments_consumed": self.segments_consumed,
            "modes": dict(self.modes),
        }
        return payload

    def format(self) -> str:
        counts = self.study.counts()
        lines = [
            f"stream report: watermark day {self.watermark_days} "
            f"({self.segments_consumed} segments consumed) — "
            f"{counts[AnalysisStatus.OK]} ok, "
            f"{counts[AnalysisStatus.DEGRADED]} degraded, "
            f"{counts[AnalysisStatus.FAILED]} failed"
        ]
        for warning in self.study.warnings:
            lines.append(f"  ! {warning}")
        width = max((len(o.name) for o in self.study.outcomes), default=0)
        for o in self.study.outcomes:
            mode = self.modes.get(o.name, MODE_BATCH)
            line = (f"  {o.name.ljust(width)}  {o.status.value:8s}  "
                    f"[{mode}]")
            if o.error is not None:
                line += f"  {o.error_type}: {o.error}"
            lines.append(line)
        return "\n".join(lines)
