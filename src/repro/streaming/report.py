"""The streaming analysis report.

A :class:`StreamReport` wraps the per-analysis outcomes of one watch
tick's report pass, plus the streaming context a batch
:class:`~repro.core.study.StudyReport` has no notion of: the watermark
(days consumed), how each analysis was produced (incrementally from
reducer state, recomputed batch-style, or served from the result cache),
and the consumed-segment count.

The load-bearing guarantee — asserted by the golden suite and the CI
watch-smoke job — is that :meth:`fingerprints` equals the batch study's
fingerprints for the same corpus prefix: streaming must change *when*
numbers are computed, never the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.study import AnalysisStatus, StudyReport

#: how one analysis's outcome was produced this tick
MODE_INCREMENTAL = "incremental"
MODE_BATCH = "batch"
MODE_CACHED = "cached"


@dataclass
class StreamReport:
    """Outcomes of one streaming report pass over a corpus prefix."""

    corpus: str
    watermark_days: int
    segments_consumed: int
    study: StudyReport = field(default_factory=StudyReport)
    #: analysis name -> "incremental" | "batch" | "cached"
    modes: Dict[str, str] = field(default_factory=dict)
    #: tap name -> supervisor status dict (None: no taps attached)
    taps: Optional[Dict[str, dict]] = None

    @property
    def ok(self) -> bool:
        return self.study.ok

    @property
    def all_degraded(self) -> bool:
        return self.study.all_degraded

    @property
    def tap_degraded(self) -> bool:
        """True when any attached tap died permanently this session.

        A degraded session is still *live* — surviving taps keep
        advancing the reducers — but operators must know the corpus
        prefix no longer reflects every configured feed.
        """
        return bool(self.taps) and any(
            entry.get("state") == "dead" for entry in self.taps.values())

    def fingerprints(self) -> Dict[str, Optional[str]]:
        """Per-analysis canonical value fingerprints (None for failures).

        Must equal the batch study's fingerprints for the same corpus
        prefix — the streaming-equivalence invariant.
        """
        return {o.name: o.value_digest for o in self.study.outcomes}

    def to_json(self) -> dict:
        payload = self.study.to_json()
        payload["stream"] = {
            "corpus": self.corpus,
            "watermark_days": self.watermark_days,
            "segments_consumed": self.segments_consumed,
            "modes": dict(self.modes),
        }
        if self.taps is not None:
            payload["stream"]["taps"] = {
                name: dict(entry) for name, entry in self.taps.items()}
            payload["stream"]["degraded"] = self.tap_degraded
        return payload

    def format(self) -> str:
        counts = self.study.counts()
        lines = [
            f"stream report: watermark day {self.watermark_days} "
            f"({self.segments_consumed} segments consumed) — "
            f"{counts[AnalysisStatus.OK]} ok, "
            f"{counts[AnalysisStatus.DEGRADED]} degraded, "
            f"{counts[AnalysisStatus.FAILED]} failed"
        ]
        for warning in self.study.warnings:
            lines.append(f"  ! {warning}")
        width = max((len(o.name) for o in self.study.outcomes), default=0)
        for o in self.study.outcomes:
            mode = self.modes.get(o.name, MODE_BATCH)
            line = (f"  {o.name.ljust(width)}  {o.status.value:8s}  "
                    f"[{mode}]")
            if o.error is not None:
                line += f"  {o.error_type}: {o.error}"
            lines.append(line)
        if self.taps:
            lines.append("taps:" + (" DEGRADED" if self.tap_degraded
                                    else ""))
            width = max(len(name) for name in self.taps)
            for name, entry in sorted(self.taps.items()):
                line = (f"  {name.ljust(width)}  "
                        f"{entry.get('state', '?'):12s}  "
                        f"breaker={entry.get('breaker', '?')}  "
                        f"ok={entry.get('records_ok', 0)}  "
                        f"malformed={entry.get('records_malformed', 0)}  "
                        f"reconnects={entry.get('reconnects', 0)}")
                if entry.get("last_error"):
                    line += f"  [{entry['last_error']}]"
                lines.append(line)
        return "\n".join(lines)
