"""``repro advance``: extend a generated corpus by N days, incrementally.

The scenario generator is seeded but *not* prefix-deterministic across
durations — regenerating a longer scenario changes earlier days too.  So
``advance`` uses continuation semantics: the committed on-disk day
segments stay authoritative for the existing prefix, and only the day
slices *beyond* the current day count of a regenerated longer run are
appended (each filtered against the previous committed maximum timestamp
so the concatenated corpus stays time-sorted even around the clamped
last-day overflow).  The corpus files, ``platform.json`` (original
membership/PeeringDB preserved — only ``duration_days`` moves), the
manifest, and the ``finalize`` journal entry are then rebuilt from the
full segment set.

Every new segment is committed to the same checkpoint journal the
generation wrote, so a concurrently running ``repro watch`` picks the
new days up as ordinary journal tail growth, and a crashed ``advance``
re-run skips the segments it already committed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro import telemetry
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    META_FILE,
    file_sha256,
    write_manifest,
)
from repro.errors import StreamError
from repro.runtime.atomic import atomic_writer, remove_stale_tmp
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.generate import (
    FINALIZE_KEY,
    JOURNAL_FILE,
    SEGMENT_DIR,
    _segment_key,
    _segment_name,
    _write_segment_file,
)
from repro.corpus.platform import read_platform_meta
from repro.scenario.config import ScenarioConfig
from repro.scenario.runner import run_scenario


@dataclass
class AdvanceReport:
    """What one (possibly resumed) incremental extension did."""

    out_dir: str
    days_added: int
    day_count: int
    segments_written: int = 0
    segments_skipped: int = 0
    #: regenerated records overlapping the old corpus tail, dropped to
    #: keep the concatenated corpus time-sorted
    records_dropped: int = 0
    control_messages: int = 0
    data_packets: int = 0
    #: metrics snapshot from the active telemetry context, when one was
    #: collecting (the ``advance --json`` surface)
    telemetry: Optional[dict] = None

    def to_json(self) -> dict:
        return {
            "out_dir": self.out_dir,
            "days_added": self.days_added,
            "day_count": self.day_count,
            "segments_written": self.segments_written,
            "segments_skipped": self.segments_skipped,
            "records_dropped": self.records_dropped,
            "control_messages": self.control_messages,
            "data_packets": self.data_packets,
            "telemetry": self.telemetry,
        }

    def format(self) -> str:
        line = (f"advanced {self.out_dir}/ by {self.days_added} day(s) to "
                f"{self.day_count}: {self.segments_written} new segments "
                f"({self.segments_skipped} already committed), now "
                f"{self.control_messages} control messages, "
                f"{self.data_packets} sampled packets")
        if self.records_dropped:
            line += (f"; dropped {self.records_dropped} overlapping "
                     "regenerated records")
        return line


def _provenance(meta: dict, corpus_dir: Path) -> tuple:
    try:
        return (float(meta["scale"]), int(meta["duration_days"]),
                int(meta["seed"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise StreamError(
            f"{corpus_dir}: platform.json lacks the generation provenance "
            f"(scale/duration_days/seed) advance needs: {exc}; only corpora "
            "written by `repro generate` can be advanced") from exc


def _committed_days(journal: CheckpointJournal) -> int:
    day = 0
    while (journal.committed(_segment_key("control", day)) is not None
           and journal.committed(_segment_key("data", day)) is not None):
        day += 1
    return day


def _tail_fence(corpus_dir: Path, old_days: int) -> float:
    """Max committed timestamp across *both* planes' last segments.

    One shared fence, not per-plane: the committed last day holds the old
    run's clamped overflow, so the two planes' tails end at different
    times.  Filtering each plane only against its own tail would let an
    appended packet land *before* the committed control maximum — i.e.
    inside a window fragment the streaming traffic reducer has already
    accumulated past, silently diverging from batch.  With the shared
    fence every appended record of either plane postdates everything the
    watcher has consumed.
    """
    seg_dir = corpus_dir / SEGMENT_DIR
    fence = float("-inf")
    with open(seg_dir / _segment_name("control", old_days - 1),
              encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                fence = max(fence, float(json.loads(line)["time"]))
    with np.load(seg_dir / _segment_name("data", old_days - 1)) as archive:
        times = archive["packets"]["time"]
        if len(times):
            fence = max(fence, float(times.max()))
    return fence


def advance_corpus(corpus_dir: str | Path, days: int) -> AdvanceReport:
    """Extend a kept-segments corpus by ``days`` more days; see module doc.

    Raises :class:`~repro.errors.StreamError` when the directory lacks
    the committed segments (``generate --keep-segments``) or the
    provenance metadata an extension needs.
    """
    if days < 1:
        raise StreamError(f"cannot advance by {days} day(s)")
    out = Path(corpus_dir)
    telem = telemetry.current()
    meta = read_platform_meta(out)
    scale, old_days_meta, seed = _provenance(meta, out)

    journal_path = out / JOURNAL_FILE
    if not journal_path.exists():
        raise StreamError(
            f"{out}: no checkpoint journal; only corpora written by "
            "`repro generate` can be advanced")
    journal = CheckpointJournal.load(journal_path)
    old_days = _committed_days(journal)
    if old_days == 0:
        raise StreamError(f"{out}: journal holds no committed day segments")
    seg_dir = out / SEGMENT_DIR
    for day in range(old_days):
        for plane in ("control", "data"):
            if not (seg_dir / _segment_name(plane, day)).exists():
                raise StreamError(
                    f"{out}: committed segment "
                    f"{_segment_name(plane, day)} is missing on disk; "
                    "generate with --keep-segments to allow advancing")
    remove_stale_tmp(out)
    remove_stale_tmp(seg_dir)

    # target day count: N beyond the last *finalized* duration.  After a
    # crash between the segment commits and finalize, the journal is
    # ahead of platform.json — re-running the same advance then resumes
    # the interrupted extension (writing nothing new) instead of piling
    # N further days on top of it.
    new_days = max(old_days_meta + days, old_days)
    report = AdvanceReport(out_dir=str(out), days_added=days,
                           day_count=new_days)
    if new_days > old_days:
        config = ScenarioConfig.paper(scale=scale, duration_days=new_days,
                                      seed=seed)
        with telem.span("advance.scenario", days=new_days):
            result = run_scenario(config)

        fence = _tail_fence(out, old_days)
        control_slices = result.control_day_slices()
        data_slices = result.data_day_slices()
        with telem.span("advance.segments", out=str(out),
                        new_days=new_days - old_days):
            for day in range(old_days, new_days):
                for plane, chunk in (("control", control_slices[day]),
                                     ("data", data_slices[day])):
                    chunk, dropped = _filter_chunk(plane, chunk, fence)
                    report.records_dropped += dropped
                    path = seg_dir / _segment_name(plane, day)
                    key = _segment_key(plane, day)
                    entry = journal.committed(key)
                    if entry is not None and path.exists() \
                            and file_sha256(path) == entry.get("sha256"):
                        report.segments_skipped += 1
                        continue
                    path = _write_segment_file(seg_dir, plane, day, chunk)
                    journal.commit(key, sha256=file_sha256(path),
                                   bytes=path.stat().st_size,
                                   records=len(chunk))
                    report.segments_written += 1
                    telem.counter("advance.segments", plane=plane).inc()

    with telem.span("advance.finalize"):
        _refinalize(out, seg_dir, journal, new_days, meta, report)
    telem.event("stream.advanced", out=str(out), days_added=days,
                day_count=new_days,
                segments_written=report.segments_written)
    if telem.enabled:
        report.telemetry = telem.metrics_snapshot()
    return report


def _filter_chunk(plane: str, chunk, fence: float) -> tuple:
    """Drop regenerated records that predate the committed tail."""
    if plane == "control":
        kept = [msg for msg in chunk if msg.time >= fence]
        return kept, len(chunk) - len(kept)
    keep = chunk["time"] >= fence
    return chunk[keep], int(len(chunk) - keep.sum())


def _existing_run_manifest(out: Path):
    """Carry the original generation's provenance record forward."""
    try:
        manifest = json.loads((out / "manifest.json").read_text())
    except (OSError, ValueError):
        return None
    run = manifest.get("run")
    return dict(run) if isinstance(run, dict) else None


def _refinalize(out: Path, seg_dir: Path, journal: CheckpointJournal,
                day_count: int, meta: dict, report: AdvanceReport) -> None:
    """Rebuild the corpus files and manifest from the full segment set."""
    control_messages = 0
    with atomic_writer(out / CONTROL_FILE, mode="wb") as fh:
        for day in range(day_count):
            data = (seg_dir / _segment_name("control", day)).read_bytes()
            control_messages += data.count(b"\n")
            fh.write(data)
    arrays = []
    for day in range(day_count):
        with np.load(seg_dir / _segment_name("data", day)) as archive:
            arrays.append(archive["packets"])
    packets = np.concatenate(arrays)
    sampling_rate = int(meta.get("sampling_rate", 10_000))
    with atomic_writer(out / DATA_FILE, mode="wb") as fh:
        np.savez_compressed(fh, packets=packets, sampling_rate=sampling_rate)
    # membership / PeeringDB / route server stay those of the original
    # generation — the regenerated longer scenario's platform may differ,
    # but the appended traffic was filtered against the committed prefix,
    # which was produced under the original platform
    new_meta = dict(meta)
    new_meta["duration_days"] = day_count
    with atomic_writer(out / META_FILE) as fh:
        fh.write(json.dumps(new_meta, indent=2))
    counts = {"control_messages": control_messages,
              "data_packets": int(len(packets))}
    run = _existing_run_manifest(out)
    write_manifest(out, counts=counts, run=run)
    report.control_messages = counts["control_messages"]
    report.data_packets = counts["data_packets"]
    # the corpus bytes just changed: re-derive the columnar sidecars so
    # their source binding matches the new checksums (same ordering as
    # generate — sidecars land before the finalize commit)
    from repro.columnar.store import derive_sidecars

    derive_sidecars(out, journal=journal)
    journal.commit(
        FINALIZE_KEY,
        control_messages=counts["control_messages"],
        data_packets=counts["data_packets"],
        control_sha256=file_sha256(out / CONTROL_FILE),
        data_sha256=file_sha256(out / DATA_FILE),
    )
