"""Installed routes, as held in RIBs and FIBs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.bgp.community import BLACKHOLE, Community
from repro.net.ip import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class Route:
    """A route as learned from a peer and possibly installed as best path.

    ``learned_at`` carries the control-plane timestamp of the announcement
    that created it so analyses can reason about route age.
    """

    prefix: IPv4Prefix
    next_hop: IPv4Address
    peer_asn: int
    as_path: Tuple[int, ...]
    communities: FrozenSet[Community] = field(default_factory=frozenset)
    learned_at: float = 0.0

    @property
    def origin_asn(self) -> int:
        return self.as_path[-1] if self.as_path else self.peer_asn

    @property
    def is_blackhole(self) -> bool:
        """Whether this is an RFC 7999 blackhole route."""
        return BLACKHOLE in self.communities

    def __str__(self) -> str:
        mark = " [BH]" if self.is_blackhole else ""
        return f"{self.prefix} via {self.next_hop} (AS{self.peer_asn}){mark}"
