"""BGP standard communities (RFC 1997) and the two families the study
depends on:

* the well-known BLACKHOLE community (RFC 7999, ``65535:666``) that marks a
  route as a remotely-triggered blackhole request, and
* route-server *redistribution control* communities, with which a member
  steers to which peers the route server re-announces its route — the
  mechanism behind "targeted blackholes" in §4.1 of the paper. The scheme is
  the one large European IXPs document:

  - ``0:<peer-as>``      — do NOT announce to ``<peer-as>``
  - ``<rs-as>:<peer-as>``— DO announce to ``<peer-as>``
  - ``0:<rs-as>``        — do not announce to anyone (then whitelist peers)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.errors import BGPError

_MAX_U16 = 0xFFFF


@dataclass(frozen=True, order=True)
class Community:
    """A standard 32-bit BGP community rendered as ``asn:value``."""

    asn: int
    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.asn <= _MAX_U16 or not 0 <= self.value <= _MAX_U16:
            raise BGPError(f"community halves must be u16: {self.asn}:{self.value}")

    @classmethod
    def parse(cls, text: str) -> "Community":
        """Parse ``asn:value`` notation."""
        left, sep, right = text.partition(":")
        if not sep:
            raise BGPError(f"not a community: {text!r}")
        try:
            return cls(int(left), int(right))
        except ValueError:
            raise BGPError(f"not a community: {text!r}") from None

    def __str__(self) -> str:
        return f"{self.asn}:{self.value}"


#: RFC 7999: request that the neighbor discards traffic to this prefix.
BLACKHOLE = Community(65535, 666)
#: RFC 1997 well-known communities, modelled for policy completeness.
NO_EXPORT = Community(65535, 65281)
NO_ADVERTISE = Community(65535, 65282)
#: RFC 8326 graceful shutdown marker.
GRACEFUL_SHUTDOWN = Community(65535, 0)


def do_not_announce_to(peer_asn: int) -> Community:
    """Redistribution control: hide the route from ``peer_asn``."""
    return Community(0, peer_asn)


def announce_to(route_server_asn: int, peer_asn: int) -> Community:
    """Redistribution control: explicitly announce the route to ``peer_asn``."""
    return Community(route_server_asn, peer_asn)


def suppress_all(route_server_asn: int) -> Community:
    """Redistribution control: announce to nobody unless whitelisted."""
    return Community(0, route_server_asn)


def redistribution_targets(
    communities: Iterable[Community],
    route_server_asn: int,
    all_peers: Iterable[int],
) -> FrozenSet[int]:
    """Resolve redistribution-control communities into the set of peer ASNs
    that should receive the route.

    Default (no control communities) is "announce to all". A blanket
    ``0:<rs-as>`` flips the default to "announce to none"; explicit
    ``<rs-as>:<peer>`` whitelists and ``0:<peer>`` blacklists individual
    peers, with the whitelist winning on a direct conflict (matching common
    route-server implementations which evaluate permits after denies).
    """
    peers = frozenset(all_peers)
    communities = list(communities)
    suppress = suppress_all(route_server_asn) in communities
    denied = {c.value for c in communities if c.asn == 0 and c.value != route_server_asn}
    allowed = {c.value for c in communities if c.asn == route_server_asn}
    if suppress:
        return frozenset(p for p in peers if p in allowed)
    return frozenset(p for p in peers if p not in denied or p in allowed)
