"""Routing Information Bases.

:class:`AdjRIBIn` stores, per (peer, prefix), the latest route learned from
that peer. :class:`LocRIB` runs best-path selection over the candidates per
prefix and answers longest-prefix-match lookups — it doubles as the FIB for
the switching fabric (the simulation needs no separate FIB representation).

Best-path selection implements the deciding steps that matter with
route-server-learned routes (all have equal local preference and no MED):
shortest AS path, then oldest route, then lowest peer ASN as the final
deterministic tie-break.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.bgp.route import Route
from repro.net.ip import IPv4Address, IPv4Prefix
from repro.net.radix import RadixTree


def best_path(candidates: list[Route]) -> Route:
    """Select the best route among candidates for one prefix."""
    return min(candidates, key=lambda r: (len(r.as_path), r.learned_at, r.peer_asn))


class AdjRIBIn:
    """Routes learned from peers, keyed by (peer ASN, prefix)."""

    def __init__(self) -> None:
        self._by_prefix: Dict[IPv4Prefix, Dict[int, Route]] = {}

    def add(self, route: Route) -> None:
        """Insert or replace the route from ``route.peer_asn``."""
        self._by_prefix.setdefault(route.prefix, {})[route.peer_asn] = route

    def remove(self, peer_asn: int, prefix: IPv4Prefix) -> bool:
        """Drop the route from ``peer_asn`` for ``prefix``; True if present."""
        peers = self._by_prefix.get(prefix)
        if peers is None or peer_asn not in peers:
            return False
        del peers[peer_asn]
        if not peers:
            del self._by_prefix[prefix]
        return True

    def candidates(self, prefix: IPv4Prefix) -> list[Route]:
        """All routes currently learned for ``prefix``."""
        return list(self._by_prefix.get(prefix, {}).values())

    def routes_from(self, peer_asn: int) -> Iterator[Route]:
        for peers in self._by_prefix.values():
            route = peers.get(peer_asn)
            if route is not None:
                yield route

    def prefixes(self) -> Iterator[IPv4Prefix]:
        return iter(self._by_prefix)

    def __len__(self) -> int:
        return sum(len(peers) for peers in self._by_prefix.values())


class LocRIB:
    """Best routes per prefix with longest-prefix-match lookup.

    Typically fed by re-running selection over an :class:`AdjRIBIn` after
    each change, via :meth:`reselect`.
    """

    def __init__(self) -> None:
        self._tree: RadixTree[Route] = RadixTree()

    def install(self, route: Route) -> None:
        self._tree.insert(route.prefix, route)

    def uninstall(self, prefix: IPv4Prefix) -> bool:
        return self._tree.remove(prefix)

    def reselect(self, adj_in: AdjRIBIn, prefix: IPv4Prefix) -> Optional[Route]:
        """Re-run best-path selection for one prefix against ``adj_in``.

        Installs the winner (or removes the prefix when no candidates are
        left) and returns the new best route, if any.
        """
        candidates = adj_in.candidates(prefix)
        if not candidates:
            self._tree.remove(prefix)
            return None
        winner = best_path(candidates)
        self._tree.insert(prefix, winner)
        return winner

    def lookup(self, address: IPv4Address | int) -> Optional[Route]:
        """Longest-prefix-match: the route that would forward ``address``."""
        hit = self._tree.lookup(address)
        return None if hit is None else hit[1]

    def get(self, prefix: IPv4Prefix) -> Optional[Route]:
        return self._tree.get(prefix)

    def routes(self) -> Iterator[Tuple[IPv4Prefix, Route]]:
        return self._tree.items()

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        return prefix in self._tree

    def __len__(self) -> int:
        return len(self._tree)
