"""BGP substrate: update messages, communities (including RFC 7999
BLACKHOLE and route-server redistribution control), RIBs with best-path
selection, import policies, and an IXP route server with per-peer views.

Only the UPDATE-level semantics the measurement study consumes are
modelled; session management (OPEN/KEEPALIVE, timers) is out of scope.
"""

from repro.bgp.community import (
    BLACKHOLE,
    GRACEFUL_SHUTDOWN,
    NO_ADVERTISE,
    NO_EXPORT,
    Community,
    announce_to,
    do_not_announce_to,
    suppress_all,
)
from repro.bgp.message import BGPUpdate, UpdateAction
from repro.bgp.route import Route
from repro.bgp.rib import AdjRIBIn, LocRIB
from repro.bgp.policy import (
    AcceptAllPolicy,
    BlackholeWhitelistPolicy,
    FullBlackholePolicy,
    ImportPolicy,
    MaxPrefixLengthPolicy,
    NoBlackholePolicy,
    PartialBlackholePolicy,
    PolicyDecision,
)
from repro.bgp.route_server import RouteServer, RouteServerPeer

__all__ = [
    "Community",
    "BLACKHOLE",
    "NO_EXPORT",
    "NO_ADVERTISE",
    "GRACEFUL_SHUTDOWN",
    "announce_to",
    "do_not_announce_to",
    "suppress_all",
    "BGPUpdate",
    "UpdateAction",
    "Route",
    "AdjRIBIn",
    "LocRIB",
    "ImportPolicy",
    "PolicyDecision",
    "AcceptAllPolicy",
    "MaxPrefixLengthPolicy",
    "NoBlackholePolicy",
    "BlackholeWhitelistPolicy",
    "FullBlackholePolicy",
    "PartialBlackholePolicy",
    "RouteServer",
    "RouteServerPeer",
]
