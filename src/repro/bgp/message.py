"""BGP UPDATE messages as the control-plane corpus records them.

A message is a flat, immutable record: who sent it, when, announce or
withdraw, which prefix, next hop, AS path and communities. This mirrors the
information the paper extracts from the route-server feed (§3.1): start/stop
time, triggering AS, redistribution targets, and origin AS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import FrozenSet, Optional, Tuple

from repro.bgp.community import BLACKHOLE, Community
from repro.errors import BGPError
from repro.net.ip import IPv4Address, IPv4Prefix


class UpdateAction(str, Enum):
    """Whether the UPDATE announces or withdraws the prefix."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True)
class BGPUpdate:
    """One UPDATE as seen at the route server.

    ``time`` is in simulation seconds on the *control-plane clock* (the
    scenario runner may skew it against the data plane to exercise the
    offset estimator). ``peer_asn`` is the member session the message
    arrived on; ``origin_asn`` the rightmost AS of the path (defaults to
    ``peer_asn`` for locally-originated routes).
    """

    time: float
    peer_asn: int
    action: UpdateAction
    prefix: IPv4Prefix
    next_hop: Optional[IPv4Address] = None
    as_path: Tuple[int, ...] = ()
    communities: FrozenSet[Community] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.peer_asn <= 0:
            raise BGPError(f"peer ASN must be positive: {self.peer_asn}")
        if self.action is UpdateAction.ANNOUNCE and self.next_hop is None:
            raise BGPError("announcements require a next hop")
        if not self.as_path:
            object.__setattr__(self, "as_path", (self.peer_asn,))

    @property
    def origin_asn(self) -> int:
        """The AS that originated the route (rightmost AS of the path)."""
        return self.as_path[-1]

    @property
    def is_blackhole(self) -> bool:
        """Whether the update carries the RFC 7999 BLACKHOLE community."""
        return BLACKHOLE in self.communities

    @property
    def is_announce(self) -> bool:
        return self.action is UpdateAction.ANNOUNCE

    @property
    def is_withdraw(self) -> bool:
        return self.action is UpdateAction.WITHDRAW

    def __str__(self) -> str:
        verb = "+" if self.is_announce else "-"
        mark = " [BH]" if self.is_blackhole else ""
        return f"t={self.time:.3f} AS{self.peer_asn} {verb}{self.prefix}{mark}"


def announce(
    time: float,
    peer_asn: int,
    prefix: IPv4Prefix,
    next_hop: IPv4Address,
    *,
    as_path: Tuple[int, ...] = (),
    communities: FrozenSet[Community] | frozenset = frozenset(),
) -> BGPUpdate:
    """Convenience constructor for an announcement."""
    return BGPUpdate(
        time=time,
        peer_asn=peer_asn,
        action=UpdateAction.ANNOUNCE,
        prefix=prefix,
        next_hop=next_hop,
        as_path=as_path,
        communities=frozenset(communities),
    )


def withdraw(time: float, peer_asn: int, prefix: IPv4Prefix) -> BGPUpdate:
    """Convenience constructor for a withdrawal."""
    return BGPUpdate(
        time=time,
        peer_asn=peer_asn,
        action=UpdateAction.WITHDRAW,
        prefix=prefix,
    )
