"""The IXP route server.

Members announce (or withdraw) routes — including RFC 7999 blackholes — to
the route server, which re-distributes them to other members. Redistribution
is controlled per route by the communities of
:mod:`repro.bgp.community`; each receiving member then runs its own import
policy before the route becomes a best-path candidate in its Loc-RIB.

The server keeps the full per-peer state the paper reasons about:

* the master view — every route currently announced at the server,
* per-peer Adj-RIB-In as filtered by redistribution control ("which peers
  can even *see* the blackhole", §4.1), and
* per-peer Loc-RIB after import policy ("which peers *accept* it", §4.2).

Every processed update is appended to :attr:`RouteServer.log`, which is the
raw control-plane corpus of the study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.community import redistribution_targets
from repro.bgp.message import BGPUpdate, UpdateAction
from repro.bgp.policy import AcceptAllPolicy, ImportPolicy
from repro.bgp.rib import AdjRIBIn, LocRIB, best_path
from repro.bgp.route import Route
from repro.errors import BGPError
from repro.net.ip import IPv4Prefix
from repro import telemetry

#: Default route-server ASN (from the 16-bit private-use range).
DEFAULT_ROUTE_SERVER_ASN = 64500


@dataclass
class RouteServerPeer:
    """One member BGP session at the route server."""

    asn: int
    policy: ImportPolicy = field(default_factory=AcceptAllPolicy)
    #: routes the route server redistributed to this peer (pre-policy)
    adj_rib_in: AdjRIBIn = field(default_factory=AdjRIBIn)
    #: routes the peer accepted and selected (post-policy); acts as its FIB
    loc_rib: LocRIB = field(default_factory=LocRIB)

    def receive(self, route: Route) -> bool:
        """Offer a redistributed route to this peer. Returns acceptance."""
        accepted = self.policy.accepts(route)
        self.adj_rib_in.add(route)
        # Re-select among *accepted* candidates only; the new route may have
        # replaced a previously accepted one from the same announcer.
        best = self._best_accepted(route.prefix)
        if best is None:
            self.loc_rib.uninstall(route.prefix)
        else:
            self.loc_rib.install(best)
        return accepted

    def revoke(self, announcer_asn: int, prefix: IPv4Prefix) -> None:
        """Withdraw the route ``announcer_asn`` had announced for ``prefix``."""
        self.adj_rib_in.remove(announcer_asn, prefix)
        best = self._best_accepted(prefix)
        if best is None:
            self.loc_rib.uninstall(prefix)
        else:
            self.loc_rib.install(best)

    def _best_accepted(self, prefix: IPv4Prefix) -> Optional[Route]:
        accepted = [r for r in self.adj_rib_in.candidates(prefix) if self.policy.accepts(r)]
        if not accepted:
            return None
        return best_path(accepted)

    def visible_blackholes(self) -> Set[IPv4Prefix]:
        """Blackhole prefixes this peer can currently see (pre-policy)."""
        return {p for p in self.adj_rib_in.prefixes()
                if any(r.is_blackhole for r in self.adj_rib_in.candidates(p))}

    def accepted_blackholes(self) -> Set[IPv4Prefix]:
        """Blackhole prefixes installed in this peer's Loc-RIB."""
        return {p for p, r in self.loc_rib.routes() if r.is_blackhole}


class RouteServer:
    """Multi-lateral peering: one route server, many member sessions."""

    def __init__(self, asn: int = DEFAULT_ROUTE_SERVER_ASN):
        self.asn = asn
        self._peers: Dict[int, RouteServerPeer] = {}
        #: (announcer ASN, prefix) -> (route, peers currently holding it)
        self._announced: Dict[Tuple[int, IPv4Prefix], Tuple[Route, Set[int]]] = {}
        #: per prefix: announcers with a standing announcement (index)
        self._announcers_by_prefix: Dict[IPv4Prefix, Set[int]] = {}
        #: every update processed, in arrival order — the control-plane corpus
        self.log: List[BGPUpdate] = []
        #: optional hooks fired after each processed update
        self._listeners: List[Callable[[BGPUpdate], None]] = []

    # -- membership ---------------------------------------------------------

    def add_peer(self, asn: int, policy: Optional[ImportPolicy] = None) -> RouteServerPeer:
        """Register a member session; ASNs must be unique.

        Like a real route server on session establishment, the new peer
        immediately receives every currently announced route it is a
        redistribution target of.
        """
        if asn in self._peers:
            raise BGPError(f"peer AS{asn} already registered")
        peer = RouteServerPeer(asn=asn, policy=policy or AcceptAllPolicy())
        self._peers[asn] = peer
        for (announcer, _prefix), (route, targets) in self._announced.items():
            if announcer == asn:
                continue
            eligible = redistribution_targets(
                route.communities, self.asn, (asn,)
            )
            if asn in eligible:
                peer.receive(route)
                targets.add(asn)
        return peer

    def remove_peer(self, asn: int) -> None:
        """Deregister a session and flush its announcements everywhere."""
        if asn not in self._peers:
            raise BGPError(f"peer AS{asn} not registered")
        for (announcer, prefix) in [k for k in self._announced if k[0] == asn]:
            self._retract(announcer, prefix)
        del self._peers[asn]

    def peer(self, asn: int) -> RouteServerPeer:
        try:
            return self._peers[asn]
        except KeyError:
            raise BGPError(f"peer AS{asn} not registered") from None

    @property
    def peer_asns(self) -> List[int]:
        return sorted(self._peers)

    def __len__(self) -> int:
        return len(self._peers)

    def subscribe(self, listener: Callable[[BGPUpdate], None]) -> None:
        """Register a hook invoked after each processed update."""
        self._listeners.append(listener)

    # -- update processing ---------------------------------------------------

    def process(self, update: BGPUpdate) -> None:
        """Apply one UPDATE from a member session and redistribute it."""
        if update.peer_asn not in self._peers:
            raise BGPError(f"update from unknown peer AS{update.peer_asn}")
        if update.action is UpdateAction.ANNOUNCE:
            self._apply_announce(update)
        else:
            self._retract(update.peer_asn, update.prefix)
        self.log.append(update)
        telemetry.current().counter(
            "route_server.updates", action=update.action.value).inc()
        for listener in self._listeners:
            listener(update)

    def _apply_announce(self, update: BGPUpdate) -> None:
        assert update.next_hop is not None
        route = Route(
            prefix=update.prefix,
            next_hop=update.next_hop,
            peer_asn=update.peer_asn,
            as_path=update.as_path,
            communities=update.communities,
            learned_at=update.time,
        )
        targets = redistribution_targets(
            update.communities, self.asn, self._peers.keys()
        ) - {update.peer_asn}
        key = (update.peer_asn, update.prefix)
        _, previous_targets = self._announced.get(key, (None, set()))
        # Peers no longer targeted get an implicit withdraw.
        for asn in previous_targets - targets:
            self._peers[asn].revoke(update.peer_asn, update.prefix)
        for asn in targets:
            self._peers[asn].receive(route)
        self._announced[key] = (route, set(targets))
        self._announcers_by_prefix.setdefault(update.prefix, set()).add(update.peer_asn)

    def _retract(self, announcer_asn: int, prefix: IPv4Prefix) -> None:
        key = (announcer_asn, prefix)
        entry = self._announced.pop(key, None)
        if entry is None:
            return  # withdrawing something never announced is a no-op
        announcers = self._announcers_by_prefix.get(prefix)
        if announcers is not None:
            announcers.discard(announcer_asn)
            if not announcers:
                del self._announcers_by_prefix[prefix]
        _, targets = entry
        for asn in targets:
            if asn in self._peers:
                self._peers[asn].revoke(announcer_asn, prefix)

    # -- views ----------------------------------------------------------------

    def announced_routes(self) -> Iterable[Route]:
        """All routes currently announced at the server (the master view)."""
        return (route for route, _ in self._announced.values())

    def announced_blackholes(self) -> Set[IPv4Prefix]:
        """Blackhole prefixes currently active at the server."""
        return {r.prefix for r in self.announced_routes() if r.is_blackhole}

    def peers_with_route(self, prefix: IPv4Prefix) -> Set[int]:
        """Peers the route server currently redistributes ``prefix`` to
        (union over all announcers of the prefix)."""
        out: Set[int] = set()
        for announcer in self._announcers_by_prefix.get(prefix, ()):
            out |= self._announced[(announcer, prefix)][1]
        return out

    def blackhole_visibility(self) -> Dict[int, Set[IPv4Prefix]]:
        """Per-peer sets of currently *visible* blackhole prefixes."""
        return {asn: peer.visible_blackholes() for asn, peer in self._peers.items()}
