"""Import policies of IXP members.

The paper's central acceptance finding (§4.2, Figs 5–7) is driven entirely
by what member routers do with blackhole routes longer than /24:

* the factory-default configuration rejects any prefix longer than /24,
  blackhole or not — those members keep *forwarding* to the victim;
* careful operators whitelist /32 blackhole routes but usually forget the
  /25–/31 lengths;
* a few configure blackhole acceptance for every length;
* and some accept host routes only for parts of their sessions or prefix
  space, producing the "inconsistent" middle band of Fig. 7.

Each behaviour is a policy class here; scenarios assign a mix across the
membership. Policies are deterministic functions of (member, route) so a
re-run of a scenario reproduces identical drop shares.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from enum import Enum

from repro.bgp.route import Route
from repro.errors import PolicyError


class PolicyDecision(str, Enum):
    ACCEPT = "accept"
    REJECT = "reject"

    def __bool__(self) -> bool:
        return self is PolicyDecision.ACCEPT


class ImportPolicy(ABC):
    """Decides whether a route learned from the route server is installed."""

    #: short identifier used in reports and scenario configs
    name: str = "abstract"

    @abstractmethod
    def evaluate(self, route: Route) -> PolicyDecision:
        """ACCEPT to install the route as a best-path candidate."""

    def accepts(self, route: Route) -> bool:
        return bool(self.evaluate(route))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class AcceptAllPolicy(ImportPolicy):
    """Accepts every route regardless of length or communities."""

    name = "accept-all"

    def evaluate(self, route: Route) -> PolicyDecision:
        return PolicyDecision.ACCEPT


class MaxPrefixLengthPolicy(ImportPolicy):
    """The factory-default filter: reject prefixes longer than ``max_length``
    (default /24), *including* blackhole announcements. Members running this
    policy forward all traffic a /32 RTBH asked them to drop."""

    name = "default-le24"

    def __init__(self, max_length: int = 24):
        if not 0 <= max_length <= 32:
            raise PolicyError(f"max_length out of range: {max_length}")
        self.max_length = max_length

    def evaluate(self, route: Route) -> PolicyDecision:
        if route.prefix.length > self.max_length:
            return PolicyDecision.REJECT
        return PolicyDecision.ACCEPT


class BlackholeWhitelistPolicy(ImportPolicy):
    """The common "fixed" configuration: normal routes up to /24, plus an
    explicit whitelist of blackhole prefix lengths (just ``{32}`` by
    default, reproducing the operators who whitelist host routes but leave
    /25–/31 rejected)."""

    name = "bh-whitelist-32"

    def __init__(self, whitelisted_lengths: frozenset[int] | set[int] = frozenset({32}),
                 max_length: int = 24):
        self.whitelisted_lengths = frozenset(whitelisted_lengths)
        self.max_length = max_length
        bad = [l for l in self.whitelisted_lengths if not 0 <= l <= 32]
        if bad:
            raise PolicyError(f"whitelisted lengths out of range: {bad}")

    def evaluate(self, route: Route) -> PolicyDecision:
        if route.prefix.length <= self.max_length:
            return PolicyDecision.ACCEPT
        if route.is_blackhole and route.prefix.length in self.whitelisted_lengths:
            return PolicyDecision.ACCEPT
        return PolicyDecision.REJECT


class FullBlackholePolicy(ImportPolicy):
    """Accepts blackhole routes of any length; normal routes up to /24."""

    name = "bh-any-length"

    def __init__(self, max_length: int = 24):
        self.max_length = max_length

    def evaluate(self, route: Route) -> PolicyDecision:
        if route.is_blackhole:
            return PolicyDecision.ACCEPT
        if route.prefix.length <= self.max_length:
            return PolicyDecision.ACCEPT
        return PolicyDecision.REJECT


class NoBlackholePolicy(ImportPolicy):
    """Rejects every route carrying the BLACKHOLE community (and any prefix
    longer than /24). A small set of members runs such filters — they are
    why even /24 blackholes never reach a 100% drop rate in Fig. 6."""

    name = "no-blackhole"

    def __init__(self, max_length: int = 24):
        self.max_length = max_length

    def evaluate(self, route: Route) -> PolicyDecision:
        if route.is_blackhole or route.prefix.length > self.max_length:
            return PolicyDecision.REJECT
        return PolicyDecision.ACCEPT


class PartialBlackholePolicy(ImportPolicy):
    """An *inconsistent* configuration: blackhole host routes are accepted
    for only a fraction of prefixes.

    Real causes are per-session filters, partial router fleets, or stale
    prefix lists; the net effect seen from the IXP is that the member drops
    traffic to some blackholed hosts while forwarding to others. Acceptance
    is decided by hashing (salt, prefix), so it is deterministic per prefix
    yet uncorrelated across members.
    """

    name = "bh-partial"

    def __init__(self, accept_fraction: float, salt: int, max_length: int = 24):
        if not 0.0 <= accept_fraction <= 1.0:
            raise PolicyError(f"accept_fraction must be in [0,1]: {accept_fraction}")
        self.accept_fraction = accept_fraction
        self.salt = salt
        self.max_length = max_length

    def evaluate(self, route: Route) -> PolicyDecision:
        if route.prefix.length <= self.max_length:
            return PolicyDecision.ACCEPT
        if not route.is_blackhole:
            return PolicyDecision.REJECT
        digest = hashlib.blake2b(
            f"{self.salt}/{route.prefix}".encode(), digest_size=8
        ).digest()
        draw = int.from_bytes(digest, "big") / 2**64
        if draw < self.accept_fraction:
            return PolicyDecision.ACCEPT
        return PolicyDecision.REJECT
