"""repro.runtime — the crash-safe execution layer.

Four pieces make long ``generate``/``analyze`` jobs survivable:

* :mod:`repro.runtime.atomic` — temp-file + fsync + rename writes, so no
  artifact is ever observed half-written;
* :mod:`repro.runtime.checkpoint` — the append-only, fsynced journal of
  committed steps that ``--resume`` replays;
* :mod:`repro.runtime.generate` — day-segmented, checkpointed corpus
  generation (byte-identical after a mid-run kill + resume);
* :mod:`repro.runtime.supervisor` — per-analysis child processes with
  wall-clock timeouts and bounded, jittered retries
  (:mod:`repro.runtime.retry`), so a hung or OOM-killed analysis becomes
  a ``failed`` StudyReport entry instead of a dead run.

:mod:`repro.runtime.chaos` provides the environment-driven kill/hang
hooks the chaos tests (and the CI chaos job) drive.

The corpus-facing submodules (:mod:`~repro.runtime.generate`,
:mod:`~repro.runtime.supervisor`) are loaded lazily via PEP 562 so that
low-level modules (``repro.corpus.*``) can import
:mod:`repro.runtime.atomic` without creating an import cycle.
"""

from repro.runtime.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    atomic_writer,
    fsync_dir,
    remove_stale_tmp,
)
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.retry import RetryPolicy, is_retryable_exception

#: names resolved lazily: attribute -> (module, attribute)
_LAZY = {
    "GenerateReport": ("repro.runtime.generate", "GenerateReport"),
    "JOURNAL_FILE": ("repro.runtime.generate", "JOURNAL_FILE"),
    "SEGMENT_DIR": ("repro.runtime.generate", "SEGMENT_DIR"),
    "checkpointed_generate": ("repro.runtime.generate",
                              "checkpointed_generate"),
    "SupervisorPolicy": ("repro.runtime.supervisor", "SupervisorPolicy"),
    "run_supervised": ("repro.runtime.supervisor", "run_supervised"),
}

__all__ = [
    "CheckpointJournal",
    "GenerateReport",
    "JOURNAL_FILE",
    "RetryPolicy",
    "SEGMENT_DIR",
    "SupervisorPolicy",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_writer",
    "checkpointed_generate",
    "fsync_dir",
    "is_retryable_exception",
    "remove_stale_tmp",
    "run_supervised",
]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
