"""Atomic, checkpointed corpus generation.

``repro generate`` routes through :func:`checkpointed_generate`: the
scenario runs in memory exactly as before (it is deterministic in the
seed), but the corpus is persisted in *day-sized segments*, each written
atomically (temp file + fsync + rename) and committed to a
:class:`~repro.runtime.checkpoint.CheckpointJournal` with its SHA-256.
The final corpus files are then assembled *from the committed segments*
and written atomically too, so ``manifest.json`` never describes a
half-written directory.

Resume semantics (``repro generate --resume``):

* the journal header must match the requested command/seed/config hash,
  otherwise :class:`~repro.errors.CheckpointError`;
* a run whose ``finalize`` step is journaled returns immediately;
* otherwise the scenario is re-executed (cheap relative to I/O at
  production scale, and byte-deterministic), already-committed segments
  whose on-disk checksum still matches are skipped, and the remaining
  segments plus finalize are redone.

Because segments are contiguous time slices of the sorted corpora,
concatenating them reproduces exactly the bytes an uninterrupted run
writes — the chaos tests assert the checksums match.

With ``jobs > 1`` the day segments are fanned across forked workers.
Workers only *write* (atomically, under unique temp names); every
journal commit stays in the parent — a single journal writer keeps the
append-only file coherent and keeps the chaos hook (which fires inside
``commit``) meaningful.  Segment bytes are deterministic regardless of
worker count, and ``--resume`` semantics are unchanged: a parallel run
can resume a serial one and vice versa.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.corpus.control import update_to_json
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    file_sha256,
    write_manifest,
)
from repro.errors import CheckpointError
from repro.runtime.atomic import atomic_writer, remove_stale_tmp
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.supervisor import _fork_context
from repro.scenario.config import ScenarioConfig
from repro.scenario.runner import ScenarioResult, run_scenario

#: journal + scratch locations inside the output corpus directory; both
#: are dot-prefixed so manifests exclude them (see ``build_manifest``)
JOURNAL_FILE = ".checkpoint.jsonl"
SEGMENT_DIR = ".segments"

FINALIZE_KEY = "finalize"


@dataclass
class GenerateReport:
    """What one (possibly resumed) checkpointed generation did."""

    out_dir: str
    control_messages: int = 0
    data_packets: int = 0
    segments_total: int = 0
    segments_written: int = 0
    segments_skipped: int = 0
    resumed: bool = False
    already_complete: bool = False
    manifest_path: Optional[str] = None

    def format(self) -> str:
        if self.already_complete:
            return (f"{self.out_dir}: already complete "
                    f"({self.segments_total} segments journaled); "
                    "nothing to do")
        verb = "resumed" if self.resumed else "wrote"
        return (f"{verb} {self.control_messages} control messages, "
                f"{self.data_packets} sampled packets in "
                f"{self.segments_total} day segments "
                f"({self.segments_skipped} already committed), "
                f"platform metadata, and {MANIFEST_FILE} to {self.out_dir}/")


def _segment_key(plane: str, day: int) -> str:
    return f"segment:{plane}:{day:03d}"


def _segment_name(plane: str, day: int) -> str:
    suffix = "jsonl" if plane == "control" else "npz"
    return f"{plane}-{day:03d}.{suffix}"


def _header(config: ScenarioConfig) -> dict:
    return {
        "command": "generate",
        "seed": config.seed,
        "config_hash": telemetry.config_hash(config),
    }


def checkpointed_generate(
    config: ScenarioConfig,
    out_dir: str | Path,
    *,
    resume: bool = False,
    run: Optional[dict] = None,
    extra_meta: Optional[dict] = None,
    jobs: int = 1,
    keep_segments: bool = False,
) -> GenerateReport:
    """Generate (or finish generating) a corpus directory crash-safely.

    ``run`` is the telemetry run manifest embedded into
    ``manifest.json``; ``extra_meta`` is merged into ``platform.json``
    (the CLI records scale/days/seed there).  ``jobs`` fans the segment
    writes across that many forked workers (0 = all CPUs); the output
    bytes are identical for every value.

    ``keep_segments=True`` retains the per-day ``.segments/`` files after
    finalize instead of deleting them — required for streaming consumers
    (``repro watch``) and incremental extension (``repro advance``),
    which treat the committed segments plus the checkpoint journal as an
    append-only commit log.
    """
    from time import perf_counter

    t0 = perf_counter()
    telem = telemetry.current()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    seg_dir = out / SEGMENT_DIR
    remove_stale_tmp(out)
    remove_stale_tmp(seg_dir)

    header = _header(config)
    journal = CheckpointJournal.load(out / JOURNAL_FILE)
    report = GenerateReport(out_dir=str(out), resumed=resume)
    if resume and journal.header is not None:
        journal.require_header(header)
        finalized = journal.committed(FINALIZE_KEY)
        if finalized is not None and (out / MANIFEST_FILE).exists():
            report.already_complete = True
            # count only day segments — the journal also carries the
            # finalize and columnar:* commits
            report.segments_total = sum(
                1 for key in journal.keys() if key.startswith("segment:"))
            report.control_messages = finalized.get("control_messages", 0)
            report.data_packets = finalized.get("data_packets", 0)
            report.manifest_path = str(out / MANIFEST_FILE)
            return report
    else:
        # fresh run: truncate any previous journal and scratch segments
        if seg_dir.exists():
            shutil.rmtree(seg_dir)
        journal.start(header)
        report.resumed = False
    seg_dir.mkdir(exist_ok=True)

    result = run_scenario(config)

    with telem.span("generate.write", out=str(out)):
        with telem.span("generate.segments", days=result.day_count,
                        jobs=jobs):
            segments = _write_segments(result, seg_dir, journal, report,
                                       jobs=jobs)
        if run is not None:
            # stamp the elapsed wall time into the embedded provenance
            # record before it is checksummed into the manifest
            run = dict(run)
            run["wall_seconds"] = perf_counter() - t0
        with telem.span("generate.finalize"):
            _finalize(result, out, seg_dir, segments, journal, report,
                      run=run, extra_meta=extra_meta)
    if not keep_segments:
        shutil.rmtree(seg_dir, ignore_errors=True)
    return report


def _write_segments(result: ScenarioResult, seg_dir: Path,
                    journal: CheckpointJournal,
                    report: GenerateReport,
                    jobs: int = 1) -> Dict[str, List[Path]]:
    """Write every day slice of both corpora, skipping committed ones."""
    telem = telemetry.current()
    paths: Dict[str, List[Path]] = {"control": [], "data": []}
    pending: List[tuple] = []
    control_slices = result.control_day_slices()
    data_slices = result.data_day_slices()
    for plane, slices in (("control", control_slices), ("data", data_slices)):
        for day, chunk in enumerate(slices):
            path = seg_dir / _segment_name(plane, day)
            paths[plane].append(path)
            report.segments_total += 1
            entry = journal.committed(_segment_key(plane, day))
            if entry is not None and path.exists() \
                    and file_sha256(path) == entry.get("sha256"):
                report.segments_skipped += 1
                telem.counter("runtime.segments", plane=plane,
                              outcome="skipped").inc()
                continue
            pending.append((plane, day, chunk))

    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs > 1 and len(pending) > 1:
        ctx = _fork_context()
        if ctx is not None:
            _write_pending_parallel(pending, seg_dir, journal, report,
                                    min(jobs, len(pending)), ctx, telem)
            return paths

    for plane, day, chunk in pending:
        path = _write_segment_file(seg_dir, plane, day, chunk)
        journal.commit(_segment_key(plane, day),
                       sha256=file_sha256(path),
                       bytes=path.stat().st_size,
                       records=len(chunk))
        report.segments_written += 1
        telem.counter("runtime.segments", plane=plane,
                      outcome="written").inc()
    return paths


def _write_segment_file(seg_dir: Path, plane: str, day: int, chunk) -> Path:
    """Atomically write one day segment; identical bytes on every path."""
    path = seg_dir / _segment_name(plane, day)
    if plane == "control":
        with atomic_writer(path) as fh:
            for msg in chunk:
                fh.write(json.dumps(update_to_json(msg)) + "\n")
    else:
        with atomic_writer(path, mode="wb") as fh:
            np.savez_compressed(fh, packets=chunk)
    return path


def _segment_worker(conn, tasks, seg_dir: Path) -> None:
    """Child: write a shard of segments, reporting each over the pipe.

    Workers never touch the journal — the parent is the single journal
    writer.  Temp names from ``atomic_writer`` are ``mkstemp``-unique, so
    concurrent workers (or an orphan surviving a killed parent) cannot
    collide; only the atomic rename publishes a segment.
    """
    try:
        for plane, day, chunk in tasks:
            path = _write_segment_file(seg_dir, plane, day, chunk)
            conn.send({"key": _segment_key(plane, day), "plane": plane,
                       "sha256": file_sha256(path),
                       "bytes": path.stat().st_size,
                       "records": len(chunk)})
    finally:
        conn.close()


def _write_pending_parallel(pending, seg_dir: Path,
                            journal: CheckpointJournal,
                            report: GenerateReport, jobs: int, ctx,
                            telem) -> None:
    """Fan pending segments round-robin across ``jobs`` forked workers."""
    conns = {}
    procs = []
    for i in range(jobs):
        shard = pending[i::jobs]
        if not shard:
            continue
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(target=_segment_worker,
                           args=(child_conn, shard, seg_dir), daemon=True)
        proc.start()
        child_conn.close()
        conns[parent_conn] = proc
        procs.append(proc)
    telem.gauge("runtime.segment_workers").set(len(procs))
    try:
        while conns:
            for conn in _wait_connections(list(conns)):
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    proc = conns.pop(conn)
                    conn.close()
                    proc.join()
                    if proc.exitcode:
                        raise CheckpointError(
                            "segment worker died with exit code "
                            f"{proc.exitcode}; re-run with --resume")
                    continue
                journal.commit(msg["key"], sha256=msg["sha256"],
                               bytes=msg["bytes"], records=msg["records"])
                report.segments_written += 1
                telem.counter("runtime.segments", plane=msg["plane"],
                              outcome="written").inc()
    finally:
        for proc in procs:
            if proc.is_alive():
                proc.kill()
            proc.join()
        telem.gauge("runtime.segment_workers").set(0)


def _finalize(result: ScenarioResult, out: Path, seg_dir: Path,
              segments: Dict[str, List[Path]], journal: CheckpointJournal,
              report: GenerateReport, *, run: Optional[dict],
              extra_meta: Optional[dict]) -> None:
    """Assemble the final corpus files from the committed segments."""
    # control.jsonl: byte-concatenation of the day segments
    with atomic_writer(out / CONTROL_FILE, mode="wb") as fh:
        for seg in segments["control"]:
            fh.write(seg.read_bytes())
    # data.npz: one packed record array from the day slices
    arrays = [np.load(seg)["packets"] for seg in segments["data"]]
    packets = np.concatenate(arrays)
    with atomic_writer(out / DATA_FILE, mode="wb") as fh:
        np.savez_compressed(fh, packets=packets,
                            sampling_rate=result.data.sampling_rate)
    meta = _platform_meta(result)
    meta.update(extra_meta or {})
    with atomic_writer(out / META_FILE) as fh:
        fh.write(json.dumps(meta, indent=2))

    counts = {"control_messages": len(result.control),
              "data_packets": len(result.data)}
    manifest_path = write_manifest(out, counts=counts, run=run)
    report.control_messages = counts["control_messages"]
    report.data_packets = counts["data_packets"]
    report.manifest_path = str(manifest_path)
    control_sha256 = file_sha256(out / CONTROL_FILE)
    data_sha256 = file_sha256(out / DATA_FILE)
    # columnar sidecars ride along with every generate: written before
    # the finalize commit so a resumed run re-derives them too, bound to
    # the exact corpus checksums the finalize record carries
    from repro.columnar.store import write_sidecars

    write_sidecars(out, result.control, result.data,
                   control_sha256=control_sha256, data_sha256=data_sha256,
                   journal=journal)
    journal.commit(
        FINALIZE_KEY,
        control_messages=counts["control_messages"],
        data_packets=counts["data_packets"],
        control_sha256=control_sha256,
        data_sha256=data_sha256,
    )


def _platform_meta(result: ScenarioResult) -> dict:
    """The ``platform.json`` sidecar the analysis pipeline needs."""
    return {
        "peer_asns": result.ixp.member_asns,
        "route_server_asn": result.ixp.route_server.asn,
        "sampling_rate": result.data.sampling_rate,
        "peeringdb": [
            {"asn": r.asn, "name": r.name,
             "org_type": r.org_type.value, "scope": r.scope}
            for r in result.ixp.peeringdb
        ],
    }


def verify_resumable(out_dir: str | Path, config: ScenarioConfig) -> None:
    """Raise :class:`CheckpointError` unless ``out_dir`` holds a journal
    this configuration can resume (used by the CLI for early feedback)."""
    journal = CheckpointJournal.load(Path(out_dir) / JOURNAL_FILE)
    if journal.header is None:
        raise CheckpointError(
            f"{out_dir}: no checkpoint journal; run without --resume first")
    journal.require_header(_header(config))
