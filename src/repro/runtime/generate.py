"""Atomic, checkpointed corpus generation.

``repro generate`` routes through :func:`checkpointed_generate`: the
scenario runs in memory exactly as before (it is deterministic in the
seed), but the corpus is persisted in *day-sized segments*, each written
atomically (temp file + fsync + rename) and committed to a
:class:`~repro.runtime.checkpoint.CheckpointJournal` with its SHA-256.
The final corpus files are then assembled *from the committed segments*
and written atomically too, so ``manifest.json`` never describes a
half-written directory.

Resume semantics (``repro generate --resume``):

* the journal header must match the requested command/seed/config hash,
  otherwise :class:`~repro.errors.CheckpointError`;
* a run whose ``finalize`` step is journaled returns immediately;
* otherwise the scenario is re-executed (cheap relative to I/O at
  production scale, and byte-deterministic), already-committed segments
  whose on-disk checksum still matches are skipped, and the remaining
  segments plus finalize are redone.

Because segments are contiguous time slices of the sorted corpora,
concatenating them reproduces exactly the bytes an uninterrupted run
writes — the chaos tests assert the checksums match.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import telemetry
from repro.corpus.control import update_to_json
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    file_sha256,
    write_manifest,
)
from repro.errors import CheckpointError
from repro.runtime.atomic import atomic_writer, remove_stale_tmp
from repro.runtime.checkpoint import CheckpointJournal
from repro.scenario.config import ScenarioConfig
from repro.scenario.runner import ScenarioResult, run_scenario

#: journal + scratch locations inside the output corpus directory; both
#: are dot-prefixed so manifests exclude them (see ``build_manifest``)
JOURNAL_FILE = ".checkpoint.jsonl"
SEGMENT_DIR = ".segments"

FINALIZE_KEY = "finalize"


@dataclass
class GenerateReport:
    """What one (possibly resumed) checkpointed generation did."""

    out_dir: str
    control_messages: int = 0
    data_packets: int = 0
    segments_total: int = 0
    segments_written: int = 0
    segments_skipped: int = 0
    resumed: bool = False
    already_complete: bool = False
    manifest_path: Optional[str] = None

    def format(self) -> str:
        if self.already_complete:
            return (f"{self.out_dir}: already complete "
                    f"({self.segments_total} segments journaled); "
                    "nothing to do")
        verb = "resumed" if self.resumed else "wrote"
        return (f"{verb} {self.control_messages} control messages, "
                f"{self.data_packets} sampled packets in "
                f"{self.segments_total} day segments "
                f"({self.segments_skipped} already committed), "
                f"platform metadata, and {MANIFEST_FILE} to {self.out_dir}/")


def _segment_key(plane: str, day: int) -> str:
    return f"segment:{plane}:{day:03d}"


def _segment_name(plane: str, day: int) -> str:
    suffix = "jsonl" if plane == "control" else "npz"
    return f"{plane}-{day:03d}.{suffix}"


def _header(config: ScenarioConfig) -> dict:
    return {
        "command": "generate",
        "seed": config.seed,
        "config_hash": telemetry.config_hash(config),
    }


def checkpointed_generate(
    config: ScenarioConfig,
    out_dir: str | Path,
    *,
    resume: bool = False,
    run: Optional[dict] = None,
    extra_meta: Optional[dict] = None,
) -> GenerateReport:
    """Generate (or finish generating) a corpus directory crash-safely.

    ``run`` is the telemetry run manifest embedded into
    ``manifest.json``; ``extra_meta`` is merged into ``platform.json``
    (the CLI records scale/days/seed there).
    """
    from time import perf_counter

    t0 = perf_counter()
    telem = telemetry.current()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    seg_dir = out / SEGMENT_DIR
    remove_stale_tmp(out)
    remove_stale_tmp(seg_dir)

    header = _header(config)
    journal = CheckpointJournal.load(out / JOURNAL_FILE)
    report = GenerateReport(out_dir=str(out), resumed=resume)
    if resume and journal.header is not None:
        journal.require_header(header)
        finalized = journal.committed(FINALIZE_KEY)
        if finalized is not None and (out / MANIFEST_FILE).exists():
            report.already_complete = True
            report.segments_total = max(0, len(journal) - 1)
            report.control_messages = finalized.get("control_messages", 0)
            report.data_packets = finalized.get("data_packets", 0)
            report.manifest_path = str(out / MANIFEST_FILE)
            return report
    else:
        # fresh run: truncate any previous journal and scratch segments
        if seg_dir.exists():
            shutil.rmtree(seg_dir)
        journal.start(header)
        report.resumed = False
    seg_dir.mkdir(exist_ok=True)

    result = run_scenario(config)

    with telem.span("generate.write", out=str(out)):
        with telem.span("generate.segments", days=result.day_count):
            segments = _write_segments(result, seg_dir, journal, report)
        if run is not None:
            # stamp the elapsed wall time into the embedded provenance
            # record before it is checksummed into the manifest
            run = dict(run)
            run["wall_seconds"] = perf_counter() - t0
        with telem.span("generate.finalize"):
            _finalize(result, out, seg_dir, segments, journal, report,
                      run=run, extra_meta=extra_meta)
    shutil.rmtree(seg_dir, ignore_errors=True)
    return report


def _write_segments(result: ScenarioResult, seg_dir: Path,
                    journal: CheckpointJournal,
                    report: GenerateReport) -> Dict[str, List[Path]]:
    """Write every day slice of both corpora, skipping committed ones."""
    telem = telemetry.current()
    paths: Dict[str, List[Path]] = {"control": [], "data": []}
    control_slices = result.control_day_slices()
    data_slices = result.data_day_slices()
    for plane, slices in (("control", control_slices), ("data", data_slices)):
        for day, chunk in enumerate(slices):
            path = seg_dir / _segment_name(plane, day)
            paths[plane].append(path)
            report.segments_total += 1
            entry = journal.committed(_segment_key(plane, day))
            if entry is not None and path.exists() \
                    and file_sha256(path) == entry.get("sha256"):
                report.segments_skipped += 1
                telem.counter("runtime.segments", plane=plane,
                              outcome="skipped").inc()
                continue
            if plane == "control":
                with atomic_writer(path) as fh:
                    for msg in chunk:
                        fh.write(json.dumps(update_to_json(msg)) + "\n")
            else:
                with atomic_writer(path, mode="wb") as fh:
                    np.savez_compressed(fh, packets=chunk)
            journal.commit(_segment_key(plane, day),
                           sha256=file_sha256(path),
                           bytes=path.stat().st_size,
                           records=len(chunk))
            report.segments_written += 1
            telem.counter("runtime.segments", plane=plane,
                          outcome="written").inc()
    return paths


def _finalize(result: ScenarioResult, out: Path, seg_dir: Path,
              segments: Dict[str, List[Path]], journal: CheckpointJournal,
              report: GenerateReport, *, run: Optional[dict],
              extra_meta: Optional[dict]) -> None:
    """Assemble the final corpus files from the committed segments."""
    # control.jsonl: byte-concatenation of the day segments
    with atomic_writer(out / CONTROL_FILE, mode="wb") as fh:
        for seg in segments["control"]:
            fh.write(seg.read_bytes())
    # data.npz: one packed record array from the day slices
    arrays = [np.load(seg)["packets"] for seg in segments["data"]]
    packets = np.concatenate(arrays)
    with atomic_writer(out / DATA_FILE, mode="wb") as fh:
        np.savez_compressed(fh, packets=packets,
                            sampling_rate=result.data.sampling_rate)
    meta = _platform_meta(result)
    meta.update(extra_meta or {})
    with atomic_writer(out / META_FILE) as fh:
        fh.write(json.dumps(meta, indent=2))

    counts = {"control_messages": len(result.control),
              "data_packets": len(result.data)}
    manifest_path = write_manifest(out, counts=counts, run=run)
    report.control_messages = counts["control_messages"]
    report.data_packets = counts["data_packets"]
    report.manifest_path = str(manifest_path)
    journal.commit(
        FINALIZE_KEY,
        control_messages=counts["control_messages"],
        data_packets=counts["data_packets"],
        control_sha256=file_sha256(out / CONTROL_FILE),
        data_sha256=file_sha256(out / DATA_FILE),
    )


def _platform_meta(result: ScenarioResult) -> dict:
    """The ``platform.json`` sidecar the analysis pipeline needs."""
    return {
        "peer_asns": result.ixp.member_asns,
        "route_server_asn": result.ixp.route_server.asn,
        "sampling_rate": result.data.sampling_rate,
        "peeringdb": [
            {"asn": r.asn, "name": r.name,
             "org_type": r.org_type.value, "scope": r.scope}
            for r in result.ixp.peeringdb
        ],
    }


def verify_resumable(out_dir: str | Path, config: ScenarioConfig) -> None:
    """Raise :class:`CheckpointError` unless ``out_dir`` holds a journal
    this configuration can resume (used by the CLI for early feedback)."""
    journal = CheckpointJournal.load(Path(out_dir) / JOURNAL_FILE)
    if journal.header is None:
        raise CheckpointError(
            f"{out_dir}: no checkpoint journal; run without --resume first")
    journal.require_header(_header(config))
