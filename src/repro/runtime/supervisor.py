"""The supervised analysis runner: child processes, timeouts, retries.

``AnalysisPipeline.run_all(supervisor=...)`` delegates here.  Each of the
study's analyses executes in a forked child process; the parent enforces a
wall-clock timeout, classifies failures (see :mod:`repro.runtime.retry`)
and re-runs transient ones with exponential backoff, and turns anything
terminal — a typed failure, a hung child killed at its timeout, an
OOM-killed child — into a ``failed`` :class:`AnalysisOutcome` instead of
letting it take down the remaining analyses.

Supervisor state machine, per analysis::

    pending ──► running ──► ok / degraded          (result received)
                   │
                   ├──► timeout ──► running (retry) … ──► failed
                   ├──► killed  ──► running (retry) … ──► failed
                   └──► failed                      (typed / bug: no retry)

Every terminal outcome is committed to the checkpoint journal (when one
is given), so ``repro analyze --resume`` re-runs only analyses that never
reached a terminal state.  Shared intermediates (events, pre-RTBH
classification, …) are warmed in the parent *before* forking so children
inherit them via copy-on-write instead of recomputing them 16 times.

On platforms without ``fork`` the runner degrades to in-process execution:
retries still apply to retryable exceptions, but hang/OOM isolation (and
therefore timeouts) are unavailable.
"""

from __future__ import annotations

import multiprocessing
import random
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional, Sequence

from repro import telemetry
from repro.core.study import (
    AnalysisOutcome,
    AnalysisStatus,
    StudyReport,
    run_analysis,
)
from repro.errors import AnalysisError
from repro.runtime import chaos
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.retry import RetryPolicy, is_retryable_exception

#: journal key prefix for per-analysis terminal outcomes
ANALYSIS_KEY = "analysis:"


@dataclass
class SupervisorPolicy:
    """How the supervisor babysits each analysis.

    ``timeout`` is the per-attempt wall-clock limit in seconds (None =
    unlimited); ``retry`` bounds and paces re-executions of transient
    failures; ``seed`` makes the backoff jitter deterministic; ``sleep``
    is injectable so tests assert the schedule without waiting it out.
    """

    timeout: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    seed: int = 0
    sleep: Callable[[float], None] = time.sleep


@dataclass
class _Attempt:
    """What one child-process execution produced."""

    event: str                       # "outcome" | "timeout" | "killed" | "raised" | "crashed"
    outcome: Optional[AnalysisOutcome] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    retryable: bool = False
    seconds: float = 0.0


def _child_main(conn, name: str, fn, degraded: bool,
                fingerprint: bool = False) -> None:
    hang = chaos.injected_hang(name)
    if hang:
        time.sleep(hang)
    try:
        outcome = run_analysis(name, fn, strict=False,
                               degraded_inputs=degraded,
                               fingerprint=fingerprint)
    except BaseException as exc:  # untyped: a bug or an OS-level failure
        conn.send({"kind": "raised", "error": str(exc),
                   "error_type": type(exc).__name__,
                   "retryable": is_retryable_exception(exc)})
        return
    try:
        conn.send({"kind": "outcome", "outcome": outcome})
    except Exception:
        # the analysis value would not pickle across the pipe; keep the
        # status/timing (and the fingerprint, computed before the send)
        # and drop the value rather than failing the run
        conn.send({"kind": "outcome", "outcome": AnalysisOutcome(
            name=outcome.name, status=outcome.status, value=None,
            error=outcome.error, error_type=outcome.error_type,
            seconds=outcome.seconds, value_digest=outcome.value_digest)})


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


def _run_attempt(name: str, fn, degraded: bool,
                 timeout: Optional[float]) -> _Attempt:
    """Execute one attempt in a forked child; classify how it ended."""
    ctx = _fork_context()
    if ctx is None:  # pragma: no cover - non-POSIX fallback
        return _run_attempt_inline(name, fn, degraded)
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_main,
                       args=(child_conn, name, fn, degraded, True),
                       daemon=True)
    start = perf_counter()
    proc.start()
    child_conn.close()
    # Drain the pipe *before* joining: a large result blocks the child's
    # send until the parent reads it, so join-then-recv would deadlock.
    # ``poll`` doubles as the wall-clock timeout; it also wakes on EOF
    # when the child dies without sending (recv then raises).
    msg = None
    timed_out = False
    try:
        if parent_conn.poll(timeout):
            msg = parent_conn.recv()
        else:
            timed_out = True
    except (EOFError, OSError):
        msg = None  # the child died mid-send; classify by exitcode below
    if timed_out and proc.is_alive():
        proc.kill()
        proc.join()
        parent_conn.close()
        return _Attempt(event="timeout", retryable=True,
                        error=f"timed out after {timeout:g}s and was killed",
                        error_type="AnalysisTimeout",
                        seconds=perf_counter() - start)
    proc.join()
    parent_conn.close()
    seconds = perf_counter() - start
    if msg is None:
        exitcode = proc.exitcode or 0
        if exitcode < 0:
            return _Attempt(event="killed", retryable=True,
                            error=f"child killed by signal {-exitcode}",
                            error_type="ChildKilled", seconds=seconds)
        return _Attempt(event="crashed", retryable=False,
                        error=f"child exited with code {exitcode} "
                              "without reporting a result",
                        error_type="ChildCrashed", seconds=seconds)
    if msg["kind"] == "raised":
        return _Attempt(event="raised", error=msg["error"],
                        error_type=msg["error_type"],
                        retryable=msg["retryable"], seconds=seconds)
    return _Attempt(event="outcome", outcome=msg["outcome"], seconds=seconds)


def _run_attempt_inline(name: str, fn, degraded: bool) -> _Attempt:
    """Fallback without process isolation (no fork): retries only."""
    start = perf_counter()
    try:
        outcome = run_analysis(name, fn, strict=False,
                               degraded_inputs=degraded, fingerprint=True)
    except BaseException as exc:
        return _Attempt(event="raised", error=str(exc),
                        error_type=type(exc).__name__,
                        retryable=is_retryable_exception(exc),
                        seconds=perf_counter() - start)
    return _Attempt(event="outcome", outcome=outcome,
                    seconds=perf_counter() - start)


def _outcome_from_entry(entry: dict) -> AnalysisOutcome:
    """Reconstruct a journaled terminal outcome (values are not persisted)."""
    return AnalysisOutcome(
        name=entry["name"], status=AnalysisStatus(entry["status"]),
        value=None, error=entry.get("error"),
        error_type=entry.get("error_type"),
        seconds=float(entry.get("seconds", 0.0)),
        attempts=int(entry.get("attempts", 1)),
        timeouts=int(entry.get("timeouts", 0)),
        value_digest=entry.get("value_digest"),
    )


def _analysis_fn(pipeline, name: str):
    """Resolve an analysis callable without tripping deprecation shims.

    Registry-aware pipelines expose ``analysis_fn``; duck-typed test
    doubles fall back to plain attribute access.
    """
    accessor = getattr(pipeline, "analysis_fn", None)
    if accessor is not None:
        return accessor(name)
    return getattr(pipeline, name)


def ingest_warnings(pipeline) -> list:
    """The per-corpus ingest-loss warnings a study report carries."""
    warnings = []
    for corpus_name in ("control", "data"):
        ingest = getattr(getattr(pipeline, corpus_name, None),
                         "ingest_report", None)
        if ingest is not None and not ingest.ok:
            warnings.append(
                f"{corpus_name} ingest dropped {ingest.skipped} of "
                f"{ingest.total} records")
    return warnings


def journal_outcome(journal: CheckpointJournal,
                    outcome: AnalysisOutcome) -> None:
    """Commit one terminal outcome under its analysis key."""
    journal.commit(ANALYSIS_KEY + outcome.name, name=outcome.name,
                   status=outcome.status.value, error=outcome.error,
                   error_type=outcome.error_type, seconds=outcome.seconds,
                   attempts=outcome.attempts, timeouts=outcome.timeouts,
                   value_digest=outcome.value_digest)


def run_supervised(
    pipeline,
    *,
    analyses: Optional[Sequence[str]] = None,
    policy: Optional[SupervisorPolicy] = None,
    strict: bool = False,
    journal: Optional[CheckpointJournal] = None,
) -> StudyReport:
    """Run the study's analyses under supervision; see the module docstring.

    ``pipeline`` is an :class:`~repro.core.pipeline.AnalysisPipeline`
    (anything exposing the analysis methods, ``degraded_inputs``, and the
    corpora works).  With ``strict=True`` the first ``failed`` terminal
    outcome raises :class:`~repro.errors.AnalysisError` — after being
    journaled, so a later ``--resume`` does not re-run it.
    """
    from repro.core.pipeline import ANALYSIS_NAMES

    policy = policy or SupervisorPolicy()
    names = list(analyses if analyses is not None else ANALYSIS_NAMES)
    telem = telemetry.current()
    rng = random.Random(policy.seed)
    report = StudyReport()
    degraded = pipeline.degraded_inputs
    report.warnings.extend(ingest_warnings(pipeline))

    with telem.span("analyze.warm_caches"):
        warm = getattr(pipeline, "warm_shared_caches", None)
        if warm is not None:
            warm()

    for name in names:
        key = ANALYSIS_KEY + name
        if journal is not None:
            entry = journal.committed(key)
            if entry is not None:
                report.outcomes.append(_outcome_from_entry(entry))
                telem.counter("supervisor.resumed").inc()
                continue
        outcome = _supervise_one(name, _analysis_fn(pipeline, name), degraded,
                                 policy, rng, telem)
        report.outcomes.append(outcome)
        telem.counter("pipeline.analyses", status=outcome.status.value).inc()
        telem.histogram("pipeline.analysis_seconds",
                        name=name).observe(outcome.seconds)
        if journal is not None:
            journal_outcome(journal, outcome)
        if strict and outcome.status is AnalysisStatus.FAILED:
            raise AnalysisError(
                f"{name} failed under supervision after {outcome.attempts} "
                f"attempt(s): {outcome.error_type}: {outcome.error}")
    if telem.enabled:
        report.telemetry = telem.metrics_snapshot()
    return report


def _supervise_one(name: str, fn, degraded: bool, policy: SupervisorPolicy,
                   rng: random.Random, telem) -> AnalysisOutcome:
    """Drive one analysis to a terminal outcome under the retry policy."""
    attempts = 0
    timeouts = 0
    last: Optional[_Attempt] = None
    while True:
        with telem.span(f"analyze.{name}", attempt=attempts) as sp:
            attempt = _run_attempt(name, fn, degraded, policy.timeout)
            sp.attrs["event"] = attempt.event
        attempts += 1
        last = attempt
        if attempt.event == "outcome":
            outcome = attempt.outcome
            outcome.attempts = attempts
            outcome.timeouts = timeouts
            return outcome
        if attempt.event == "timeout":
            timeouts += 1
            telem.counter("supervisor.timeouts", name=name).inc()
        elif attempt.event == "killed":
            telem.counter("supervisor.kills", name=name).inc()
        if not attempt.retryable or attempts > policy.retry.max_retries:
            break
        delay = policy.retry.delay(attempts - 1, rng)
        telem.counter("supervisor.retries", name=name).inc()
        policy.sleep(delay)
    return AnalysisOutcome(
        name=name, status=AnalysisStatus.FAILED,
        error=last.error, error_type=last.error_type,
        seconds=last.seconds, attempts=attempts, timeouts=timeouts)
