"""The checkpoint journal: an append-only, fsynced record of completed work.

One journal file accompanies each resumable run (``.checkpoint.jsonl`` in
the corpus directory for ``generate``, ``.analysis.checkpoint.jsonl`` for
``analyze``).  Line 1 is a *header* identifying the run — command, seed,
configuration hash — so ``--resume`` refuses to splice work from a
different run.  Every subsequent line is one committed *step*::

    {"type": "header", "command": "generate", "seed": 7, "config_hash": "…"}
    {"type": "step", "key": "segment:control:000", "sha256": "…", "bytes": 123}
    {"type": "step", "key": "segment:data:000", "sha256": "…", "bytes": 456}
    {"type": "step", "key": "finalize", …}

Commits are appended with ``flush`` + ``fsync`` before the method returns,
so a step is either durably journaled or (from the resumer's point of
view) never happened.  A crash mid-append can leave at most one torn
trailing line; :meth:`CheckpointJournal.load` tolerates exactly that —
the torn tail is dropped and the step it described is simply redone.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro import telemetry
from repro.errors import CheckpointError
from repro.runtime import chaos


class CheckpointJournal:
    """Append-only journal of committed steps for one resumable run."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.header: Optional[dict] = None
        self._entries: Dict[str, dict] = {}

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path) -> "CheckpointJournal":
        """Read an existing journal, tolerating a torn trailing line.

        A journal whose *first* line is unreadable is unusable and raises
        :class:`~repro.errors.CheckpointError`; a bad line later is
        treated as the torn tail of a crashed append — it and anything
        after it are ignored.
        """
        journal = cls(path)
        if not journal.path.exists():
            return journal
        with open(journal.path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        raise ValueError("not an object")
                except ValueError as exc:
                    if line_no == 1:
                        raise CheckpointError(
                            f"{journal.path}: corrupt journal header: {exc}"
                        ) from exc
                    break  # torn tail of a crashed append: redo from here
                if record.get("type") == "header":
                    journal.header = record
                elif record.get("type") == "step" and "key" in record:
                    journal._entries[record["key"]] = record
        return journal

    def start(self, header: dict) -> None:
        """Begin a fresh journal: truncate the file and write the header."""
        self.header = {"type": "header", **header}
        self._entries.clear()
        self._append(self.header, truncate=True)

    def require_header(self, expected: dict) -> None:
        """Check a loaded journal belongs to the run described by
        ``expected`` (same command/seed/config hash); raise otherwise."""
        if self.header is None:
            raise CheckpointError(
                f"{self.path}: no journal header; nothing to resume")
        for key, value in expected.items():
            if self.header.get(key) != value:
                raise CheckpointError(
                    f"{self.path}: journal was written by a different run "
                    f"({key}={self.header.get(key)!r}, expected {value!r}); "
                    "refusing to resume")

    # -- committed work ------------------------------------------------------

    def committed(self, key: str) -> Optional[dict]:
        """The journal entry for ``key``, or None if not yet committed."""
        return self._entries.get(key)

    def keys(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def commit(self, key: str, **payload) -> dict:
        """Durably record that step ``key`` completed.

        The entry is flushed and fsynced before this returns; the chaos
        kill hook fires *after* the fsync, so an injected SIGKILL
        simulates dying immediately after the commit.
        """
        entry = {"type": "step", "key": key, **payload}
        telem = telemetry.current()
        with telem.span("checkpoint.commit", key=key):
            self._append(entry)
        telem.counter("checkpoint.commits").inc()
        telem.event("checkpoint.commit", severity="debug", key=key,
                    journal=self.path.name)
        self._entries[key] = entry
        chaos.maybe_kill(f"commit:{key}")
        return entry

    # -- internals -----------------------------------------------------------

    def _append(self, record: dict, truncate: bool = False) -> None:
        from repro.faults import io as iofaults  # lazy: avoids import cycle

        mode = "w" if truncate else "a"
        line = json.dumps(record, sort_keys=True) + "\n"
        with open(self.path, mode, encoding="utf-8") as fh:
            fh.write(iofaults.filter_write(self.path, line))
            fh.flush()
            iofaults.check_fsync(self.path)
            os.fsync(fh.fileno())
