"""Retry policy: bounded attempts, exponential backoff, deterministic jitter.

The supervisor retries an analysis only when the failure looks
*transient*: the child was killed (OOM, stray signal), hit its wall-clock
timeout, or died raising an OS-level error.  Typed
:class:`~repro.errors.ReproError` failures — :class:`IngestError`,
:class:`FaultInjectionError`, :class:`AnalysisError`, … — are
deterministic properties of the data and are never retried; neither are
other Python exceptions, which are bugs.

Jitter is drawn from a :class:`random.Random` seeded per run, so a given
``(policy, seed)`` produces the exact same backoff schedule every time —
the determinism contract the rest of the package keeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.errors import ReproError, SupervisorError

#: exception types whose failures are worth retrying (transient by nature)
RETRYABLE_TYPES = (OSError, MemoryError, TimeoutError, ConnectionError)

#: failure *events* (as opposed to exceptions) that are always retryable
RETRYABLE_EVENTS = frozenset({"timeout", "killed"})


def is_retryable_exception(exc: BaseException) -> bool:
    """Whether a raised exception warrants a retry.

    Typed library errors are deterministic data problems — retrying
    cannot help — so :class:`ReproError` always wins over the transient
    types even where an error multiply inherits (e.g. a hypothetical
    ``ReproError``/``OSError`` hybrid).
    """
    if isinstance(exc, ReproError):
        return False
    return isinstance(exc, RETRYABLE_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and multiplicative jitter.

    ``max_retries`` counts *re*-executions: an analysis runs at most
    ``max_retries + 1`` times.  The delay before retry ``n`` (0-based) is
    ``min(backoff_max, backoff_base * backoff_factor**n)`` scaled by a
    uniform jitter factor in ``[1, 1 + jitter]``.
    """

    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise SupervisorError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise SupervisorError("backoff delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise SupervisorError("backoff_factor must be >= 1")
        if self.jitter < 0:
            raise SupervisorError("jitter must be >= 0")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before re-running after failed attempt ``attempt``."""
        base = min(self.backoff_max,
                   self.backoff_base * self.backoff_factor ** attempt)
        return base * (1.0 + self.jitter * rng.random())

    def schedule(self, seed: int) -> List[float]:
        """The full deterministic backoff schedule for a run seed."""
        rng = random.Random(seed)
        return [self.delay(attempt, rng)
                for attempt in range(self.max_retries)]


class BackoffTimer:
    """Stateful, unbounded backoff pacing for reconnect loops.

    The supervisor's :class:`RetryPolicy` models a *bounded* number of
    re-executions; a live-feed tap instead reconnects indefinitely, with
    the delay growing per consecutive failure and resetting once the feed
    recovers.  This wraps a policy plus a seeded RNG so a given
    ``(policy, seed)`` replays the exact same delay sequence — including
    across :meth:`reset` boundaries, because the jitter stream is drawn
    from one RNG and never re-seeded mid-run.

    ``attempt`` counts consecutive failures since the last reset; it is
    what callers compare against their give-up threshold.
    """

    def __init__(self, policy: RetryPolicy, seed: int):
        self.policy = policy
        self.seed = seed
        self._rng = random.Random(seed)
        self.attempt = 0

    def next_delay(self) -> float:
        """The delay before the next reconnect attempt; advances state."""
        delay = self.policy.delay(self.attempt, self._rng)
        self.attempt += 1
        return delay

    def reset(self) -> None:
        """The feed recovered: start the escalation over (jitter stream
        keeps advancing — determinism comes from the seed, not reuse)."""
        self.attempt = 0
