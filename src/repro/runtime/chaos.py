"""Chaos hooks: environment-driven crash and hang injection.

The chaos tests (and the CI chaos job) exercise the crash-safety
guarantees by killing the pipeline at precise checkpoint boundaries and
by hanging individual analyses.  Both hooks are driven by environment
variables so the victim can be a plain CLI subprocess:

``REPRO_CHAOS_KILL_AT=commit:segment:control:001``
    SIGKILL the current process the moment the named chaos point is
    reached (checkpoint commits announce ``commit:<step key>``).  The
    process dies exactly as an OOM-killed or power-cut run would — no
    atexit handlers, no flushing.

``REPRO_CHAOS_HANG=fig3_load:30``
    The supervised analysis runner sleeps the given number of seconds in
    the child process before running the named analysis — a deliberate
    hang for the timeout/retry machinery to kill.  Comma-separated pairs
    inject multiple hangs.

Both variables are inert in normal operation; the hooks cost one ``dict``
lookup when unset.
"""

from __future__ import annotations

import os
import signal

KILL_ENV = "REPRO_CHAOS_KILL_AT"
HANG_ENV = "REPRO_CHAOS_HANG"


def maybe_kill(point: str) -> None:
    """SIGKILL ourselves if ``point`` is the configured kill point."""
    target = os.environ.get(KILL_ENV)
    if target is not None and target == point:
        os.kill(os.getpid(), signal.SIGKILL)


def injected_hang(name: str) -> float:
    """Seconds the named analysis should sleep before running (0 = none)."""
    spec = os.environ.get(HANG_ENV)
    if not spec:
        return 0.0
    for pair in spec.split(","):
        key, _, seconds = pair.partition(":")
        if key.strip() == name:
            try:
                return max(0.0, float(seconds))
            except ValueError:
                return 0.0
    return 0.0
