"""Atomic, durable file writes.

Every artifact the crash-safe execution layer persists — corpus segments,
final corpus files, ``manifest.json``, checkpoint journal headers — goes
through one of these helpers: the content is written to a temporary file
*in the same directory*, flushed and fsynced, then :func:`os.replace`\\ d
over the destination, and finally the directory entry itself is fsynced.
A reader therefore observes either the old file or the complete new file,
never a truncated hybrid — a crash mid-write leaves only a ``.tmp-*``
orphan that the next run quietly removes.

The flush, fsync, and rename steps each pass through the
:mod:`repro.faults.io` shims, so the fault-injection torture harness can
make any individual publish fail (or silently tear) the way real disks
do.  The shims are single-global-check no-ops unless a fault plan is
installed or ``REPRO_IO_FAULTS`` is set.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

#: prefix of the same-directory temporaries (cleanup keys off it)
TMP_PREFIX = ".tmp-"


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so a just-renamed entry survives power loss.

    Best effort: platforms/filesystems that refuse to open directories
    (or to fsync them) are silently tolerated — the rename itself is
    still atomic there.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: str | Path, mode: str = "w",
                  encoding: str | None = "utf-8") -> Iterator:
    """Context manager yielding a file handle whose content replaces
    ``path`` atomically on clean exit.

    On an exception inside the block the temporary is removed and the
    destination is left exactly as it was.  ``mode`` must be a write mode
    (``"w"`` or ``"wb"``).
    """
    from repro.faults import io as iofaults  # lazy: avoids import cycle

    path = Path(path)
    if "b" in mode:
        encoding = None
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=TMP_PREFIX + path.name + "-")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode, encoding=encoding) as fh:
            yield fh
            fh.flush()
            iofaults.check_flush(path, fh.fileno())
            iofaults.check_fsync(path)
            os.fsync(fh.fileno())
        iofaults.check_rename(tmp, path)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_dir(path.parent)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically replace ``path`` with ``data``."""
    path = Path(path)
    with atomic_writer(path, mode="wb") as fh:
        fh.write(data)
    return path


def atomic_write_text(path: str | Path, text: str,
                      encoding: str = "utf-8") -> Path:
    """Atomically replace ``path`` with ``text``."""
    path = Path(path)
    with atomic_writer(path, mode="w", encoding=encoding) as fh:
        fh.write(text)
    return path


def remove_stale_tmp(directory: str | Path) -> int:
    """Delete orphaned ``.tmp-*`` files left by a killed writer.

    Returns the number of orphans removed; a directory that does not
    exist yet counts as clean.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return 0
    removed = 0
    for entry in directory.iterdir():
        if entry.is_file() and entry.name.startswith(TMP_PREFIX):
            entry.unlink(missing_ok=True)
            removed += 1
    return removed
