"""Filesystem fault injection: deterministic IO-level failure shims.

The corpus-level injectors in this package degrade *records*; this module
degrades the *writes themselves*, the way a failing disk or a full
filesystem would.  Five fault kinds cover the classic litany:

``enospc``
    The buffered write is refused with ``OSError(ENOSPC)`` before any
    byte reaches the temp file's durable path.
``eio``
    Same shape, ``OSError(EIO)`` — a generic medium error.
``short-write``
    The nastiest one: only a prefix of the payload reaches the file and
    **no error is raised**, so the atomic rename publishes a torn
    artifact — exactly the damage class ``repro doctor`` exists to find.
``fsync``
    ``os.fsync`` raises ``OSError(EIO)`` (an fsync failure must abort the
    publish, never be swallowed — the writer propagates it).
``rename``
    ``os.replace`` raises ``OSError(EIO)``; the destination keeps its old
    content and the temp file is cleaned up.

Faults are *planned*, not random: an :class:`IOFault` names a kind, a
path substring to match, and the 1-based ordinal of the matching
operation to hit, so a given plan replays the identical failure at the
identical write every run.  Plans are installed in-process with
:func:`install` / :func:`deactivate` (tests), or via the environment for
CLI subprocesses::

    REPRO_IO_FAULTS="short-write:control-001:1,fsync:manifest:2"

Every hook is a no-op costing one global check when no plan is active.
The shims are threaded through :mod:`repro.runtime.atomic` (flush, fsync,
rename) and the checkpoint journal's append path, which between them
carry every durable artifact the toolkit writes.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import FaultInjectionError

#: environment variable holding a comma-separated fault plan
IO_FAULTS_ENV = "REPRO_IO_FAULTS"

#: the supported IO fault kinds
IO_KINDS = ("enospc", "eio", "short-write", "fsync", "rename")

#: fault kinds consulted at each hook point
_WRITE_KINDS = ("enospc", "eio", "short-write")

_ERRNO = {"enospc": errno.ENOSPC, "eio": errno.EIO,
          "fsync": errno.EIO, "rename": errno.EIO}


@dataclass
class IOFault:
    """One planned IO failure: kind, path filter, and when it fires."""

    kind: str
    #: substring of the target path that must match ("" = every path)
    match: str = ""
    #: 1-based ordinal of the matching operation of this kind to hit
    at: int = 1
    #: kept fraction of the payload for ``short-write`` (torn artifact)
    keep_fraction: float = 0.5
    #: how this fault has been consumed (set by the plan)
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in IO_KINDS:
            raise FaultInjectionError(
                f"unknown IO fault kind {self.kind!r}; expected one of "
                f"{IO_KINDS}")
        if self.at < 1:
            raise FaultInjectionError(
                f"IO fault ordinal must be >= 1, got {self.at}")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise FaultInjectionError(
                f"short-write keep_fraction must be in [0, 1), got "
                f"{self.keep_fraction}")

    @classmethod
    def parse(cls, text: str) -> "IOFault":
        """Parse one ``kind[:match[:nth]]`` spec (the env/CLI syntax)."""
        parts = text.strip().split(":")
        kind = parts[0].strip()
        match = parts[1].strip() if len(parts) > 1 else ""
        at = 1
        if len(parts) > 2:
            try:
                at = int(parts[2])
            except ValueError:
                raise FaultInjectionError(
                    f"IO fault spec {text!r}: ordinal {parts[2]!r} is not "
                    "an integer") from None
        if len(parts) > 3:
            raise FaultInjectionError(
                f"IO fault spec {text!r}: expected kind[:match[:nth]]")
        return cls(kind=kind, match=match, at=at)


class IOFaultPlan:
    """A set of planned faults plus the op counters that schedule them."""

    def __init__(self, faults: List[IOFault]):
        self.faults = list(faults)
        #: (kind, match) -> how many matching ops have been seen
        self._seen: dict = {}
        #: human-readable record of every fault that fired
        self.fired: List[str] = []

    @classmethod
    def parse(cls, spec: str) -> "IOFaultPlan":
        faults = [IOFault.parse(part) for part in spec.split(",")
                  if part.strip()]
        if not faults:
            raise FaultInjectionError(
                f"empty IO fault plan {spec!r}; expected "
                "kind[:match[:nth]][,...]")
        return cls(faults)

    def _arm(self, kinds, path: str) -> Optional[IOFault]:
        """The fault (if any) scheduled to fire at this operation."""
        hit = None
        for fault in self.faults:
            if fault.fired or fault.kind not in kinds:
                continue
            if fault.match and fault.match not in path:
                continue
            key = (fault.kind, fault.match)
            self._seen[key] = seen = self._seen.get(key, 0) + 1
            if seen == fault.at and hit is None:
                hit = fault
        return hit

    def _fire(self, fault: IOFault, op: str, path: str) -> None:
        fault.fired = True
        self.fired.append(f"{fault.kind}@{op}:{path}")
        from repro import telemetry
        telemetry.current().counter("iofault.fired", kind=fault.kind).inc()

    # -- hook points ---------------------------------------------------------

    def on_write(self, path: str, data):
        """Filter a payload about to be appended; may raise or truncate.

        Used by append-path writers (the checkpoint journal): the
        returned prefix is what actually reaches the file.
        """
        fault = self._arm(_WRITE_KINDS, path)
        if fault is None:
            return data
        self._fire(fault, "write", path)
        if fault.kind == "short-write":
            return data[:int(len(data) * fault.keep_fraction)]
        raise OSError(_ERRNO[fault.kind],
                      f"injected {fault.kind} writing {path}")

    def on_flush(self, path: str, fd: int) -> None:
        """Damage a fully-buffered temp file just before its fsync.

        Used by :func:`repro.runtime.atomic.atomic_writer`, where the
        caller writes directly to the handle: ``short-write`` truncates
        the temp file in place (the rename then publishes a torn
        artifact), the error kinds raise as a failing flush would.
        """
        fault = self._arm(_WRITE_KINDS, path)
        if fault is None:
            return
        self._fire(fault, "flush", path)
        if fault.kind == "short-write":
            size = os.fstat(fd).st_size
            os.ftruncate(fd, int(size * fault.keep_fraction))
            return
        raise OSError(_ERRNO[fault.kind],
                      f"injected {fault.kind} writing {path}")

    def on_fsync(self, path: str) -> None:
        fault = self._arm(("fsync",), path)
        if fault is not None:
            self._fire(fault, "fsync", path)
            raise OSError(_ERRNO["fsync"], f"injected fsync failure on "
                                           f"{path}")

    def on_rename(self, src: str, dst: str) -> None:
        fault = self._arm(("rename",), dst)
        if fault is not None:
            self._fire(fault, "rename", dst)
            raise OSError(_ERRNO["rename"],
                          f"injected rename failure publishing {dst}")


#: the in-process plan (tests install these directly)
_active: Optional[IOFaultPlan] = None
#: lazily-parsed plan from the environment; False = not yet parsed
_env_plan = False


def install(plan: Optional[IOFaultPlan]) -> None:
    """Install (or with ``None`` remove) the in-process fault plan."""
    global _active
    _active = plan


def deactivate() -> None:
    """Remove any in-process plan and forget the parsed env plan."""
    global _active, _env_plan
    _active = None
    _env_plan = False


def active() -> Optional[IOFaultPlan]:
    """The plan in effect: the installed one, else the env-configured one."""
    global _env_plan
    if _active is not None:
        return _active
    if _env_plan is False:
        spec = os.environ.get(IO_FAULTS_ENV)
        _env_plan = IOFaultPlan.parse(spec) if spec else None
    return _env_plan


# -- the shims runtime code calls (one global check when inert) --------------

def filter_write(path, data):
    plan = active()
    return data if plan is None else plan.on_write(str(path), data)


def check_flush(path, fd: int) -> None:
    plan = active()
    if plan is not None:
        plan.on_flush(str(path), fd)


def check_fsync(path) -> None:
    plan = active()
    if plan is not None:
        plan.on_fsync(str(path))


def check_rename(src, dst) -> None:
    plan = active()
    if plan is not None:
        plan.on_rename(str(src), str(dst))
