"""Fault injectors for the control-plane message log.

Every injector is a pure function ``(messages, rng, spec) -> (messages',
affected, detail)`` over a list of :class:`~repro.bgp.message.BGPUpdate`.
They operate on the *raw message sequence* — not on a
:class:`~repro.corpus.control.ControlPlaneCorpus` — because several faults
(reordering, corruption) are only observable before ingestion sorts and
validates the feed.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.bgp.message import BGPUpdate, UpdateAction
from repro.errors import FaultInjectionError
from repro.faults.spec import FaultKind, FaultSpec

#: default 1-sigma timestamp jitter at intensity 1.0, seconds
JITTER_SCALE = 60.0
#: default total clock drift accumulated over the trace at intensity 1.0, seconds
DRIFT_SCALE = 30.0

_Result = Tuple[List[BGPUpdate], int, str]


def _span(messages: Sequence[BGPUpdate]) -> Tuple[float, float]:
    times = [m.time for m in messages if math.isfinite(m.time)]
    if not times:
        return 0.0, 0.0
    return min(times), max(times)


def inject_drop(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                spec: FaultSpec) -> _Result:
    keep = rng.random(len(messages)) >= spec.intensity
    out = [m for m, k in zip(messages, keep) if k]
    return out, len(messages) - len(out), "records dropped"


def inject_outage(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                  spec: FaultSpec) -> _Result:
    t0, t1 = _span(messages)
    width = spec.intensity * (t1 - t0)
    start = t0 + rng.random() * max(0.0, (t1 - t0) - width)
    end = start + width
    out = [m for m in messages if not (start <= m.time < end)]
    return out, len(messages) - len(out), (
        f"outage window [{start:.0f}, {end:.0f})")


def inject_duplicate(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                     spec: FaultSpec) -> _Result:
    dup = rng.random(len(messages)) < spec.intensity
    out: List[BGPUpdate] = []
    for msg, d in zip(messages, dup):
        out.append(msg)
        if d:
            out.append(msg)
    return out, int(dup.sum()), "records duplicated"


def inject_reorder(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                   spec: FaultSpec) -> _Result:
    """Displace a fraction of records from their time-ordered position.

    Each affected record is moved up to ``params['window']`` (default 32)
    positions away — the local shuffling a multi-threaded dumper produces.
    Timestamps are untouched; only the on-the-wire order degrades.
    """
    window = int(spec.params.get("window", 32))
    out = list(messages)
    picked = np.flatnonzero(rng.random(len(out)) < spec.intensity)
    for i in picked:
        j = int(np.clip(i + rng.integers(-window, window + 1), 0, len(out) - 1))
        out[i], out[j] = out[j], out[i]
    return out, len(picked), f"records displaced (window={window})"


def inject_jitter(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                  spec: FaultSpec) -> _Result:
    sigma = spec.intensity * float(spec.params.get("scale", JITTER_SCALE))
    noise = rng.normal(0.0, sigma, size=len(messages))
    out = [dataclasses.replace(m, time=m.time + float(dt))
           for m, dt in zip(messages, noise)]
    return out, len(out), f"timestamps jittered (sigma={sigma:.2f}s)"


def inject_clock_drift(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                       spec: FaultSpec) -> _Result:
    """Monotonic linear drift: the trace end is late by ``intensity*scale``."""
    total = spec.intensity * float(spec.params.get("scale", DRIFT_SCALE))
    t0, t1 = _span(messages)
    span = max(t1 - t0, 1.0)
    out = [dataclasses.replace(m, time=m.time + total * (m.time - t0) / span)
           for m in messages]
    return out, len(out), f"clock drift (total={total:.2f}s)"


def inject_corrupt(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                   spec: FaultSpec) -> _Result:
    """Replace a fraction of timestamps with non-finite garbage.

    The corruption is deliberately *detectable* (NaN/±inf) so hardened
    ingestion can quarantine exactly the rotten records; silently-plausible
    corruption is a semantic attack, not a feed fault.
    """
    bad = rng.random(len(messages)) < spec.intensity
    garbage = (float("nan"), float("inf"), float("-inf"))
    out = [
        dataclasses.replace(m, time=garbage[int(rng.integers(len(garbage)))])
        if b else m
        for m, b in zip(messages, bad)
    ]
    return out, int(bad.sum()), "timestamps corrupted to non-finite"


def inject_truncate(messages: Sequence[BGPUpdate], rng: np.random.Generator,
                    spec: FaultSpec) -> _Result:
    keep = len(messages) - int(round(spec.intensity * len(messages)))
    out = list(messages[:keep])
    return out, len(messages) - keep, "tail records truncated"


def inject_stuck_session(messages: Sequence[BGPUpdate],
                         rng: np.random.Generator,
                         spec: FaultSpec) -> _Result:
    """Lose every withdrawal from a fraction of peers (≥ 1 peer).

    The classic zombie-route generator: the session to the collector dies,
    announcements persist in the dump, withdrawals never arrive.
    """
    peers = sorted({m.peer_asn for m in messages})
    if not peers:
        return list(messages), 0, "no peers"
    n_stuck = max(1, int(round(spec.intensity * len(peers))))
    stuck = set(rng.choice(peers, size=min(n_stuck, len(peers)),
                           replace=False).tolist())
    out = [m for m in messages
           if not (m.peer_asn in stuck and m.action is UpdateAction.WITHDRAW)]
    return out, len(messages) - len(out), (
        f"withdrawals lost for {len(stuck)} stuck peer(s)")


_INJECTORS = {
    FaultKind.DROP: inject_drop,
    FaultKind.OUTAGE: inject_outage,
    FaultKind.DUPLICATE: inject_duplicate,
    FaultKind.REORDER: inject_reorder,
    FaultKind.JITTER: inject_jitter,
    FaultKind.CLOCK_DRIFT: inject_clock_drift,
    FaultKind.CORRUPT: inject_corrupt,
    FaultKind.TRUNCATE: inject_truncate,
    FaultKind.STUCK_SESSION: inject_stuck_session,
}


def apply_control_fault(messages: Sequence[BGPUpdate],
                        rng: np.random.Generator,
                        spec: FaultSpec) -> _Result:
    """Dispatch one spec against a control-plane message sequence."""
    try:
        injector = _INJECTORS[spec.kind]
    except KeyError:
        raise FaultInjectionError(
            f"fault kind {spec.kind.value!r} is not applicable to the "
            "control plane"
        ) from None
    return injector(messages, rng, spec)
