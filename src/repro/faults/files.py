"""On-disk fault injectors: the faults that only exist at the file layer.

Record-level injectors (:mod:`repro.faults.control` / ``.data``) perturb
in-memory sequences; these perturb the *bytes* a collector actually hands
the pipeline — truncated dumps, garbled lines, flipped bytes inside a
compressed archive.  They are what `repro validate` and the lenient loaders
are hardened against.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

#: printable garbage written over garbled JSONL lines
_GARBAGE_LINES = (
    "{\"time\": \"not-a-number\", \"peer_asn\": 0}",
    "{truncated json",
    "\x00\x01\x02 binary splatter \x7f",
    "",
    "{\"time\": 1.0, \"peer_asn\": -5, \"action\": \"announce\", "
    "\"prefix\": \"999.1.2.0/24\", \"next_hop\": null, \"as_path\": [], "
    "\"communities\": []}",
)


def truncate_file(path: str | Path, fraction: float,
                  rng: np.random.Generator | None = None) -> int:
    """Cut the trailing ``fraction`` of a file's bytes (mid-record cuts
    included — exactly what a dying collector leaves behind). Returns the
    number of bytes removed."""
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * (1.0 - fraction))
    with open(path, "rb+") as fh:
        fh.truncate(keep)
    return size - keep


def garble_jsonl(path: str | Path, fraction: float,
                 rng: np.random.Generator) -> int:
    """Overwrite a fraction of lines with malformed payloads. Returns the
    number of lines garbled."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    if not lines:
        return 0
    bad = np.flatnonzero(rng.random(len(lines)) < fraction)
    for i in bad:
        lines[i] = _GARBAGE_LINES[int(rng.integers(len(_GARBAGE_LINES)))]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(bad)


def shuffle_jsonl(path: str | Path, fraction: float,
                  rng: np.random.Generator, window: int = 32) -> int:
    """Locally displace a fraction of lines (out-of-order delivery on disk)."""
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    picked = np.flatnonzero(rng.random(len(lines)) < fraction)
    for i in picked:
        j = int(np.clip(i + rng.integers(-window, window + 1),
                        0, len(lines) - 1))
        lines[i], lines[j] = lines[j], lines[i]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(picked)


def flip_bytes(path: str | Path, count: int,
               rng: np.random.Generator) -> int:
    """XOR ``count`` random bytes in place — bit rot for binary archives.
    Returns the number of bytes flipped."""
    path = Path(path)
    blob = bytearray(path.read_bytes())
    if not blob:
        return 0
    positions = rng.integers(0, len(blob), size=count)
    for pos in positions:
        blob[int(pos)] ^= 0xFF
    path.write_bytes(bytes(blob))
    return len(positions)
