"""Deterministic fault injection for measurement corpora.

Models the degradations real route-server dumps and IPFIX exports arrive
with — loss, outages, duplication, reordering, clock faults, corruption,
truncation, stuck sessions — so the ingestion and analysis layers can be
hardened against them and regression-tested with reproducible sweeps.

Quickstart::

    from repro.faults import FaultSpec, inject_control_messages

    degraded, report = inject_control_messages(
        list(result.control),
        [FaultSpec("drop", 0.05), FaultSpec("jitter", 0.2)],
        seed=7,
    )
"""

from repro.faults.spec import (
    CONTROL_KINDS,
    DATA_KINDS,
    FaultApplication,
    FaultKind,
    FaultReport,
    FaultSpec,
)
from repro.faults.inject import (
    degrade_corpus_dir,
    inject_control_messages,
    inject_packets,
)
from repro.faults import files
from repro.faults import io

__all__ = [
    "CONTROL_KINDS",
    "DATA_KINDS",
    "FaultApplication",
    "FaultKind",
    "FaultReport",
    "FaultSpec",
    "degrade_corpus_dir",
    "inject_control_messages",
    "inject_packets",
    "files",
    "io",
]
