"""Fault injectors for the data-plane packet store.

Mirrors :mod:`repro.faults.control` over the numpy ``PACKET_DTYPE`` record
array: ``(packets, rng, spec) -> (packets', affected, detail)``.  All
injectors return a fresh array; the input is never mutated.
``STUCK_SESSION`` has no data-plane meaning and raises
:class:`~repro.errors.FaultInjectionError`.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.spec import DATA_KINDS, FaultKind, FaultSpec

#: default 1-sigma timestamp jitter at intensity 1.0, seconds
JITTER_SCALE = 5.0
#: default total clock drift accumulated over the trace at intensity 1.0, seconds
DRIFT_SCALE = 30.0

_Result = Tuple[np.ndarray, int, str]


def _finite_span(times: np.ndarray) -> Tuple[float, float]:
    finite = times[np.isfinite(times)]
    if len(finite) == 0:
        return 0.0, 0.0
    return float(finite.min()), float(finite.max())


def inject_drop(packets: np.ndarray, rng: np.random.Generator,
                spec: FaultSpec) -> _Result:
    keep = rng.random(len(packets)) >= spec.intensity
    return packets[keep], int((~keep).sum()), "records dropped"


def inject_outage(packets: np.ndarray, rng: np.random.Generator,
                  spec: FaultSpec) -> _Result:
    t0, t1 = _finite_span(packets["time"])
    width = spec.intensity * (t1 - t0)
    start = t0 + rng.random() * max(0.0, (t1 - t0) - width)
    end = start + width
    keep = ~((packets["time"] >= start) & (packets["time"] < end))
    return packets[keep], int((~keep).sum()), (
        f"outage window [{start:.0f}, {end:.0f})")


def inject_duplicate(packets: np.ndarray, rng: np.random.Generator,
                     spec: FaultSpec) -> _Result:
    dup = rng.random(len(packets)) < spec.intensity
    out = np.concatenate([packets, packets[dup]])
    return out, int(dup.sum()), "records duplicated"


def inject_reorder(packets: np.ndarray, rng: np.random.Generator,
                   spec: FaultSpec) -> _Result:
    """Swap a fraction of records with a nearby position (export reordering)."""
    window = int(spec.params.get("window", 32))
    out = packets.copy()
    picked = np.flatnonzero(rng.random(len(out)) < spec.intensity)
    for i in picked:
        j = int(np.clip(i + rng.integers(-window, window + 1), 0, len(out) - 1))
        out[[i, j]] = out[[j, i]]
    return out, len(picked), f"records displaced (window={window})"


def inject_jitter(packets: np.ndarray, rng: np.random.Generator,
                  spec: FaultSpec) -> _Result:
    sigma = spec.intensity * float(spec.params.get("scale", JITTER_SCALE))
    out = packets.copy()
    out["time"] = out["time"] + rng.normal(0.0, sigma, size=len(out))
    return out, len(out), f"timestamps jittered (sigma={sigma:.2f}s)"


def inject_clock_drift(packets: np.ndarray, rng: np.random.Generator,
                       spec: FaultSpec) -> _Result:
    total = spec.intensity * float(spec.params.get("scale", DRIFT_SCALE))
    t0, t1 = _finite_span(packets["time"])
    span = max(t1 - t0, 1.0)
    out = packets.copy()
    out["time"] = out["time"] + total * (out["time"] - t0) / span
    return out, len(out), f"clock drift (total={total:.2f}s)"


def inject_corrupt(packets: np.ndarray, rng: np.random.Generator,
                   spec: FaultSpec) -> _Result:
    """Rot a fraction of timestamps: NaN, ±inf, or impossible negatives."""
    bad = rng.random(len(packets)) < spec.intensity
    out = packets.copy()
    garbage = np.array([np.nan, np.inf, -np.inf, -1.0e12])
    out["time"][bad] = garbage[rng.integers(len(garbage), size=int(bad.sum()))]
    return out, int(bad.sum()), "timestamps corrupted"


def inject_truncate(packets: np.ndarray, rng: np.random.Generator,
                    spec: FaultSpec) -> _Result:
    keep = len(packets) - int(round(spec.intensity * len(packets)))
    return packets[:keep].copy(), len(packets) - keep, "tail records truncated"


_INJECTORS = {
    FaultKind.DROP: inject_drop,
    FaultKind.OUTAGE: inject_outage,
    FaultKind.DUPLICATE: inject_duplicate,
    FaultKind.REORDER: inject_reorder,
    FaultKind.JITTER: inject_jitter,
    FaultKind.CLOCK_DRIFT: inject_clock_drift,
    FaultKind.CORRUPT: inject_corrupt,
    FaultKind.TRUNCATE: inject_truncate,
}


def apply_data_fault(packets: np.ndarray, rng: np.random.Generator,
                     spec: FaultSpec) -> _Result:
    """Dispatch one spec against a data-plane packet array."""
    if spec.kind not in DATA_KINDS or spec.kind not in _INJECTORS:
        raise FaultInjectionError(
            f"fault kind {spec.kind.value!r} is not applicable to the "
            "data plane"
        )
    return _INJECTORS[spec.kind](packets, rng, spec)
