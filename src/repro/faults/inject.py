"""Deterministic fault-injection entry points.

The per-plane APIs are strict — asking for a fault the plane cannot express
(e.g. ``stuck_session`` on packets) raises
:class:`~repro.errors.FaultInjectionError`.  The directory API is the
operational one: it degrades a saved corpus in place of a collector's
failure, applying each spec to every plane it is meaningful for.

Determinism contract: identical ``(input, specs, seed)`` produce identical
output, byte for byte.  Each spec draws from its own
``np.random.default_rng`` stream keyed by ``(seed, position, kind)`` so
inserting a new spec never reshuffles the faults after it.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import List, Sequence, Tuple

import numpy as np

from repro.bgp.message import BGPUpdate
from repro import telemetry
from repro.faults import control as control_faults
from repro.faults import data as data_faults
from repro.faults.spec import (
    CONTROL_KINDS,
    DATA_KINDS,
    FaultApplication,
    FaultReport,
    FaultSpec,
    spec_rng_seed,
)


#: quarantine sidecars (``<plane>.quarantine.jsonl``) are not corpora
QUARANTINE_MARKER = ".quarantine."


def _is_quarantine(path: Path) -> bool:
    return QUARANTINE_MARKER in path.name


def _rng(seed: int, index: int, spec: FaultSpec) -> np.random.Generator:
    return np.random.default_rng(spec_rng_seed(seed, index, spec))


def inject_control_messages(
    messages: Sequence[BGPUpdate],
    specs: Sequence[FaultSpec],
    seed: int = 0,
) -> Tuple[List[BGPUpdate], FaultReport]:
    """Apply every spec, in order, to a control-plane message sequence."""
    report = FaultReport(seed=seed, target="control-plane")
    out: List[BGPUpdate] = list(messages)
    for i, spec in enumerate(specs):
        out, affected, detail = control_faults.apply_control_fault(
            out, _rng(seed, i, spec), spec)
        report.applications.append(
            FaultApplication(spec=spec, affected=affected, detail=detail))
        telemetry.current().counter("faults.records_affected",
                                    kind=spec.kind, plane="control").inc(affected)
    return out, report


def inject_packets(
    packets: np.ndarray,
    specs: Sequence[FaultSpec],
    seed: int = 0,
) -> Tuple[np.ndarray, FaultReport]:
    """Apply every spec, in order, to a data-plane packet array."""
    report = FaultReport(seed=seed, target="data-plane")
    out = packets
    for i, spec in enumerate(specs):
        out, affected, detail = data_faults.apply_data_fault(
            out, _rng(seed, i, spec), spec)
        report.applications.append(
            FaultApplication(spec=spec, affected=affected, detail=detail))
        telemetry.current().counter("faults.records_affected",
                                    kind=spec.kind, plane="data").inc(affected)
    return out, report


def degrade_corpus_dir(
    src: str | Path,
    dst: str | Path,
    specs: Sequence[FaultSpec],
    seed: int = 0,
) -> FaultReport:
    """Copy a saved corpus from ``src`` to ``dst`` with faults applied.

    Each spec is applied to every plane it is meaningful for (so a single
    ``drop:0.1`` degrades both feeds); the perturbed control log is written
    in its *post-fault order*, preserving reordering on disk.  Sidecar
    files (``platform.json`` etc.) are copied verbatim; any stale manifest
    is intentionally left behind so `repro validate` can flag the mismatch.
    """
    from repro.corpus.control import read_updates_jsonl, write_updates_jsonl
    from repro.corpus.data import read_packets_npz, write_packets_npz

    src, dst = Path(src), Path(dst)
    dst.mkdir(parents=True, exist_ok=True)
    report = FaultReport(seed=seed, target=str(src))

    for side in src.iterdir():
        if side.name.startswith("."):
            continue  # runtime internals (checkpoint journal, scratch)
        if side.is_file() and (_is_quarantine(side)
                               or side.suffix not in (".jsonl", ".npz")):
            # sidecars — including quarantine stores, which hold malformed
            # records by definition — are copied verbatim, never degraded
            shutil.copyfile(side, dst / side.name)

    telem = telemetry.current()
    for jsonl in sorted(src.glob("*.jsonl")):
        if jsonl.name.startswith(".") or _is_quarantine(jsonl):
            continue
        with telem.span("inject.control", source=jsonl.name):
            messages = [m for _, m in read_updates_jsonl(jsonl)]
            for i, spec in enumerate(specs):
                if spec.kind not in CONTROL_KINDS:
                    continue
                messages, affected, detail = control_faults.apply_control_fault(
                    messages, _rng(seed, i, spec), spec)
                report.applications.append(FaultApplication(
                    spec=spec, affected=affected,
                    detail=f"{jsonl.name}: {detail}"))
                telem.counter("faults.records_affected", kind=spec.kind,
                              plane="control").inc(affected)
            write_updates_jsonl(messages, dst / jsonl.name)

    for npz in sorted(src.glob("*.npz")):
        if npz.name.startswith("."):
            continue
        with telem.span("inject.data", source=npz.name):
            packets, rate = read_packets_npz(npz)
            for i, spec in enumerate(specs):
                if spec.kind not in DATA_KINDS:
                    continue
                packets, affected, detail = data_faults.apply_data_fault(
                    packets, _rng(seed, i, spec), spec)
                report.applications.append(FaultApplication(
                    spec=spec, affected=affected,
                    detail=f"{npz.name}: {detail}"))
                telem.counter("faults.records_affected", kind=spec.kind,
                              plane="data").inc(affected)
            write_packets_npz(packets, rate, dst / npz.name)

    return report
