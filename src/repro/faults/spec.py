"""Fault taxonomy and injection specs.

Real route-server dumps and IPFIX exports do not arrive pristine: collectors
restart (outages, truncated files), exporters resend (duplicates), UDP
transport reorders, clocks jitter and drift, disks corrupt records, and BGP
sessions die without withdrawing their routes.  Each of those failure modes
is one :class:`FaultKind`; a :class:`FaultSpec` names a kind, an intensity
in ``(0, 1]``, and optional kind-specific parameters.  Injection is fully
deterministic given ``(spec, seed)`` so robustness sweeps are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Mapping, Tuple

from repro.errors import FaultInjectionError


class FaultKind(str, Enum):
    """One class of corpus degradation observed in operational feeds."""

    #: independent random record loss (lossy collector / sampling gaps)
    DROP = "drop"
    #: one contiguous time window lost entirely (collector restart)
    OUTAGE = "outage"
    #: records delivered more than once (exporter retransmission)
    DUPLICATE = "duplicate"
    #: records delivered out of time order (UDP transport, multi-threaded dump)
    REORDER = "reorder"
    #: per-record timestamp noise (NTP scatter across collectors)
    JITTER = "jitter"
    #: monotonic clock drift growing over the trace (unsynced collector clock)
    CLOCK_DRIFT = "clock_drift"
    #: field-level corruption producing non-finite timestamps (disk/transfer rot)
    CORRUPT = "corrupt"
    #: trailing fraction of the feed missing (truncated dump file)
    TRUNCATE = "truncate"
    #: a peer's withdrawals never reach the collector (dead session → zombies)
    STUCK_SESSION = "stuck_session"


#: kinds meaningful for the control-plane message log
CONTROL_KINDS = frozenset(FaultKind)
#: kinds meaningful for the data-plane packet store (no BGP sessions there)
DATA_KINDS = frozenset(FaultKind) - {FaultKind.STUCK_SESSION}


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject: ``kind`` at ``intensity``, tuned by ``params``.

    ``intensity`` is the affected fraction — of records for record-level
    kinds, of the time span for :attr:`FaultKind.OUTAGE`, of peers for
    :attr:`FaultKind.STUCK_SESSION`, and the relative magnitude for the
    clock faults.
    """

    kind: FaultKind
    intensity: float = 0.1
    params: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.kind, FaultKind):
            try:
                object.__setattr__(self, "kind", FaultKind(self.kind))
            except ValueError:
                raise FaultInjectionError(
                    f"unknown fault kind: {self.kind!r}"
                ) from None
        if not (0.0 < self.intensity <= 1.0):
            raise FaultInjectionError(
                f"fault intensity must be in (0, 1]: {self.intensity}"
            )
        object.__setattr__(self, "params", dict(self.params))

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the CLI form ``kind[:intensity]``, e.g. ``drop:0.2``."""
        name, _, level = text.partition(":")
        try:
            intensity = float(level) if level else 0.1
        except ValueError:
            raise FaultInjectionError(
                f"bad fault intensity in {text!r}"
            ) from None
        return cls(kind=name.strip(), intensity=intensity)

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.intensity:g}"


@dataclass(frozen=True)
class FaultApplication:
    """What one spec actually did: how many records/peers/bytes it touched."""

    spec: FaultSpec
    affected: int
    detail: str = ""

    def __str__(self) -> str:
        extra = f" ({self.detail})" if self.detail else ""
        return f"{self.spec}: {self.affected} affected{extra}"


@dataclass
class FaultReport:
    """The full, ordered log of applied faults for one injection run."""

    seed: int
    target: str
    applications: List[FaultApplication] = field(default_factory=list)

    @property
    def total_affected(self) -> int:
        return sum(a.affected for a in self.applications)

    def counts_by_kind(self) -> Dict[FaultKind, int]:
        out: Dict[FaultKind, int] = {}
        for app in self.applications:
            out[app.spec.kind] = out.get(app.spec.kind, 0) + app.affected
        return out

    def format(self) -> str:
        lines = [f"fault injection on {self.target} (seed={self.seed}):"]
        for app in self.applications:
            lines.append(f"  {app}")
        if not self.applications:
            lines.append("  (no faults applied)")
        return "\n".join(lines)


def spec_rng_seed(base_seed: int, index: int, spec: FaultSpec) -> Tuple[int, int, int]:
    """Seed material making each (run, position, kind) stream independent."""
    kind_ordinal = list(FaultKind).index(spec.kind)
    return (base_seed & 0x7FFFFFFF, index, kind_ordinal)
