"""Independent attack-observation vantage points.

§7.3 compares the IXP-centric methodology against Jonker et al.'s
distributed view built from an Internet telescope (backscatter of spoofed
attacks) and amplification honeypots. This package simulates those two
vantage points over the same synthetic world, so the cross-validation the
paper can only discuss becomes an executable experiment.
"""

from repro.telescope.observatory import (
    ExternalObservation,
    ObservationSource,
    ObservatoryConfig,
    simulate_external_observations,
)

__all__ = [
    "ExternalObservation",
    "ObservationSource",
    "ObservatoryConfig",
    "simulate_external_observations",
]
