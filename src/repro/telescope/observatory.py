"""Telescope and honeypot observations of the scenario's attacks.

* An **Internet telescope** (network of dark addresses) sees the
  *backscatter* of spoofed attacks: a SYN-flooded victim answers
  SYN-ACKs towards the spoofed sources, a fraction of which fall into the
  telescope. Reflection attacks spoof only the victim's address, so the
  telescope misses them; direct unspoofed floods are invisible too —
  exactly the blind spot Jonker et al. acknowledge (§7.3).
* **Amplification honeypots** pose as reflectors; an attack that sprays
  its requests widely enough hits one and is logged with its protocol.
  They see reflection attacks and nothing else.

Detection is probabilistic per attack, with probabilities derived from
the vantage point's coverage, and observations carry their own clock
(jittered around the attack interval) — external feeds are never
perfectly aligned with IXP time.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.errors import ScenarioError

if TYPE_CHECKING:  # imported lazily at runtime (scenario imports us back)
    from repro.scenario.plan import ScenarioPlan


class ObservationSource(str, Enum):
    TELESCOPE = "telescope"
    HONEYPOT = "honeypot"


@dataclass(frozen=True)
class ExternalObservation:
    """One attack sighting at an external vantage point."""

    victim_ip: int
    start: float
    end: float
    source: ObservationSource
    #: UDP amplification port for honeypot sightings, None for backscatter
    protocol_port: Optional[int] = None


@dataclass(frozen=True)
class ObservatoryConfig:
    """Coverage of the two vantage points.

    ``telescope_coverage`` is the share of the spoofed-source space the
    dark addresses occupy (a /16 inside 100.64/10 ≈ 1.5%, but backscatter
    volume makes detection of any sizeable flood near-certain, so this is
    a per-attack detection probability). ``honeypot_detection`` is the
    chance an amplification attack rents at least one honeypot reflector.
    """

    telescope_detection: float = 0.85
    honeypot_detection: float = 0.55
    carpet_detection: float = 0.10   # direct, mostly unspoofed: blind spot
    #: external feeds also see attacks whose traffic never crosses the IXP
    remote_attack_detection: float = 0.45
    clock_jitter: float = 120.0

    def __post_init__(self) -> None:
        for name in ("telescope_detection", "honeypot_detection",
                     "carpet_detection", "remote_attack_detection"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ScenarioError(f"{name} must be a probability: {value}")
        if self.clock_jitter < 0:
            raise ScenarioError("clock_jitter must be >= 0")


def simulate_external_observations(
    plan: ScenarioPlan,
    rng: np.random.Generator,
    config: ObservatoryConfig | None = None,
) -> List[ExternalObservation]:
    """Generate the external feeds for every attack in the plan.

    Visible (and bilateral) attacks are observed according to their
    vector; *remote* DDoS events — whose traffic never crosses the IXP —
    are observed by the distributed vantage with
    ``remote_attack_detection``, which is precisely what makes the
    external view complementary (§7.3).
    """
    from repro.scenario.plan import AttackVector, EventCategory

    config = config or ObservatoryConfig()
    observations: List[ExternalObservation] = []

    def jitter() -> float:
        return float(rng.normal(0.0, config.clock_jitter / 2.0))

    for event in plan.events:
        if event.victim_ip is None:
            continue
        if event.category in (EventCategory.DDOS_VISIBLE, EventCategory.BILATERAL):
            assert event.attack_start is not None and event.attack_end is not None
            if event.vector is AttackVector.SYN_FLOOD:
                if rng.random() < config.telescope_detection:
                    observations.append(ExternalObservation(
                        victim_ip=event.victim_ip,
                        start=event.attack_start + jitter(),
                        end=event.attack_end + jitter(),
                        source=ObservationSource.TELESCOPE,
                    ))
            elif event.vector is AttackVector.AMPLIFICATION:
                if rng.random() < config.honeypot_detection and event.protocols:
                    port = event.protocols[int(rng.integers(len(event.protocols)))].port
                    observations.append(ExternalObservation(
                        victim_ip=event.victim_ip,
                        start=event.attack_start + jitter(),
                        end=event.attack_end + jitter(),
                        source=ObservationSource.HONEYPOT,
                        protocol_port=port,
                    ))
            elif event.vector is AttackVector.CARPET:
                if rng.random() < config.carpet_detection:
                    observations.append(ExternalObservation(
                        victim_ip=event.victim_ip,
                        start=event.attack_start + jitter(),
                        end=event.attack_end + jitter(),
                        source=ObservationSource.TELESCOPE,
                    ))
        elif event.category is EventCategory.DDOS_REMOTE:
            # the attack is real, it just does not cross this IXP
            if rng.random() < config.remote_attack_detection:
                start = event.first_announce - float(rng.uniform(60.0, 900.0))
                source = (ObservationSource.HONEYPOT if rng.random() < 0.6
                          else ObservationSource.TELESCOPE)
                observations.append(ExternalObservation(
                    victim_ip=event.victim_ip,
                    start=start + jitter(),
                    end=start + float(rng.uniform(600.0, 7_200.0)),
                    source=source,
                    protocol_port=(123 if source is ObservationSource.HONEYPOT
                                   else None),
                ))
    observations.sort(key=lambda o: o.start)
    return observations
