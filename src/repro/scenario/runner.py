"""Executes a scenario plan into measurement corpora.

The runner is the "world": it stands up the IXP (members, policies,
regular routes), replays every planned blackhole window through the route
server — recording the per-member acceptance timeline — generates all
traffic as flow aggregates, samples them at 1:N, marks each sampled packet
dropped or forwarded against the timeline, and packages the result as the
pair of corpora the analysis pipeline consumes.

Clock model: everything is generated on the *data-plane* clock. The
control-plane corpus timestamps are shifted by
``config.control_clock_skew`` (−0.04 s by default), so the time-offset
estimator of Fig. 2 has a real offset to find, while drop marking uses the
true (unskewed) times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.bgp.message import BGPUpdate, withdraw
from repro.bgp.policy import (
    BlackholeWhitelistPolicy,
    FullBlackholePolicy,
    ImportPolicy,
    MaxPrefixLengthPolicy,
    NoBlackholePolicy,
    PartialBlackholePolicy,
)
from repro.corpus.control import ControlPlaneCorpus
from repro.corpus.data import DataPlaneCorpus
from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.dataplane.sampler import IPFIXSampler
from repro.dataplane.timeline import AcceptanceTimeline
from repro.errors import ScenarioError
from repro.ixp.peeringdb import PeeringDBRecord
from repro import telemetry
from repro.ixp.platform import IXP
from repro.net.ip import IPv4Prefix
from repro.scenario.config import DAY, ScenarioConfig
from repro.scenario.paper import build_paper_plan
from repro.scenario.plan import (
    AttackVector,
    EventCategory,
    HostRole,
    PlannedEvent,
    PolicyKind,
    ScenarioPlan,
    VictimHost,
)
from repro.traffic.amplification import (
    AmplificationAttackConfig,
    generate_amplification_flows,
)
from repro.traffic.carpet import CarpetAttackConfig, PortPattern, generate_carpet_flows
from repro.traffic.legit import (
    ClientProfile,
    ServerProfile,
    generate_client_traffic,
    generate_server_traffic,
)
from repro.traffic.scan import ScanConfig, generate_scan_flows
from repro.traffic.synflood import SynFloodConfig, generate_syn_flood_flows
from repro.telescope.observatory import (
    ExternalObservation,
    simulate_external_observations,
)


@dataclass
class ScenarioResult:
    """Everything a study needs: the plan (ground truth), the corpora, the
    acceptance timeline, the live IXP object, and the independent
    telescope/honeypot observation feed (§7.3)."""

    config: ScenarioConfig
    plan: ScenarioPlan
    control: ControlPlaneCorpus
    data: DataPlaneCorpus
    timeline: AcceptanceTimeline
    ixp: IXP
    observations: List["ExternalObservation"] = field(default_factory=list)

    def ground_truth_events(self, category: EventCategory) -> List[PlannedEvent]:
        return self.plan.events_of(category)

    # -- day-sized segmentation (crash-safe corpus writing) -------------------

    @property
    def day_count(self) -> int:
        """Number of day-sized segments the corpora split into."""
        return max(1, int(np.ceil(self.config.duration / DAY)))

    def control_day_slices(self) -> List[List[BGPUpdate]]:
        """The control-plane messages split into contiguous day slices.

        Both corpora are time-sorted, so a day slice is a contiguous run
        and concatenating the slices reproduces the corpus byte for byte
        — the invariant checkpointed generation relies on.  Out-of-range
        timestamps (the clock-skewed first messages, anything at or past
        ``duration``) are clamped into the first/last day.
        """
        messages = list(self.control)
        times = np.array([m.time for m in messages], dtype=np.float64)
        return [messages[lo:hi] for lo, hi in _day_bounds(times, self.day_count)]

    def data_day_slices(self) -> List[np.ndarray]:
        """The sampled-packet array split into contiguous day slices."""
        times = self.data.packets["time"].astype(np.float64)
        return [self.data.packets[lo:hi]
                for lo, hi in _day_bounds(times, self.day_count)]


def _day_bounds(times: np.ndarray, days: int) -> List[tuple]:
    """Per-day ``(lo, hi)`` index bounds into a sorted timestamp array."""
    edges = np.arange(1, days) * DAY
    cuts = [0] + [int(i) for i in np.searchsorted(times, edges, side="left")]
    cuts.append(len(times))
    return list(zip(cuts[:-1], cuts[1:]))


def _policy_for(kind: PolicyKind, salt: int) -> ImportPolicy:
    if kind is PolicyKind.WHITELIST_32:
        return BlackholeWhitelistPolicy()
    if kind is PolicyKind.DEFAULT_LE24:
        return MaxPrefixLengthPolicy()
    if kind is PolicyKind.FULL_BLACKHOLE:
        return FullBlackholePolicy()
    if kind is PolicyKind.NO_BLACKHOLE:
        return NoBlackholePolicy()
    if kind is PolicyKind.PARTIAL:
        return PartialBlackholePolicy(0.5, salt=salt)
    raise ScenarioError(f"unknown policy kind: {kind}")


def run_scenario(config: ScenarioConfig, plan: ScenarioPlan | None = None) -> ScenarioResult:
    """Build (unless given) and execute the paper plan for ``config``.

    Every stage runs inside a telemetry span (``generate.plan`` …
    ``generate.observations``), so an activated telemetry context gets
    per-stage timings and the CLI can render progress lines from them.
    """
    telem = telemetry.current()
    if plan is None:
        with telem.span("generate.plan") as sp:
            plan = build_paper_plan(config)
            sp.attrs["events"] = len(plan.events)
    rng = np.random.default_rng(config.seed + 0x5EED)

    with telem.span("generate.members") as sp:
        ixp = _build_ixp(config, plan)
        sp.attrs["members"] = len(plan.members)
    with telem.span("generate.routes") as sp:
        _replay_control_plane(config, plan, ixp)
        timeline = ixp.finalize_timeline(config.duration)
        sp.attrs["updates"] = len(ixp.route_server.log)

    with telem.span("generate.traffic") as sp:
        flows = _generate_flows(config, plan, rng)
        sp.attrs["flows"] = len(flows)
    with telem.span("generate.sampling") as sp:
        sampler = IPFIXSampler(rng, rate=config.sampling_rate)
        packets = sampler.sample(flows)
        timeline.mark_dropped(packets)
        # Bilateral blackholes: dropped at a private peering, invisible to
        # the route server. Their attack packets are force-marked.
        bilateral = packets["label"] == int(FlowLabel.BILATERAL_BLACKHOLE)
        packets["dropped"] |= bilateral
        sp.attrs["packets"] = len(packets)
        telem.counter("runner.packets_dropped").inc(int(packets["dropped"].sum()))

    control = _skewed_control_corpus(ixp, config.control_clock_skew)
    data = DataPlaneCorpus(packets, sampling_rate=config.sampling_rate)
    with telem.span("generate.observations") as sp:
        observations = simulate_external_observations(plan, rng)
        sp.attrs["observations"] = len(observations)
    return ScenarioResult(config=config, plan=plan, control=control,
                          data=data, timeline=timeline, ixp=ixp,
                          observations=observations)


# ------------------------------------------------------------------ control


def _build_ixp(config: ScenarioConfig, plan: ScenarioPlan) -> IXP:
    ixp = IXP()
    blocks_by_announcer: Dict[int, List[IPv4Prefix]] = {}
    origin_by_announcer: Dict[int, List[int]] = {}
    for origin in plan.origin_asns:
        blocks_by_announcer.setdefault(origin.announcer_asn, []).append(origin.block)
        origin_by_announcer.setdefault(origin.announcer_asn, []).append(origin.asn)
    for member in plan.members:
        originated = [member.own_prefix] + blocks_by_announcer.get(member.asn, [])
        ixp.add_member(member.asn, policy=_policy_for(member.policy, member.asn),
                       originated=originated, name=f"AS{member.asn}")
        ixp.peeringdb.register(PeeringDBRecord(
            asn=member.asn, name=f"AS{member.asn} Networks",
            org_type=member.org_type,
        ))
    from repro.ixp.peeringdb import OrgType

    for origin in plan.origin_asns:
        if origin.org_type is not OrgType.UNKNOWN:
            ixp.peeringdb.register(PeeringDBRecord(
                asn=origin.asn, name=f"AS{origin.asn} Customer",
                org_type=origin.org_type,
            ))
    return ixp


def _session_resets(config: ScenarioConfig, plan: ScenarioPlan,
                    rng: np.random.Generator) -> Dict[int, List[float]]:
    """Per announcer: times at which its BGP session flaps. A reset makes
    the announcer withdraw and immediately re-announce everything it has
    active — the per-minute message spikes of Fig. 3."""
    announcers = sorted({e.announcer_asn for e in plan.events
                         if e.category is not EventCategory.BILATERAL})
    resets: Dict[int, List[float]] = {}
    if not announcers or config.session_resets < 1:
        return resets
    for _ in range(config.session_resets):
        asn = int(rng.choice(announcers))
        t = float(rng.uniform(0.1, 0.95) * config.duration)
        resets.setdefault(asn, []).append(t)
    for times in resets.values():
        times.sort()
    return resets


def _split_at_resets(window, resets: List[float], rng: np.random.Generator,
                     duration: float) -> List[tuple]:
    """Split one (announce, withdraw) window at the given reset times.

    Returns (announce, withdraw-or-None) pairs; the gap at a reset is a
    few seconds (withdraw and re-announce in the same BGP burst)."""
    start = window.announce_time
    end = window.withdraw_time  # may be None (zombie)
    pieces = []
    for t in resets:
        if t <= start or (end is not None and t >= end):
            continue
        pieces.append((start, t))
        start = min(t + float(rng.uniform(2.0, 30.0)), duration)
        if end is not None and start >= end:
            return pieces
    pieces.append((start, end))
    return pieces


def _announce_times(start: float, end: float | None, config: ScenarioConfig,
                    rng: np.random.Generator) -> List[float]:
    """The initial announcement plus periodic re-advertisements.

    Standing blackholes get refreshed on roughly ``reannounce_interval``
    (jittered, capped) — semantically no-ops at the route server, but they
    are the message volume Fig. 10's announcement count is made of."""
    times = [start]
    if config.reannounce_interval <= 0:
        return times
    horizon = config.duration if end is None else end
    if horizon - start > DAY:
        # long-lived manual blackholes and zombies sit in static configs
        # and are not refreshed — only automation chatters
        return times
    t = start
    for _ in range(200):  # cap refreshes per window
        t += float(rng.uniform(0.5, 1.5)) * config.reannounce_interval
        if t >= horizon:
            break
        times.append(t)
    return times


def _replay_control_plane(config: ScenarioConfig, plan: ScenarioPlan, ixp: IXP) -> None:
    """Convert every planned window into announce/withdraw updates and feed
    them, time-ordered, through the route server."""
    rng = np.random.default_rng(config.seed + 0xBEEF)
    resets = _session_resets(config, plan, rng)
    updates: List[BGPUpdate] = []
    for event in plan.events:
        if event.category is EventCategory.BILATERAL:
            continue  # never crosses the route server
        member = ixp.member(event.announcer_asn)
        announcer_resets = resets.get(event.announcer_asn, [])
        for window in event.windows:
            for start, end in _split_at_resets(window, announcer_resets, rng,
                                               config.duration):
                for t in _announce_times(start, end, config, rng):
                    updates.append(ixp.blackholing.build_announcement(
                        t, member, event.prefix,
                        targets=event.targets, origin_asn=event.origin_asn,
                    ))
                if end is not None and end < config.duration:
                    updates.append(withdraw(end, member.asn, event.prefix))
    updates.sort(key=lambda u: u.time)
    for update in updates:
        ixp.route_server.process(update)


def _skewed_control_corpus(ixp: IXP, skew: float) -> ControlPlaneCorpus:
    from dataclasses import replace

    messages = [replace(msg, time=msg.time + skew) for msg in ixp.route_server.log
                if msg.time > 0.0]  # drop the t=0 regular-route setup
    return ControlPlaneCorpus(messages)


# ------------------------------------------------------------------- traffic


def _generate_flows(config: ScenarioConfig, plan: ScenarioPlan,
                    rng: np.random.Generator) -> List[FlowSpec]:
    flows: List[FlowSpec] = []
    flows.extend(_attack_flows(config, plan, rng))
    flows.extend(_legit_flows(config, plan, rng))
    flows.extend(_scan_flows(config, plan, rng))
    return flows


def _attack_flows(config: ScenarioConfig, plan: ScenarioPlan,
                  rng: np.random.Generator) -> List[FlowSpec]:
    member_asns = plan.member_asns()
    amp_origins = sorted({a.origin_asn for a in plan.amplifier_pool.amplifiers})
    flows: List[FlowSpec] = []
    for event in plan.events:
        if event.vector is AttackVector.NONE or not event.has_attack:
            continue
        assert event.victim_ip is not None
        if event.vector is AttackVector.AMPLIFICATION:
            attack = AmplificationAttackConfig(
                victim_ip=event.victim_ip,
                start=event.attack_start, duration=event.attack_end - event.attack_start,
                total_pps=event.attack_pps, protocols=event.protocols,
                num_amplifiers=config.amplifiers_per_attack,
            )
            new_flows = generate_amplification_flows(rng, plan.amplifier_pool, attack)
        elif event.vector is AttackVector.CARPET:
            pattern = PortPattern.RANDOM
            draw = rng.random()
            if draw < 0.3:
                pattern = PortPattern.INCREASING
            elif draw < 0.5:
                pattern = PortPattern.MULTI_PROTOCOL
            attack = CarpetAttackConfig(
                victim_ip=event.victim_ip, start=event.attack_start,
                duration=event.attack_end - event.attack_start,
                total_pps=event.attack_pps, pattern=pattern,
            )
            new_flows = generate_carpet_flows(rng, attack, member_asns, amp_origins)
        else:  # SYN flood
            attack = SynFloodConfig(
                victim_ip=event.victim_ip,
                victim_port=int(rng.choice([80, 443, 25565])),
                start=event.attack_start,
                duration=event.attack_end - event.attack_start,
                total_pps=event.attack_pps,
            )
            new_flows = generate_syn_flood_flows(rng, attack, member_asns, amp_origins)
        if event.category is EventCategory.BILATERAL:
            new_flows = [_relabel(f, FlowLabel.BILATERAL_BLACKHOLE) for f in new_flows]
        flows.extend(new_flows)
    return flows


def _relabel(flow: FlowSpec, label: FlowLabel) -> FlowSpec:
    from dataclasses import replace

    return replace(flow, label=label)


def _legit_flows(config: ScenarioConfig, plan: ScenarioPlan,
                 rng: np.random.Generator) -> List[FlowSpec]:
    days = int(np.ceil(config.duration / DAY))
    flows: List[FlowSpec] = []
    for victim in plan.victims:
        if victim.role is HostRole.SILENT:
            flows.extend(_silent_trickle(config, plan, victim, days, rng))
            continue
        profile = _traffic_profile(victim)
        # each host talks to a stable handful of remote networks
        peer_idx = rng.choice(len(plan.remote_peers),
                              size=min(8, len(plan.remote_peers)), replace=False)
        peers = [plan.remote_peers[i] for i in peer_idx]
        for day in range(days):
            if victim.role is HostRole.SERVER:
                flows.extend(generate_server_traffic(
                    rng, profile, peers, day,
                    flows_per_day=config.legit_flows_per_day,
                ))
            else:
                flows.extend(generate_client_traffic(
                    rng, profile, peers, day,
                    flows_per_day=config.legit_flows_per_day,
                ))
    return flows


def _silent_trickle(config: ScenarioConfig, plan: ScenarioPlan,
                    victim: VictimHost, days: int,
                    rng: np.random.Generator) -> List[FlowSpec]:
    """Sub-sampling-floor traffic of a "silent" victim.

    At 1:10,000 this rarely produces a sample (the host stays in the
    paper's no-data class); at denser sampling it becomes visible — the
    measurement-visibility effect of §5.2."""
    if config.silent_trickle_pps <= 0:
        return []
    flows: List[FlowSpec] = []
    n_peers = len(plan.remote_peers)
    for day in range(days):
        if rng.random() > 0.3:  # most days see no activity at all
            continue
        ingress, origin = plan.remote_peers[int(rng.integers(n_peers))]
        start = day * DAY + float(rng.uniform(0, DAY / 2))
        flows.append(FlowSpec(
            start=start,
            duration=float(rng.uniform(DAY / 8, DAY / 2)),
            src_ip=int(0x0D000000 + rng.integers(0, 1 << 20)),
            dst_ip=victim.ip,
            protocol=6,
            src_port=443,
            dst_port=int(rng.integers(49152, 65536)),
            pps=config.silent_trickle_pps * float(rng.uniform(0.5, 1.5)),
            mean_packet_size=600.0,
            ingress_asn=ingress,
            origin_asn=origin,
            label=FlowLabel.LEGIT,
        ))
    return flows


def _traffic_profile(victim: VictimHost):
    if victim.role is HostRole.SERVER:
        return ServerProfile(
            ip=victim.ip, member_asn=victim.announcer_asn,
            services=victim.services, base_pps_in=2.0, base_pps_out=1.6,
        )
    return ClientProfile(
        ip=victim.ip, member_asn=victim.announcer_asn,
        base_pps_in=2.0, base_pps_out=1.0,
    )


def _scan_flows(config: ScenarioConfig, plan: ScenarioPlan,
                rng: np.random.Generator) -> List[FlowSpec]:
    """Scanners sweep the victim space all period long; near-silent event
    victims receive a slightly denser trickle so they show the paper's
    "<10 packets" signature rather than none at all."""
    near_silent_ips = {e.victim_ip for e in plan.events
                       if e.category is EventCategory.NEAR_SILENT and e.victim_ip}
    silent_ips = [v.ip for v in plan.victims if v.role is HostRole.SILENT]
    flows: List[FlowSpec] = []
    for scanner_ip, ingress, origin in plan.scanners:
        scan = ScanConfig(
            scanner_ip=scanner_ip, ingress_asn=ingress, origin_asn=origin,
            start=0.0, duration=config.duration, pps_per_target=0.003,
        )
        sample_size = min(len(silent_ips), max(1, int(0.05 * len(silent_ips))))
        if sample_size:
            targets = rng.choice(silent_ips, size=sample_size, replace=False)
            flows.extend(generate_scan_flows(rng, scan, targets.tolist()))
    if near_silent_ips:
        scanner_ip, ingress, origin = plan.scanners[0] if plan.scanners else (
            0x09000000, plan.member_asns()[0], 58_000)
        dense = ScanConfig(
            scanner_ip=scanner_ip + 100, ingress_asn=ingress, origin_asn=origin,
            start=0.0, duration=config.duration, pps_per_target=0.05,
        )
        flows.extend(generate_scan_flows(rng, dense, sorted(near_silent_ips)))
    return flows
