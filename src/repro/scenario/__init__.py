"""Scenario generation: configuration, the synthetic "paper world" plan
(members, policies, victims, attack/RTBH schedules), and the runner that
turns a plan into control- and data-plane corpora.
"""

from repro.scenario.config import ScenarioConfig
from repro.scenario.plan import (
    AttackVector,
    EventCategory,
    HostRole,
    PlannedEvent,
    ScenarioPlan,
    VictimHost,
)
from repro.scenario.paper import build_paper_plan
from repro.scenario.runner import ScenarioResult, run_scenario

__all__ = [
    "ScenarioConfig",
    "ScenarioPlan",
    "PlannedEvent",
    "VictimHost",
    "HostRole",
    "EventCategory",
    "AttackVector",
    "build_paper_plan",
    "run_scenario",
    "ScenarioResult",
]
