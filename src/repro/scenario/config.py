"""Scenario configuration.

All knobs of the synthetic world in one dataclass. The class defaults
describe the *full-scale* study (104 days, 830 members, ~34k RTBH events);
:meth:`ScenarioConfig.paper` applies a linear ``scale`` to the count-like
parameters so tests run in milliseconds and benchmarks in minutes while
every *fraction* (event mix, policy mix, timing) stays untouched — the
fractions are what the paper's figures are made of.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.errors import ScenarioError

DAY = 86_400.0


@dataclass(frozen=True)
class PolicyMix:
    """Traffic-weighted shares of member import-policy families (§4.2).

    Calibrated so /32 blackholes drop ≈50% of packets, /24 ≈97%, and
    /25–/31 almost nothing — the acceptance landscape of Figs 5–7.
    """

    whitelist_32: float = 0.36      # accepts /32 blackholes (and <= /24)
    default_le24: float = 0.42      # factory default: rejects > /24
    partial: float = 0.13           # inconsistent /32 acceptance
    full_blackhole: float = 0.06    # accepts any blackhole length
    no_blackhole: float = 0.03      # rejects all blackhole routes
    partial_accept_fraction: float = 0.5

    def __post_init__(self) -> None:
        total = (self.whitelist_32 + self.default_le24 + self.partial
                 + self.full_blackhole + self.no_blackhole)
        if abs(total - 1.0) > 1e-9:
            raise ScenarioError(f"policy mix must sum to 1, got {total}")
        if not 0.0 <= self.partial_accept_fraction <= 1.0:
            raise ScenarioError("partial_accept_fraction must be in [0,1]")


@dataclass(frozen=True)
class EventMix:
    """Shares of RTBH-event categories (Table 2 / Fig. 19)."""

    ddos_visible: float = 0.27      # attack traffic crosses the IXP
    ddos_remote: float = 0.19       # victim has traffic, but no anomaly
    silent: float = 0.42            # mostly below the sampling floor
    zombie: float = 0.08            # announced once, never withdrawn
    near_silent: float = 0.04       # scan-only trickle (<10 packets)

    def __post_init__(self) -> None:
        total = (self.ddos_visible + self.ddos_remote + self.silent
                 + self.zombie + self.near_silent)
        if abs(total - 1.0) > 1e-9:
            raise ScenarioError(f"event mix must sum to 1, got {total}")


@dataclass(frozen=True)
class VectorMix:
    """Attack vectors of visible DDoS events (Table 3 / Fig. 14)."""

    amplification: float = 0.92
    carpet: float = 0.05
    syn_flood: float = 0.03
    #: distribution of the number of amplification protocols per attack
    protocols_per_attack: tuple[tuple[int, float], ...] = (
        (1, 0.43), (2, 0.47), (3, 0.09), (4, 0.008), (5, 0.002),
    )

    def __post_init__(self) -> None:
        if abs(self.amplification + self.carpet + self.syn_flood - 1.0) > 1e-9:
            raise ScenarioError("vector mix must sum to 1")
        if abs(sum(w for _, w in self.protocols_per_attack) - 1.0) > 1e-6:
            raise ScenarioError("protocols_per_attack weights must sum to 1")


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything the generator needs; defaults are full paper scale."""

    seed: int = 7
    duration_days: float = 104.0

    # population
    num_members: int = 830
    num_victim_origin_asns: int = 170
    num_announcer_members: int = 78
    num_victim_hosts: int = 17_000
    num_amplifier_origin_asns: int = 1_200
    amplifiers_per_origin_asn: int = 4
    num_remote_peers: int = 400
    num_scanners: int = 12

    # events
    num_events: int = 34_000
    squatting_asns: int = 4
    squatting_prefixes: int = 21
    targeted_experiment_events: int = 120
    bilateral_event_fraction: float = 0.012
    #: BGP session resets over the whole period; each makes one announcer
    #: withdraw and re-announce everything within seconds (the message
    #: spikes of Fig. 3)
    session_resets: int = 40
    #: mean interval at which routers re-advertise a standing blackhole
    #: (route optimizers, config pushes, periodic refreshes). This BGP
    #: chatter is why the paper counts ~12 announcements per merged event
    #: (400k -> 34k, Fig. 10). 0 disables.
    reannounce_interval: float = 600.0

    # traffic
    amplifiers_per_attack: int = 150
    attack_pps_median: float = 5_000.0
    attack_pps_sigma: float = 1.0
    attack_pps_cap: float = 200_000.0
    attack_duration_median: float = 2_400.0
    attack_duration_sigma: float = 0.9
    attack_duration_cap: float = 8.0 * 3_600.0
    legit_flows_per_day: int = 2
    #: victims with recurring legitimate traffic (the 30% of §6.1)
    victims_with_traffic_fraction: float = 0.30
    client_share_of_traffic_victims: float = 0.80
    #: mean packet rate of the sub-sampling-floor traffic of "silent"
    #: victims: real but almost never sampled at 1:10,000 — the reason the
    #: paper's no-data share is partly a measurement artefact (§5.2)
    silent_trickle_pps: float = 0.010

    # event prefix lengths (visible + remote + silent events)
    prefix_length_weights: tuple[tuple[int, float], ...] = (
        (32, 0.90), (31, 0.005), (30, 0.005), (29, 0.005), (28, 0.005),
        (27, 0.005), (26, 0.005), (25, 0.01), (24, 0.05), (23, 0.005),
        (22, 0.005),
    )

    # measurement
    sampling_rate: int = 10_000
    control_clock_skew: float = -0.04

    # sub-mixes
    policy_mix: PolicyMix = field(default_factory=PolicyMix)
    event_mix: EventMix = field(default_factory=EventMix)
    vector_mix: VectorMix = field(default_factory=VectorMix)

    def __post_init__(self) -> None:
        if self.duration_days < 3:
            raise ScenarioError("need at least 3 days (72 h pre-windows)")
        positive = [
            "num_members", "num_victim_origin_asns", "num_announcer_members",
            "num_victim_hosts", "num_amplifier_origin_asns",
            "amplifiers_per_origin_asn", "num_remote_peers", "num_events",
            "amplifiers_per_attack", "sampling_rate",
        ]
        for name in positive:
            if getattr(self, name) < 1:
                raise ScenarioError(f"{name} must be >= 1")
        if self.num_announcer_members > self.num_members:
            raise ScenarioError("more announcers than members")
        if not 0.0 <= self.victims_with_traffic_fraction <= 1.0:
            raise ScenarioError("victims_with_traffic_fraction must be in [0,1]")
        if not 0.0 <= self.bilateral_event_fraction <= 0.5:
            raise ScenarioError("bilateral_event_fraction must be in [0, 0.5]")
        if abs(sum(w for _, w in self.prefix_length_weights) - 1.0) > 1e-6:
            raise ScenarioError("prefix_length_weights must sum to 1")
        if any(not 22 <= l <= 32 for l, _ in self.prefix_length_weights):
            raise ScenarioError("event prefix lengths must be /22../32")

    @property
    def duration(self) -> float:
        """Observation period in seconds."""
        return self.duration_days * DAY

    @classmethod
    def paper(cls, scale: float = 1.0, duration_days: float = 104.0,
              seed: int = 7, **overrides) -> "ScenarioConfig":
        """The paper scenario at a linear ``scale`` of the full study.

        Counts scale linearly (with sane floors); fractions and timing do
        not. ``overrides`` are applied last and win.
        """
        if not 0.0 < scale <= 1.0:
            raise ScenarioError(f"scale must be in (0, 1]: {scale}")

        def n(value: int, floor: int = 1) -> int:
            return max(floor, round(value * scale))

        params = dict(
            seed=seed,
            duration_days=duration_days,
            num_members=n(830, 20),
            # enough customer ASes that the Table 4 org-type join has
            # statistics even at small scales
            num_victim_origin_asns=n(170, 40),
            num_announcer_members=n(78, 5),
            num_victim_hosts=n(17_000, 40),
            # the reflector population must stay much larger than one
            # attack's fan-out, or every origin AS becomes a frequent
            # participant (Fig. 15 needs a long rare-participation tail)
            num_amplifier_origin_asns=n(1_200, 300),
            num_remote_peers=n(400, 20),
            num_scanners=n(12, 2),
            num_events=n(34_000, 40),
            squatting_asns=n(4, 1),
            squatting_prefixes=n(21, 2),
            targeted_experiment_events=n(120, 4),
            amplifiers_per_attack=n(150, 25),
            session_resets=n(40, 3),
        )
        params.update(overrides)
        config = cls(**params)
        if config.num_announcer_members > config.num_members:
            raise ScenarioError("scaled announcers exceed members")
        return config


def scaled_field_names() -> list[str]:
    """Names of the count-like fields `paper()` scales (for docs/tests)."""
    return [f.name for f in fields(ScenarioConfig)
            if f.name.startswith(("num_", "squatting", "targeted", "amplifiers_per_attack"))]
