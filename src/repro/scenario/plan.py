"""Declarative scenario plans.

A :class:`ScenarioPlan` is the complete, randomness-free description of one
synthetic world: who the members are and which import policy each runs,
which customer ASes host which victim hosts, the shared amplifier pool,
and — centrally — the list of :class:`PlannedEvent` records, one per
attack/RTBH episode, each carrying its ground truth (category, vector,
attack interval) next to the blackhole windows the operator will signal.

The plan is built once by :func:`repro.scenario.paper.build_paper_plan`
and then executed by :func:`repro.scenario.runner.run_scenario`; tests can
also construct small plans by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, Optional, Tuple

from repro.ixp.peeringdb import OrgType
from repro.mitigation.controller import BlackholeWindow
from repro.net.ip import IPv4Prefix
from repro.net.ports import AmplificationProtocol
from repro.traffic.amplification import AmplifierPool


class PolicyKind(str, Enum):
    """Member import-policy families (see :mod:`repro.bgp.policy`)."""

    WHITELIST_32 = "whitelist-32"
    DEFAULT_LE24 = "default-le24"
    PARTIAL = "partial"
    FULL_BLACKHOLE = "full-blackhole"
    NO_BLACKHOLE = "no-blackhole"


class HostRole(str, Enum):
    SERVER = "server"
    CLIENT = "client"
    SILENT = "silent"


class EventCategory(str, Enum):
    """Ground-truth category of a planned RTBH event."""

    DDOS_VISIBLE = "ddos-visible"
    DDOS_REMOTE = "ddos-remote"
    SILENT = "silent"
    NEAR_SILENT = "near-silent"
    ZOMBIE = "zombie"
    SQUATTING = "squatting"
    TARGETED_EXPERIMENT = "targeted-experiment"
    BILATERAL = "bilateral"


class AttackVector(str, Enum):
    AMPLIFICATION = "amplification"
    CARPET = "carpet"
    SYN_FLOOD = "syn-flood"
    NONE = "none"


@dataclass(frozen=True)
class MemberPlan:
    """One IXP member."""

    asn: int
    policy: PolicyKind
    own_prefix: IPv4Prefix
    org_type: OrgType
    is_announcer: bool = False


@dataclass(frozen=True)
class OriginASPlan:
    """A customer AS whose address space is reachable (and blackholable)
    through an announcing member."""

    asn: int
    announcer_asn: int
    block: IPv4Prefix
    org_type: OrgType


@dataclass(frozen=True)
class VictimHost:
    """One blackholable host and its legitimate-traffic personality."""

    ip: int
    origin_asn: int
    announcer_asn: int
    role: HostRole
    #: (protocol, port, weight) services for servers; empty otherwise
    services: Tuple[Tuple[int, int, float], ...] = ()

    @property
    def host_prefix(self) -> IPv4Prefix:
        return IPv4Prefix(self.ip, 32)


@dataclass(frozen=True)
class PlannedEvent:
    """One RTBH episode with its ground truth."""

    event_id: int
    category: EventCategory
    prefix: IPv4Prefix
    announcer_asn: int
    origin_asn: int
    windows: Tuple[BlackholeWindow, ...]
    victim_ip: Optional[int] = None
    vector: AttackVector = AttackVector.NONE
    protocols: Tuple[AmplificationProtocol, ...] = ()
    attack_start: Optional[float] = None
    attack_end: Optional[float] = None
    attack_pps: float = 0.0
    #: peer ASNs a targeted announcement is restricted to (None = all)
    targets: Optional[Tuple[int, ...]] = None

    @property
    def first_announce(self) -> float:
        return min(w.announce_time for w in self.windows)

    @property
    def has_attack(self) -> bool:
        return self.attack_start is not None and self.attack_end is not None


@dataclass
class ScenarioPlan:
    """The full world description handed to the runner."""

    duration: float
    members: List[MemberPlan]
    origin_asns: List[OriginASPlan]
    victims: List[VictimHost]
    events: List[PlannedEvent]
    amplifier_pool: AmplifierPool
    #: (ingress member ASN, remote origin ASN) pairs for legitimate traffic
    remote_peers: List[Tuple[int, int]]
    #: (scanner ip, ingress asn, origin asn)
    scanners: List[Tuple[int, int, int]] = field(default_factory=list)

    def member_asns(self) -> List[int]:
        return [m.asn for m in self.members]

    def events_of(self, category: EventCategory) -> List[PlannedEvent]:
        return [e for e in self.events if e.category is category]

    def victims_by_ip(self) -> dict[int, VictimHost]:
        return {v.ip: v for v in self.victims}
