"""Builds the synthetic "paper world" plan.

One function, :func:`build_paper_plan`, turns a
:class:`~repro.scenario.config.ScenarioConfig` into a fully materialised
:class:`~repro.scenario.plan.ScenarioPlan`: members with import policies,
customer (victim-origin) ASes with PeeringDB-style types, victim hosts
with client/server personalities, the shared amplifier pool, and one
:class:`~repro.scenario.plan.PlannedEvent` per RTBH episode with its
blackhole windows and ground-truth attack parameters.

Address plan (all disjoint):

====================  =============================
members' own space    ``70.0.0.0/8`` (/20 each)
victim-origin blocks  ``80.0.0.0/8`` (/22 each)
amplifiers            ``11.0.0.0/8``
carpet sources        ``12.0.0.0/8``
remote legit hosts    ``13.0.0.0/8``
spoofed SYN sources   ``100.64.0.0/10``
scanners              ``9.0.0.0/24``
====================  =============================
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ScenarioError
from repro.ixp.peeringdb import OrgType
from repro.mitigation.controller import (
    BlackholeWindow,
    RTBHControllerConfig,
    ddos_reaction_windows,
    manual_window,
    squatting_window,
    zombie_window,
)
from repro.net.ip import IPv4Prefix
from repro.net.ports import AMPLIFICATION_PROTOCOLS, AmplificationProtocol
from repro.scenario.config import DAY, ScenarioConfig
from repro.scenario.plan import (
    AttackVector,
    EventCategory,
    HostRole,
    MemberPlan,
    OriginASPlan,
    PlannedEvent,
    ScenarioPlan,
    VictimHost,
)
from repro.scenario.plan import PolicyKind
from repro.traffic.amplification import AmplifierPool

MEMBER_ASN_BASE = 1_000
ORIGIN_ASN_BASE = 20_000
AMPLIFIER_ASN_BASE = 40_000
REMOTE_ASN_BASE = 55_000
SCANNER_ASN_BASE = 58_000

MEMBER_SPACE_BASE = 0x46000000   # 70.0.0.0
ORIGIN_SPACE_BASE = 0x50000000   # 80.0.0.0
SCANNER_IP_BASE = 0x09000000     # 9.0.0.0

#: per-event popularity of amplification protocols; cLDAP, NTP and DNS are
#: "the most common amplifying protocols per event" (§5.4)
_PROTOCOL_WEIGHTS: Dict[str, float] = {
    "cLDAP": 0.24, "NTP": 0.22, "DNS": 0.19, "Memcached": 0.06,
    "CharGEN": 0.05, "SSDP": 0.05, "SNMPv2": 0.04, "RIPv1": 0.03,
    "TFTP": 0.03, "QOTD": 0.02, "NetBIOS": 0.02, "SIP": 0.02,
    "BitTorrent": 0.01, "Game-3478": 0.005, "Game-3659": 0.005,
    "Game-27005": 0.005, "Game-28960": 0.005,
}

#: server service-port menus (protocol, port); one is drawn per server
_SERVER_MENUS: Tuple[Tuple[Tuple[int, int], ...], ...] = (
    ((6, 443), (6, 80)),
    ((6, 80), (6, 443), (6, 22)),
    ((17, 53), (6, 53)),
    ((6, 25), (6, 993)),
    ((17, 25565), (6, 25565)),
    ((6, 3306), (6, 22)),
)


def build_paper_plan(config: ScenarioConfig) -> ScenarioPlan:
    """Materialise the paper scenario for ``config`` (deterministic in
    ``config.seed``)."""
    rng = np.random.default_rng(config.seed)
    members = _plan_members(rng, config)
    announcers = [m.asn for m in members if m.is_announcer]
    origins = _plan_origins(rng, config, announcers)
    victims = _plan_victims(rng, config, origins)
    pool = _plan_amplifier_pool(rng, config, members)
    remote_peers = _plan_remote_peers(rng, config, members)
    scanners = _plan_scanners(rng, config, members)
    events = _plan_events(rng, config, victims, origins, members)
    return ScenarioPlan(
        duration=config.duration,
        members=members,
        origin_asns=origins,
        victims=victims,
        events=events,
        amplifier_pool=pool,
        remote_peers=remote_peers,
        scanners=scanners,
    )


# ---------------------------------------------------------------- population


def _plan_members(rng: np.random.Generator, config: ScenarioConfig) -> List[MemberPlan]:
    mix = config.policy_mix
    # Stratified policy census: exact shares (largest remainder), shuffled.
    # A per-member independent draw would make the traffic-weighted /32
    # drop rate swing wildly at small member counts.
    shares = [
        (PolicyKind.WHITELIST_32, mix.whitelist_32),
        (PolicyKind.DEFAULT_LE24, mix.default_le24),
        (PolicyKind.PARTIAL, mix.partial),
        (PolicyKind.FULL_BLACKHOLE, mix.full_blackhole),
        (PolicyKind.NO_BLACKHOLE, mix.no_blackhole),
    ]
    counts = [int(share * config.num_members) for _, share in shares]
    remainders = [share * config.num_members - c
                  for (_, share), c in zip(shares, counts)]
    for idx in sorted(range(len(shares)), key=lambda i: -remainders[i]):
        if sum(counts) >= config.num_members:
            break
        counts[idx] += 1
    policy_census = [kind for (kind, _), c in zip(shares, counts)
                     for _ in range(c)]
    rng.shuffle(policy_census)

    org_types = [OrgType.NSP, OrgType.CABLE_DSL_ISP, OrgType.CONTENT,
                 OrgType.ENTERPRISE, OrgType.EDUCATIONAL]
    org_weights = np.array([0.35, 0.25, 0.20, 0.10, 0.10])
    announcer_set = set(
        rng.choice(config.num_members, size=config.num_announcer_members,
                   replace=False).tolist()
    )
    members = []
    for i in range(config.num_members):
        policy = policy_census[i]
        org = org_types[int(rng.choice(len(org_types), p=org_weights))]
        members.append(MemberPlan(
            asn=MEMBER_ASN_BASE + i,
            policy=policy,
            own_prefix=IPv4Prefix(MEMBER_SPACE_BASE + i * 4096, 20),
            org_type=org,
            is_announcer=i in announcer_set,
        ))
    return members


def _plan_origins(rng: np.random.Generator, config: ScenarioConfig,
                  announcers: Sequence[int]) -> List[OriginASPlan]:
    """Customer ASes: typed so the Table 4 host/AS-type join comes out.

    Client-heavy ASes are predominantly Cable/DSL/ISP, server-heavy ones
    Content; a share has no PeeringDB entry at all (``UNKNOWN``).
    """
    if not announcers:
        raise ScenarioError("no announcer members planned")
    client_types = [OrgType.CABLE_DSL_ISP, OrgType.NSP, OrgType.CONTENT,
                    OrgType.ENTERPRISE, OrgType.UNKNOWN]
    client_w = np.array([0.60, 0.14, 0.02, 0.01, 0.23])
    server_types = [OrgType.CONTENT, OrgType.CABLE_DSL_ISP, OrgType.NSP,
                    OrgType.ENTERPRISE, OrgType.UNKNOWN]
    server_w = np.array([0.34, 0.14, 0.13, 0.01, 0.38])
    origins = []
    for j in range(config.num_victim_origin_asns):
        # first 60% lean client, next 25% lean server, rest mixed/dark
        frac = j / config.num_victim_origin_asns
        if frac < 0.60:
            org = client_types[int(rng.choice(len(client_types), p=client_w))]
        elif frac < 0.85:
            org = server_types[int(rng.choice(len(server_types), p=server_w))]
        else:
            org = OrgType.UNKNOWN
        origins.append(OriginASPlan(
            asn=ORIGIN_ASN_BASE + j,
            announcer_asn=int(rng.choice(announcers)),
            block=IPv4Prefix(ORIGIN_SPACE_BASE + j * 1024, 22),
            org_type=org,
        ))
    return origins


def _plan_victims(rng: np.random.Generator, config: ScenarioConfig,
                  origins: Sequence[OriginASPlan]) -> List[VictimHost]:
    n_origins = len(origins)
    client_zone = max(1, int(0.60 * n_origins))
    server_zone = max(client_zone + 1, int(0.85 * n_origins))
    with_traffic = config.victims_with_traffic_fraction
    client_share = config.client_share_of_traffic_victims
    victims = []
    used_offsets: Dict[int, set] = {}
    for _ in range(config.num_victim_hosts):
        draw = rng.random()
        if draw < with_traffic * client_share:
            role = HostRole.CLIENT
            origin = origins[int(rng.integers(0, client_zone))]
        elif draw < with_traffic:
            role = HostRole.SERVER
            origin = origins[int(rng.integers(client_zone, server_zone))]
        else:
            role = HostRole.SILENT
            origin = origins[int(rng.integers(0, n_origins))]
        taken = used_offsets.setdefault(origin.asn, set())
        offset = int(rng.integers(4, origin.block.num_addresses - 4))
        while offset in taken:
            offset = int(rng.integers(4, origin.block.num_addresses - 4))
        taken.add(offset)
        services: Tuple[Tuple[int, int, float], ...] = ()
        if role is HostRole.SERVER:
            menu = _SERVER_MENUS[int(rng.integers(len(_SERVER_MENUS)))]
            services = tuple(
                (proto, port, 10.0 if k == 0 else 1.0)
                for k, (proto, port) in enumerate(menu)
            )
        victims.append(VictimHost(
            ip=origin.block.network_int + offset,
            origin_asn=origin.asn,
            announcer_asn=origin.announcer_asn,
            role=role,
            services=services,
        ))
    return victims


def _plan_amplifier_pool(rng: np.random.Generator, config: ScenarioConfig,
                         members: Sequence[MemberPlan]) -> AmplifierPool:
    # NSP members carry disproportionally much reflected traffic (Fig. 8):
    # weight them 4× when assigning handover ASes.
    weights = np.array([4.0 if m.org_type is OrgType.NSP else 1.0 for m in members])
    weights /= weights.sum()
    ingress_choices = rng.choice(
        [m.asn for m in members], size=config.num_amplifier_origin_asns,
        p=weights,
    )
    origin_asns = [AMPLIFIER_ASN_BASE + k
                   for k in range(config.num_amplifier_origin_asns)]
    # AmplifierPool.build picks one ingress per origin AS internally from
    # the list we pass; give it the pre-weighted draw to respect NSP skew.
    # Protocols go in popularity order so the broad-coverage top ASes host
    # reflectors for the most-attacked vectors.
    by_name = {p.name: p for p in AMPLIFICATION_PROTOCOLS}
    popular = [by_name[name] for name in
               sorted(_PROTOCOL_WEIGHTS, key=_PROTOCOL_WEIGHTS.get, reverse=True)]
    return AmplifierPool.build(
        rng,
        origin_asns=origin_asns,
        ingress_asns=ingress_choices.tolist(),
        amplifiers_per_asn=config.amplifiers_per_origin_asn,
        protocols=popular,
    )


def _plan_remote_peers(rng: np.random.Generator, config: ScenarioConfig,
                       members: Sequence[MemberPlan]) -> List[Tuple[int, int]]:
    member_asns = [m.asn for m in members]
    return [
        (int(rng.choice(member_asns)), REMOTE_ASN_BASE + r)
        for r in range(config.num_remote_peers)
    ]


def _plan_scanners(rng: np.random.Generator, config: ScenarioConfig,
                   members: Sequence[MemberPlan]) -> List[Tuple[int, int, int]]:
    member_asns = [m.asn for m in members]
    return [
        (SCANNER_IP_BASE + s, int(rng.choice(member_asns)), SCANNER_ASN_BASE + s)
        for s in range(config.num_scanners)
    ]


# ------------------------------------------------------------------- events


def _pick_protocols(rng: np.random.Generator,
                    config: ScenarioConfig) -> Tuple[AmplificationProtocol, ...]:
    counts, weights = zip(*config.vector_mix.protocols_per_attack)
    k = int(rng.choice(counts, p=np.array(weights) / sum(weights)))
    by_name = {p.name: p for p in AMPLIFICATION_PROTOCOLS}
    names = list(_PROTOCOL_WEIGHTS)
    w = np.array([_PROTOCOL_WEIGHTS[n] for n in names])
    w /= w.sum()
    picks = rng.choice(len(names), size=min(k, len(names)), replace=False, p=w)
    return tuple(by_name[names[i]] for i in picks)


def _lognormal(rng: np.random.Generator, median: float, sigma: float,
               cap: float) -> float:
    return float(min(cap, rng.lognormal(np.log(median), sigma)))


def _event_prefix(rng: np.random.Generator, config: ScenarioConfig,
                  victim: VictimHost) -> IPv4Prefix:
    lengths, weights = zip(*config.prefix_length_weights)
    length = int(rng.choice(lengths, p=np.array(weights) / sum(weights)))
    return IPv4Prefix(victim.ip, length)


def _plan_events(rng: np.random.Generator, config: ScenarioConfig,
                 victims: Sequence[VictimHost], origins: Sequence[OriginASPlan],
                 members: Sequence[MemberPlan]) -> List[PlannedEvent]:
    traffic_victims = [v for v in victims if v.role is not HostRole.SILENT]
    silent_victims = [v for v in victims if v.role is HostRole.SILENT]
    if not traffic_victims or not silent_victims:
        raise ScenarioError("victim population lacks traffic or silent hosts")

    mix = config.event_mix
    n = config.num_events
    n_visible = round(n * mix.ddos_visible)
    n_remote = round(n * mix.ddos_remote)
    n_silent = round(n * mix.silent)
    n_zombie = round(n * mix.zombie)
    n_near = max(0, n - n_visible - n_remote - n_silent - n_zombie)
    n_bilateral = round(n_visible * config.bilateral_event_fraction)

    events: List[PlannedEvent] = []
    eid = 0

    # --- visible DDoS (and bilateral twins) --------------------------------
    for kind in ([EventCategory.DDOS_VISIBLE] * n_visible
                 + [EventCategory.BILATERAL] * n_bilateral):
        victim = traffic_victims[int(rng.integers(len(traffic_victims)))]
        attack_start = float(rng.uniform(1.5 * DAY, config.duration - 0.5 * DAY))
        attack_dur = _lognormal(rng, config.attack_duration_median,
                                config.attack_duration_sigma,
                                config.attack_duration_cap)
        attack_end = min(attack_start + attack_dur, config.duration - 600.0)
        if attack_end <= attack_start:
            attack_end = attack_start + 300.0
        slow = rng.random() < 0.2
        controller = RTBHControllerConfig(
            reaction_delay=(600.0, 3_600.0) if slow else (30.0, 600.0),
        )
        windows = tuple(ddos_reaction_windows(rng, attack_start, attack_end,
                                              controller))
        vector_draw = rng.random()
        vm = config.vector_mix
        if vector_draw < vm.amplification:
            vector, protocols = AttackVector.AMPLIFICATION, _pick_protocols(rng, config)
        elif vector_draw < vm.amplification + vm.carpet:
            vector, protocols = AttackVector.CARPET, ()
        else:
            vector, protocols = AttackVector.SYN_FLOOD, ()
        events.append(PlannedEvent(
            event_id=eid, category=kind,
            prefix=_event_prefix(rng, config, victim),
            announcer_asn=victim.announcer_asn, origin_asn=victim.origin_asn,
            windows=windows, victim_ip=victim.ip, vector=vector,
            protocols=protocols, attack_start=attack_start,
            attack_end=attack_end,
            attack_pps=_lognormal(rng, config.attack_pps_median,
                                  config.attack_pps_sigma, config.attack_pps_cap),
        ))
        eid += 1

    # --- remote DDoS: blackholed, victim has traffic, no anomaly here ------
    for _ in range(n_remote):
        victim = traffic_victims[int(rng.integers(len(traffic_victims)))]
        start = float(rng.uniform(1.5 * DAY, config.duration - 0.5 * DAY))
        hidden_end = start + _lognormal(rng, config.attack_duration_median,
                                        config.attack_duration_sigma,
                                        config.attack_duration_cap)
        hidden_end = min(hidden_end, config.duration - 600.0)
        if hidden_end <= start:
            hidden_end = start + 300.0
        windows = tuple(ddos_reaction_windows(rng, start, hidden_end))
        events.append(PlannedEvent(
            event_id=eid, category=EventCategory.DDOS_REMOTE,
            prefix=_event_prefix(rng, config, victim),
            announcer_asn=victim.announcer_asn, origin_asn=victim.origin_asn,
            windows=windows, victim_ip=victim.ip,
        ))
        eid += 1

    # --- silent & near-silent ------------------------------------------------
    for kind, count in ((EventCategory.SILENT, n_silent),
                        (EventCategory.NEAR_SILENT, n_near)):
        for _ in range(count):
            victim = silent_victims[int(rng.integers(len(silent_victims)))]
            start = float(rng.uniform(0.2 * DAY, config.duration - 0.5 * DAY))
            if rng.random() < 0.5:
                hidden_end = start + _lognormal(rng, config.attack_duration_median,
                                                config.attack_duration_sigma,
                                                config.attack_duration_cap)
                hidden_end = min(hidden_end, config.duration - 60.0)
                if hidden_end <= start:
                    hidden_end = start + 300.0
                windows = tuple(ddos_reaction_windows(rng, start, hidden_end))
            else:
                windows = (manual_window(rng, start),)
            events.append(PlannedEvent(
                event_id=eid, category=kind,
                prefix=_event_prefix(rng, config, victim),
                announcer_asn=victim.announcer_asn, origin_asn=victim.origin_asn,
                windows=windows, victim_ip=victim.ip,
            ))
            eid += 1

    # --- zombies ---------------------------------------------------------------
    for _ in range(n_zombie):
        victim = silent_victims[int(rng.integers(len(silent_victims)))]
        start = float(rng.uniform(0.0, 0.9 * config.duration))
        events.append(PlannedEvent(
            event_id=eid, category=EventCategory.ZOMBIE,
            prefix=victim.host_prefix,
            announcer_asn=victim.announcer_asn, origin_asn=victim.origin_asn,
            windows=(zombie_window(start),), victim_ip=victim.ip,
        ))
        eid += 1

    # --- squatting protection ---------------------------------------------------
    squat_origins = list(origins[-config.squatting_asns:])
    for s in range(config.squatting_prefixes):
        origin = squat_origins[s % len(squat_origins)]
        length = int(rng.choice([22, 23, 24], p=[0.2, 0.2, 0.6]))
        prefix = IPv4Prefix(origin.block.network_int, length)
        start = float(rng.uniform(0.0, 0.3 * config.duration))
        window = squatting_window(rng, start)
        if window.withdraw_time is not None and window.withdraw_time > config.duration:
            window = BlackholeWindow(window.announce_time, None)
        events.append(PlannedEvent(
            event_id=eid, category=EventCategory.SQUATTING,
            prefix=prefix, announcer_asn=origin.announcer_asn,
            origin_asn=origin.asn, windows=(window,),
        ))
        eid += 1

    # --- targeted-announcement experiment (shapes Fig. 4) ----------------------
    member_asns = [m.asn for m in members]
    experimenting = sorted({origins[0].announcer_asn, origins[1 % len(origins)].announcer_asn})
    exp_origins = [o for o in origins if o.announcer_asn in experimenting] or origins[:1]
    for _ in range(config.targeted_experiment_events):
        origin = exp_origins[int(rng.integers(len(exp_origins)))]
        host_ip = origin.block.network_int + int(rng.integers(4, 1020))
        # corpora at the 3-day minimum leave no room after the 72h
        # pre-window; start as late as the duration allows instead
        latest = min(20.0 * DAY, config.duration - DAY)
        start = float(rng.uniform(min(3.0 * DAY, latest), latest))
        hold = float(rng.uniform(2.0 * DAY, 10.0 * DAY))
        end = min(start + hold, config.duration)
        hidden = rng.random()  # fraction of peers excluded: 20%–70%
        exclude = rng.choice(member_asns,
                             size=int(len(member_asns) * (0.2 + 0.5 * hidden)),
                             replace=False)
        targets = tuple(sorted(set(member_asns) - set(exclude.tolist())
                               - {origin.announcer_asn}))
        events.append(PlannedEvent(
            event_id=eid, category=EventCategory.TARGETED_EXPERIMENT,
            prefix=IPv4Prefix(host_ip, 32),
            announcer_asn=origin.announcer_asn, origin_asn=origin.asn,
            windows=(BlackholeWindow(start, end),), victim_ip=host_ip,
            targets=targets,
        ))
        eid += 1

    events.sort(key=lambda e: e.first_announce)
    return events
