"""EWMA-based traffic anomaly detection (§5.3).

A value is anomalous when it exceeds the exponentially weighted moving
average of the series *up to the previous slot* by more than
``threshold × SD`` (2.5 by default), where the SD is the matching
exponentially weighted standard deviation. Comparing against the stats of
the previous slot keeps a spike from masking itself.

The paper requires a full 24-hour window (288 five-minute slots) before the
first detection; slots before that are never flagged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.ewma import ewm_mean_std


@dataclass(frozen=True)
class AnomalyConfig:
    """Detector parameters; defaults mirror §5.3.

    ``min_value`` is an absolute floor: a slot can only alarm when its raw
    value reaches it. On sampled data this is essential — a single sampled
    packet over a silent history exceeds any SD-relative bound, and without
    a floor every isolated sample would count as a level-5 anomaly. The
    paper's observation that thresholds as extreme as 10 SD give "very
    stable results" reflects the same property: real anomalies clear any
    sane floor by orders of magnitude.
    """

    span: int = 288          # 24 h of 5-minute slots
    threshold: float = 2.5   # multiples of the moving SD
    min_window: int = 288    # no detection before a full window
    min_value: float = 4.0   # absolute floor for an anomalous slot

    def __post_init__(self) -> None:
        if self.span < 1:
            raise ValueError(f"span must be >= 1: {self.span}")
        if self.threshold <= 0:
            raise ValueError(f"threshold must be positive: {self.threshold}")
        if self.min_window < 1:
            raise ValueError(f"min_window must be >= 1: {self.min_window}")
        if self.min_value < 0:
            raise ValueError(f"min_value must be >= 0: {self.min_value}")


class EWMAAnomalyDetector:
    """Flags anomalous slots in a scalar time series."""

    def __init__(self, config: AnomalyConfig | None = None):
        self.config = config or AnomalyConfig()

    def detect(self, series: np.ndarray) -> np.ndarray:
        """Boolean mask of anomalous slots.

        A slot ``t`` is anomalous when
        ``x_t > mean_{t-1} + threshold * sd_{t-1}`` and ``t >= min_window``.
        Flat series (SD of zero) only flag strictly positive jumps above
        the mean, so a constant series never alarms.
        """
        x = np.asarray(series, dtype=np.float64)
        flags = np.zeros(len(x), dtype=bool)
        if len(x) < 2:
            return flags
        mean, sd = ewm_mean_std(x, self.config.span)
        prev_mean, prev_sd = mean[:-1], sd[:-1]
        exceeds = x[1:] > prev_mean + self.config.threshold * prev_sd
        # With sd == 0 the bound degenerates to "x > mean": require a real
        # jump (strictly above a flat history) to avoid float-noise alarms.
        flat = prev_sd == 0.0
        exceeds &= ~flat | (x[1:] > prev_mean * (1.0 + 1e-9) + 1e-9)
        exceeds &= x[1:] >= self.config.min_value
        flags[1:] = exceeds
        flags[: self.config.min_window] = False
        return flags

    def detect_multi(self, features: np.ndarray) -> np.ndarray:
        """Per-feature detection over a ``(slots, features)`` matrix.

        Returns a boolean matrix of the same shape; the per-slot *anomaly
        level* of §5.3 is its row-wise sum.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError(f"expected 2-D (slots, features), got {features.shape}")
        out = np.zeros(features.shape, dtype=bool)
        for j in range(features.shape[1]):
            out[:, j] = self.detect(features[:, j])
        return out

    def anomaly_level(self, features: np.ndarray) -> np.ndarray:
        """Number of simultaneously anomalous features per slot."""
        return self.detect_multi(features).sum(axis=1)
