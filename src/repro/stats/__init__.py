"""Statistical building blocks used by the analysis pipeline: exponentially
weighted moving statistics, EWMA-based anomaly detection, empirical CDFs,
the control/data-plane time-offset maximum-likelihood estimator, and the
RadViz projection.
"""

from repro.stats.ewma import ewm_mean, ewm_mean_std
from repro.stats.anomaly import AnomalyConfig, EWMAAnomalyDetector
from repro.stats.cdf import EmpiricalCDF
from repro.stats.mle import OffsetEstimate, estimate_time_offset
from repro.stats.radviz import radviz_projection

__all__ = [
    "ewm_mean",
    "ewm_mean_std",
    "EWMAAnomalyDetector",
    "AnomalyConfig",
    "EmpiricalCDF",
    "estimate_time_offset",
    "OffsetEstimate",
    "radviz_projection",
]
