"""Exponentially weighted moving statistics.

Implements exactly the estimator of §5.3: with span ``s`` the decay is
``alpha = 2 / (s + 1)``, weights ``w_i = (1 - alpha)**i`` (most recent value
heaviest) and

    y_t = sum_i w_i * x_{t-i} / sum_i w_i

i.e. the ``adjust=True`` convention of common data-analysis tools the paper
cites. The moving standard deviation uses the same weights
(``sqrt(E_w[x^2] - E_w[x]^2)``, the biased weighted variance).

The recursion ``num_t = x_t + (1-alpha) * num_{t-1}`` is evaluated in
vectorized blocks: within a block the cumulative sums are computed with a
single scaling trick, and only the carry crosses block boundaries, so long
series stay fast and numerically safe.
"""

from __future__ import annotations

import numpy as np

_BLOCK = 512


def _ewm_numerators(x: np.ndarray, alpha: float) -> np.ndarray:
    """num_t = sum_{i<=t} (1-alpha)^(t-i) * x_i, computed blockwise."""
    decay = 1.0 - alpha
    n = len(x)
    if decay <= 0.0:
        return x.astype(np.float64)
    # Keep decay**-block below ~1e87 so the scaling trick cannot overflow.
    block = int(min(_BLOCK, max(1.0, 200.0 / -np.log(decay))))
    out = np.empty(n, dtype=np.float64)
    carry = 0.0
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        chunk = x[lo:hi].astype(np.float64)
        k = hi - lo
        # within the block: num_t = decay^t * cumsum(x_i / decay^i) + decay^(t+1) * carry
        powers = decay ** np.arange(k)
        scaled = np.cumsum(chunk / powers)
        out[lo:hi] = powers * scaled + powers * decay * carry
        carry = out[hi - 1]
    return out


def ewm_mean(x: np.ndarray, span: int) -> np.ndarray:
    """Exponentially weighted moving average with the paper's span
    convention (``alpha = 2 / (span + 1)``, adjust=True)."""
    if span < 1:
        raise ValueError(f"span must be >= 1: {span}")
    x = np.asarray(x, dtype=np.float64)
    if len(x) == 0:
        return x.copy()
    alpha = 2.0 / (span + 1.0)
    num = _ewm_numerators(x, alpha)
    den = _ewm_numerators(np.ones_like(x), alpha)
    return num / den


def ewm_mean_std(x: np.ndarray, span: int) -> tuple[np.ndarray, np.ndarray]:
    """EWM mean and standard deviation with shared weights.

    The variance is the biased weighted variance
    ``E_w[x^2] - (E_w[x])^2``, floored at zero against rounding.
    """
    x = np.asarray(x, dtype=np.float64)
    mean = ewm_mean(x, span)
    mean_sq = ewm_mean(x * x, span)
    var = mean_sq - mean * mean
    # Cancellation noise: a constant series must yield exactly zero SD.
    var[var < 1e-12 * np.maximum(mean_sq, 1e-300)] = 0.0
    return mean, np.sqrt(np.maximum(var, 0.0))
