"""RadViz projection (Hoffman et al., as used in Fig. 16).

RadViz places one anchor per feature evenly around the unit circle and
attaches each data point to every anchor with a spring whose stiffness is
the (normalised) feature value; the point settles at the stiffness-weighted
mean of the anchor positions. Points therefore land near the anchors of
the features on which they score high.
"""

from __future__ import annotations

import numpy as np


def radviz_anchors(num_features: int) -> np.ndarray:
    """Anchor coordinates: ``(num_features, 2)`` on the unit circle,
    starting at angle 0 and proceeding counter-clockwise."""
    if num_features < 2:
        raise ValueError("RadViz needs at least 2 features")
    angles = 2.0 * np.pi * np.arange(num_features) / num_features
    return np.column_stack([np.cos(angles), np.sin(angles)])


def radviz_projection(values: np.ndarray,
                      normalizer: np.ndarray | float | None = None) -> np.ndarray:
    """Project an ``(n, d)`` feature matrix into RadViz 2-D coordinates.

    ``normalizer`` divides the raw values first (the paper normalises port
    counts by the maximum port number); values are then clipped to
    ``[0, 1]``. Rows whose features are all zero have no springs and are
    placed at the origin.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"expected (n, d) matrix, got shape {values.shape}")
    if (values < 0).any():
        raise ValueError("RadViz features must be non-negative")
    if normalizer is not None:
        values = values / normalizer
    values = np.clip(values, 0.0, 1.0)

    anchors = radviz_anchors(values.shape[1])
    weights = values.sum(axis=1, keepdims=True)
    coords = values @ anchors
    nonzero = weights[:, 0] > 0
    coords[nonzero] /= weights[nonzero]
    coords[~nonzero] = 0.0
    return coords
