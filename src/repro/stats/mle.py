"""Maximum-likelihood estimation of the control/data-plane clock offset
(§3.1, Fig. 2).

All measurement devices at the IXP synchronise over NTP, but the two data
sets may still disagree by a small offset. The estimator slides the
data-plane timestamps of *dropped* packets against the control-plane
blackhole-announcement intervals: at the true offset, the share of dropped
packets that fall inside an announced interval of a covering blackhole
prefix is maximal. That overlap share, as a function of the trial offset,
is the likelihood curve of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.dataplane.timeline import IntervalSet
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix


@dataclass(frozen=True)
class OffsetEstimate:
    """Result of the offset scan: the likelihood curve and its peak."""

    offsets: np.ndarray          # trial offsets (seconds, control minus data)
    overlap_share: np.ndarray    # share of dropped packets explained
    best_offset: float
    best_share: float
    total_packets: int

    def as_rows(self) -> list[tuple[float, float]]:
        return list(zip(self.offsets.tolist(), self.overlap_share.tolist()))


def estimate_time_offset(
    dropped_times_by_prefix: Mapping[IPv4Prefix, np.ndarray],
    announced_intervals: Mapping[IPv4Prefix, IntervalSet],
    offsets: np.ndarray | None = None,
) -> OffsetEstimate:
    """Scan candidate offsets and locate the maximum-overlap offset.

    ``dropped_times_by_prefix`` maps each blackhole prefix to the data-plane
    timestamps of packets dropped while destined into it;
    ``announced_intervals`` holds the control-plane announcement intervals
    per prefix. ``offsets`` defaults to a ±2 s scan in 40 ms steps (the
    paper resolves a -0.04 s offset).
    """
    if offsets is None:
        offsets = np.arange(-2.0, 2.0 + 1e-9, 0.04)
    offsets = np.asarray(offsets, dtype=np.float64)
    if len(offsets) == 0:
        raise AnalysisError("no trial offsets given")

    total = sum(len(t) for t in dropped_times_by_prefix.values())
    if total == 0:
        raise AnalysisError("no dropped packets to align")

    matched = np.zeros(len(offsets), dtype=np.int64)
    for prefix, times in dropped_times_by_prefix.items():
        intervals = announced_intervals.get(prefix)
        if intervals is None or len(intervals) == 0:
            continue
        times = np.asarray(times, dtype=np.float64)
        for i, offset in enumerate(offsets):
            # Shift data-plane times onto the control-plane clock.
            matched[i] += int(intervals.contains(times + offset).sum())

    share = matched / total
    # On plateaus (several offsets explain the same share) prefer the
    # offset closest to zero: clocks are NTP-synchronised, so the smallest
    # consistent offset is the most likely one.
    best_share_value = share.max()
    candidates = np.flatnonzero(share == best_share_value)
    best = int(candidates[np.argmin(np.abs(offsets[candidates]))])
    return OffsetEstimate(
        offsets=offsets,
        overlap_share=share,
        best_offset=float(offsets[best]),
        best_share=float(share[best]),
        total_packets=total,
    )
