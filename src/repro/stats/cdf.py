"""Empirical cumulative distribution functions.

Every CDF figure of the paper (Figs 6, 14, 15, 18) is rendered from this
class: it stores the sorted sample, answers point evaluations, quantiles,
and emits plot-ready ``(x, F(x))`` series.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class EmpiricalCDF:
    """The right-continuous ECDF of a 1-D sample."""

    def __init__(self, samples: Sequence[float] | np.ndarray):
        data = np.asarray(samples, dtype=np.float64)
        if data.ndim != 1:
            raise ValueError(f"expected 1-D samples, got shape {data.shape}")
        if len(data) == 0:
            raise ValueError("cannot build an ECDF from an empty sample")
        if np.isnan(data).any():
            raise ValueError("samples contain NaN")
        self._sorted = np.sort(data)

    @property
    def n(self) -> int:
        return len(self._sorted)

    @property
    def min(self) -> float:
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        return float(self._sorted[-1])

    def evaluate(self, x: float | np.ndarray) -> float | np.ndarray:
        """F(x) = P[X <= x]."""
        result = np.searchsorted(self._sorted, np.asarray(x, dtype=np.float64),
                                 side="right") / self.n
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(result)
        return result

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        return self.evaluate(x)

    def quantile(self, q: float | np.ndarray) -> float | np.ndarray:
        """Inverse CDF (type-1 / lower quantile)."""
        q_arr = np.asarray(q, dtype=np.float64)
        if ((q_arr < 0) | (q_arr > 1)).any():
            raise ValueError("quantiles must be in [0, 1]")
        idx = np.ceil(q_arr * self.n).astype(int) - 1
        idx = np.clip(idx, 0, self.n - 1)
        result = self._sorted[idx]
        if np.isscalar(q) or np.ndim(q) == 0:
            return float(result)
        return result

    @property
    def median(self) -> float:
        return float(self.quantile(0.5))

    def quartiles(self) -> tuple[float, float, float]:
        """(Q1, median, Q3)."""
        q = self.quantile(np.array([0.25, 0.5, 0.75]))
        return float(q[0]), float(q[1]), float(q[2])

    def series(self, points: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Plot-ready ``(x, F(x))`` arrays.

        Without ``points``, uses every distinct sample value; with it, an
        even quantile grid of the requested size.
        """
        if points is None:
            x = np.unique(self._sorted)
        else:
            if points < 2:
                raise ValueError("need at least 2 points")
            x = self.quantile(np.linspace(0.0, 1.0, points))
            x = np.asarray(x)
        return x, np.asarray(self.evaluate(x))

    def describe(self) -> dict[str, float]:
        """Summary statistics used in the benchmark reports."""
        q1, med, q3 = self.quartiles()
        return {
            "n": float(self.n),
            "min": self.min,
            "q1": q1,
            "median": med,
            "q3": q3,
            "max": self.max,
            "mean": float(self._sorted.mean()),
        }
