"""Command-line interface.

Ten subcommands mirror the library's layering::

    python -m repro generate --scale 0.02 --days 30 --out corpus_dir
                             [--resume] [--progress] [--jobs N]
                             [--keep-segments]
    python -m repro validate corpus_dir [--json] [--cache-dir DIR]
    python -m repro doctor corpus_dir [--repair] [--quick] [--json]
                                      [--cache-dir DIR]
    python -m repro inject corpus_dir --out degraded_dir --fault drop:0.1
    python -m repro analyze corpus_dir [--strict | --lenient] [--json]
                                       [--supervised --timeout 300
                                        --retries 2] [--resume]
                                       [--jobs N] [--cache-dir DIR]
                                       [--cache-max-bytes N]
                                       [--trace t.jsonl --metrics m.json]
    python -m repro watch corpus_dir [--interval 2] [--once]
                                     [--until-days N] [--max-ticks N]
                                     [--analyses a,b] [--no-cache] [--json]
                                     [--tap [NAME=]FORMAT:PATH ...]
                                     [--reset-stream] [--obs-port N]
                                     [--slo-lag-days N ...]
                                     [--scrub-every N]
    python -m repro status corpus_dir [--url URL] [--json]
    python -m repro advance corpus_dir --days 2 [--json]
    python -m repro summary --scale 0.01 --days 14 [--json]
    python -m repro report t.jsonl

``generate`` writes the corpora (plus the membership/PeeringDB sidecar and
a checksummed ``manifest.json`` stamped with the run's provenance);
``validate`` integrity-checks a corpus directory without running any
analysis; ``inject`` produces a deterministically-degraded copy of a corpus
for robustness work; ``analyze`` re-loads a corpus and prints the study's
headline numbers — leniently by default, isolating each figure behind
typed-exception capture; ``summary`` generates and analyzes in memory;
``report`` renders the per-stage timing/throughput table from a
``--trace`` file.

Crash safety: ``generate`` writes the corpus in day-sized, atomically
committed segments behind a checkpoint journal, so ``generate --resume``
finishes an interrupted run byte-identically.  ``analyze --supervised``
(implied by ``--timeout`` or ``--resume``) runs each analysis in a child
process with a wall-clock timeout and bounded retries; ``analyze
--resume`` re-runs only analyses with no journaled terminal outcome.

Streaming: ``generate --keep-segments`` retains the committed per-day
segments; ``watch`` then tails the corpus's checkpoint journal,
ingesting only newly committed days and advancing checkpointed
per-analysis reducers, so its reports carry the *same* value
fingerprints a from-scratch batch ``analyze`` would produce for the
consumed prefix; ``advance --days N`` extends a kept-segments corpus by
N more days through the same commit log.

Live feeds: ``watch --tap [NAME=]FORMAT:PATH`` supervises external BGP
feeds (``mrt``, ``ris``, or ``exabgp`` format) into the watched corpus's
commit log — stall watchdog, deterministic reconnect backoff, per-tap
circuit breaker, bounded ingest queue, malformed-record quarantine under
``.taps/`` — so foreign feeds are consumed exactly like kept day
segments; a permanently dead tap degrades the session (reported
per-tap) instead of failing it.  A corrupt stream checkpoint exits with
its own code; ``watch --reset-stream`` discards it and re-consumes the
commit log from day 0.

Parallelism: ``--jobs N`` fans work across N forked workers (0 = all
CPUs) — day segments for ``generate``, supervised analyses for
``analyze`` — with byte-identical results; ``--jobs 1`` (the default) is
the serial reference path.  ``analyze --cache-dir DIR`` keeps a
content-addressed result cache keyed on (corpus digest, config hash,
analysis), so re-analyzing an unchanged corpus skips finished analyses;
``validate`` fails a corpus whose cache holds results keyed to a
different corpus digest.

Observability: ``--trace`` writes the telemetry spans as JSONL,
``--metrics`` the final metrics snapshot as JSON, ``--progress`` streams
stage lines to stderr, and ``-q`` silences informational output.  Without
any of these flags the no-op telemetry backend is active and the
instrumentation layer costs nothing.

Operations: every ``watch`` session runs the live operations plane —
atomic state snapshots plus a severity-leveled JSONL event log under
``<corpus>/.obs/``, SLO-evaluated health (lag, dead taps, quarantine
rate, checkpoint staleness; tune with the ``--slo-*`` flags), and, with
``--obs-port N``, a threaded HTTP endpoint serving ``/metrics``
(Prometheus text), ``/healthz``, ``/readyz``, and ``/status``.
``status`` renders the same verdict from the on-disk snapshot (or a
live endpoint via ``--url``) and exits 0/4/5 for ok/degraded/unhealthy.

Self-healing: ``doctor`` scrubs every durable artifact a corpus
directory carries — journals, day segments, corpus files, manifest,
stream checkpoint, cache entries, obs state, tap offset sidecars —
against the redundancy the state plane records (checksums in journal
commits, finalize entries, and the manifest) and reports typed damage;
``doctor --repair`` heals what redundancy covers (truncate torn
journals, regenerate synthetic segments, re-slice tap segments from the
finalized files, rebuild manifests and stream checkpoints, evict
drifted cache entries) and quarantines the rest under
``.doctor.quarantine/``; ``watch`` runs the quick scrub periodically in
the background (``--scrub-every``), degrading readiness on damage.
``--cache-max-bytes`` bounds the result cache by LRU eviction.

Exit codes: 0 success; 1 validation or analysis failures, or a damaged
(``doctor``) / unrepaired (``doctor --repair``) corpus; 2 missing
inputs or bad usage; 3 a corpus (or trace file, or obs snapshot) that
could not be ingested at all; 4 an analysis run where *every* analysis
completed but none on clean inputs (fully degraded — "success" CI
should not trust), or a degraded ``status`` verdict; 5 a corrupt/torn
stream checkpoint (recover with ``watch --reset-stream``), or an
unhealthy ``status`` verdict; 6 a live obs endpoint (``status --url``)
that cannot be reached at all (connection refused/DNS/timeout — the
session is probably not running).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro import AnalysisPipeline, ControlPlaneCorpus, DataPlaneCorpus
from repro import telemetry
from repro.core.hosts import HostClass
from repro.core.report import format_table, pct, seconds_human
from repro.core.study import StudyReport
from repro.corpus.ingest import ErrorPolicy
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    validate_corpus,
)
from repro.corpus.platform import load_platform
from repro.errors import (
    CheckpointError,
    DoctorError,
    FaultInjectionError,
    ObsError,
    ObsSnapshotError,
    ObsUnreachableError,
    ReproError,
    StreamCheckpointError,
    StreamError,
    TapError,
    TelemetryError,
)
from repro.faults import FaultSpec, degrade_corpus_dir
from repro.ixp.peeringdb import PeeringDB
from repro.scenario import ScenarioConfig, run_scenario
from repro.telemetry.report import load_trace, render_report

#: process exit codes (documented in the module docstring)
EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2
EXIT_UNREADABLE = 3
EXIT_ALL_DEGRADED = 4
EXIT_STREAM_CHECKPOINT = 5
EXIT_OBS_UNREACHABLE = 6

#: checkpoint journal for supervised/resumable ``analyze`` runs, kept in
#: the corpus directory (dot-prefixed: excluded from manifests)
ANALYZE_JOURNAL_FILE = ".analysis.checkpoint.jsonl"


def _study_exit_code(report: StudyReport) -> int:
    """Map a study report onto the documented exit codes."""
    if not report.ok:
        return EXIT_FAILURES
    if report.all_degraded:
        return EXIT_ALL_DEGRADED
    return EXIT_OK


def _make_telemetry(args: argparse.Namespace) -> telemetry.Telemetry:
    """The telemetry context one CLI invocation runs under.

    A real collecting context is created only when some output wants it
    (``--trace``, ``--metrics``, or ``--progress``); otherwise the shared
    no-op backend keeps the instrumentation free.
    """
    wants_progress = getattr(args, "progress", False) and not getattr(
        args, "quiet", False)
    progress = (lambda line: print(line, file=sys.stderr)) \
        if wants_progress else None
    if progress is None and not getattr(args, "trace", None) \
            and not getattr(args, "metrics", None):
        return telemetry.NULL
    return telemetry.Telemetry(progress=progress)


def _write_telemetry(telem: telemetry.Telemetry, args: argparse.Namespace,
                     manifest: dict, started: float) -> None:
    """Flush ``--trace`` / ``--metrics`` outputs, stamping the wall time."""
    manifest["wall_seconds"] = time.perf_counter() - started
    if getattr(args, "trace", None):
        telem.write_trace(args.trace, manifest=manifest)
    if getattr(args, "metrics", None):
        telem.write_metrics(args.metrics, manifest=manifest)


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.runtime.generate import checkpointed_generate

    config = ScenarioConfig.paper(scale=args.scale, duration_days=args.days,
                                  seed=args.seed)
    telem = _make_telemetry(args)
    manifest = telemetry.run_manifest("generate", seed=args.seed,
                                      config=config)
    started = time.perf_counter()
    try:
        with telemetry.activate(telem):
            report = checkpointed_generate(
                config, args.out, resume=args.resume, run=manifest,
                jobs=args.jobs, keep_segments=args.keep_segments,
                extra_meta={"scale": args.scale, "duration_days": args.days,
                            "seed": args.seed})
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    _write_telemetry(telem, args, manifest, started)
    if not args.quiet:
        print(report.format())
    return EXIT_OK


def _load_platform(path: Path) -> tuple[list[int], int, PeeringDB]:
    # thin alias kept for importers (benchmarks); the real loader lives
    # in repro.corpus.platform
    return load_platform(path)


def _check_corpus_files(path: Path) -> int:
    for required in (CONTROL_FILE, DATA_FILE, META_FILE):
        if not (path / required).exists():
            print(f"error: {path / required} missing", file=sys.stderr)
            return EXIT_USAGE
    return EXIT_OK


def _analyze_supervision(args: argparse.Namespace, path: Path):
    """Build the (supervisor policy, checkpoint journal) pair for
    ``analyze``, or ``(None, None)`` for the classic in-process path.

    Supervision is active when any of ``--supervised``, ``--timeout``, or
    ``--resume`` is given.  The journal lives in the corpus directory;
    ``--resume`` reuses it (after checking it belongs to the same corpus
    and policy), anything else starts it fresh.
    """
    from repro.runtime.checkpoint import CheckpointJournal
    from repro.runtime.retry import RetryPolicy
    from repro.runtime.supervisor import SupervisorPolicy

    supervised = args.supervised or args.resume or args.timeout is not None
    if not supervised:
        return None, None
    policy = SupervisorPolicy(
        timeout=args.timeout,
        retry=RetryPolicy(max_retries=args.retries))
    header = {"command": "analyze", "corpus": str(path),
              "policy": "strict" if args.strict else "skip",
              "host_min_days": args.host_min_days}
    journal = CheckpointJournal.load(path / ANALYZE_JOURNAL_FILE)
    if args.resume and journal.header is not None:
        journal.require_header(header)
    else:
        journal.start(header)
    return policy, journal


def _analyze_cache(args: argparse.Namespace, path: Path):
    """The (cache, corpus digest) pair for ``analyze``.

    An explicit ``--cache-dir`` always wins; a parallel run (``--jobs``
    != 1) defaults to the corpus-local cache. Plain serial runs stay
    cache-free.
    """
    from repro.parallel.cache import ResultCache, corpus_digest

    if not args.cache_dir and args.jobs == 1:
        return None, None
    digest = corpus_digest(path)
    if digest is None:
        print(f"warning: {path}/{MANIFEST_FILE} missing or unusable; "
              "result caching disabled for this run", file=sys.stderr)
        return None, None
    max_bytes = getattr(args, "cache_max_bytes", None)
    cache = (ResultCache(args.cache_dir, max_bytes=max_bytes)
             if args.cache_dir
             else ResultCache.for_corpus(path, max_bytes=max_bytes))
    return cache, digest


def _cmd_analyze(args: argparse.Namespace) -> int:
    path = Path(args.corpus)
    rc = _check_corpus_files(path)
    if rc != EXIT_OK:
        return rc
    policy = ErrorPolicy.STRICT if args.strict else ErrorPolicy.SKIP
    telem = _make_telemetry(args)
    manifest = telemetry.run_manifest(
        "analyze", corpus=str(path), policy=policy.value,
        config={"policy": policy.value, "host_min_days": args.host_min_days})
    started = time.perf_counter()
    try:
        supervisor, journal = _analyze_supervision(args, path)
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    cache, corpus_digest = _analyze_cache(args, path)
    with telemetry.activate(telem):
        try:
            control = ControlPlaneCorpus.load_jsonl(path / CONTROL_FILE,
                                                    on_error=policy)
            data = DataPlaneCorpus.load_npz(path / DATA_FILE, on_error=policy)
            peers, rs_asn, peeringdb = _load_platform(path)
        except (ReproError, OSError, ValueError, KeyError) as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: cannot ingest corpus: {exc}", file=sys.stderr)
            return EXIT_UNREADABLE
        from repro.columnar.engine import build_pipeline

        pipeline = build_pipeline(control, data, peers,
                                  engine=getattr(args, "engine", "auto"),
                                  corpus_dir=path,
                                  peeringdb=peeringdb,
                                  route_server_asn=rs_asn,
                                  host_min_days=args.host_min_days)
        try:
            report = pipeline.run_all(strict=args.strict,
                                      supervisor=supervisor,
                                      checkpoint=journal,
                                      jobs=args.jobs, cache=cache,
                                      corpus_digest=corpus_digest,
                                      config_hash=manifest["config_hash"])
        except ReproError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: analysis failed (strict mode): "
                  f"{type(exc).__name__}: {exc}", file=sys.stderr)
            return EXIT_FAILURES
    _write_telemetry(telem, args, manifest, started)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        _print_study(pipeline, report)
    return _study_exit_code(report)


def _stream_exit_code(report) -> int:
    """Map a stream report onto the analyze exit codes."""
    if not report.ok:
        return EXIT_FAILURES
    if report.all_degraded:
        return EXIT_ALL_DEGRADED
    return EXIT_OK


def _tap_session(args: argparse.Namespace, path: Path):
    """Build the supervised tap session for ``watch --tap``, or None."""
    if not args.tap:
        return None
    from repro.runtime.retry import RetryPolicy
    from repro.taps import BackpressurePolicy, TapConfig, TapSession

    config = TapConfig(
        stall_timeout=args.tap_stall,
        breaker_threshold=args.tap_breaker,
        max_reconnects=args.tap_max_reconnects,
        queue_capacity=args.tap_queue,
        queue_policy=BackpressurePolicy(args.tap_queue_policy),
        policy=ErrorPolicy.STRICT if args.strict else ErrorPolicy.COLLECT,
        backoff=RetryPolicy(max_retries=0, backoff_base=args.tap_backoff,
                            backoff_factor=2.0, backoff_max=60.0,
                            jitter=0.5),
        seed=args.tap_seed,
        epoch=args.tap_epoch,
    )
    return TapSession.open(path, args.tap, config=config)


def _slo_rules(args: argparse.Namespace):
    """The SLO thresholds one watch session is judged against."""
    from repro.obs import SLORules

    checkpoint_age = args.slo_checkpoint_age
    return SLORules(
        max_lag_days=args.slo_lag_days,
        max_dead_taps=args.slo_dead_taps,
        max_quarantine_rate=args.slo_quarantine_rate,
        max_checkpoint_age=(None if checkpoint_age is not None
                            and checkpoint_age <= 0 else checkpoint_age))


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs import ObsPlane
    from repro.parallel.cache import ResultCache
    from repro.streaming import StreamEngine, reset_stream

    path = Path(args.corpus)
    if not path.is_dir() and not args.tap:
        print(f"error: {path} is not a directory", file=sys.stderr)
        return EXIT_USAGE
    if args.reset_stream and reset_stream(path) and not args.quiet:
        print(f"stream checkpoint discarded; re-consuming {path} "
              "from day 0", file=sys.stderr)
    policy = ErrorPolicy.STRICT if args.strict else ErrorPolicy.SKIP
    analyses = None
    if args.analyses:
        analyses = [name.strip() for name in args.analyses.split(",")
                    if name.strip()]
        from repro.core.registry import get_analysis
        try:
            for name in analyses:
                get_analysis(name)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
    telem = _make_telemetry(args)
    if not telem.enabled:
        # the operations plane needs a collecting registry and event
        # channel, so a watch session always runs under a real context —
        # which also puts the metrics snapshot in every --json report
        telem = telemetry.Telemetry()
    manifest = telemetry.run_manifest(
        "watch", corpus=str(path), policy=policy.value,
        config={"policy": policy.value,
                "host_min_days": args.host_min_days})
    started = time.perf_counter()
    cache = None if args.no_cache else ResultCache.for_corpus(
        path, max_bytes=args.cache_max_bytes)
    engine = None
    plane = None
    with telemetry.activate(telem):
        try:
            session = _tap_session(args, path)
            engine = StreamEngine.open(path, policy=policy,
                                       host_min_days=args.host_min_days,
                                       cache=cache, fresh=args.fresh,
                                       scrub_every=args.scrub_every or None)
            if session is not None:
                engine.attach_taps(session)
            plane = ObsPlane(path, rules=_slo_rules(args),
                             port=args.obs_port, command="watch")
            engine.attach_obs(plane)
            if plane.url is not None and not args.quiet:
                print(f"obs endpoint listening on {plane.url} "
                      "(/metrics /healthz /readyz /status)",
                      file=sys.stderr)
            if args.once:
                engine.tick(final=True)
            else:
                engine.watch(interval=args.interval,
                             max_ticks=args.max_ticks,
                             until_days=args.until_days)
            report = engine.report(analyses)
        except StreamCheckpointError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: {exc}\nthe stream checkpoint is derived state; "
                  "re-run with --reset-stream to discard it and re-consume "
                  "the commit log from day 0", file=sys.stderr)
            return EXIT_STREAM_CHECKPOINT
        except TapError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ObsError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except StreamError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_UNREADABLE
        except ReproError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: cannot ingest corpus: {exc}", file=sys.stderr)
            return EXIT_UNREADABLE
        except KeyboardInterrupt:
            _write_telemetry(telem, args, manifest, started)
            if not args.quiet:
                watermark = engine.watermark_days if engine else 0
                print(f"watch interrupted at watermark day {watermark}",
                      file=sys.stderr)
            return EXIT_OK
        finally:
            if plane is not None:
                plane.close()
    _write_telemetry(telem, args, manifest, started)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    elif not args.quiet:
        print(report.format())
    return _stream_exit_code(report)


def _cmd_advance(args: argparse.Namespace) -> int:
    from repro.streaming import advance_corpus

    path = Path(args.corpus)
    if not path.is_dir():
        print(f"error: {path} is not a directory", file=sys.stderr)
        return EXIT_USAGE
    telem = _make_telemetry(args)
    if args.json and not telem.enabled:
        # --json surfaces the metrics snapshot, so it needs a real context
        telem = telemetry.Telemetry()
    manifest = telemetry.run_manifest("advance", corpus=str(path),
                                      config={"days": args.days})
    started = time.perf_counter()
    with telemetry.activate(telem):
        try:
            report = advance_corpus(path, args.days)
        except StreamError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except ReproError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: cannot advance corpus: {exc}", file=sys.stderr)
            return EXIT_UNREADABLE
    _write_telemetry(telem, args, manifest, started)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    elif not args.quiet:
        print(report.format())
    return EXIT_OK


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs import (
        fetch_status,
        load_snapshot,
        render_status,
        status_exit_code,
    )

    try:
        if args.url:
            document = fetch_status(args.url)
        else:
            document = load_snapshot(Path(args.corpus))
    except ObsUnreachableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_OBS_UNREACHABLE
    except ObsSnapshotError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    except ObsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_status(document))
    return status_exit_code(document)


def _cmd_summary(args: argparse.Namespace) -> int:
    config = ScenarioConfig.paper(scale=args.scale, duration_days=args.days,
                                  seed=args.seed)
    telem = _make_telemetry(args)
    manifest = telemetry.run_manifest("summary", seed=args.seed,
                                      config=config)
    started = time.perf_counter()
    with telemetry.activate(telem):
        result = run_scenario(config)
        pipeline = AnalysisPipeline(result.control, result.data,
                                    peer_asns=result.ixp.member_asns,
                                    peeringdb=result.ixp.peeringdb,
                                    host_min_days=args.host_min_days)
        report = pipeline.run_all(strict=False)
    _write_telemetry(telem, args, manifest, started)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        _print_study(pipeline, report)
    return _study_exit_code(report)


def _cmd_validate(args: argparse.Namespace) -> int:
    path = Path(args.corpus)
    if not path.is_dir():
        print(f"error: {path} is not a directory", file=sys.stderr)
        return EXIT_USAGE
    report = validate_corpus(path, cache_dir=args.cache_dir or None)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.format())
    return EXIT_OK if report.ok else EXIT_FAILURES


def _cmd_doctor(args: argparse.Namespace) -> int:
    from repro.doctor import repair_corpus, scrub_corpus

    path = Path(args.corpus)
    telem = _make_telemetry(args)
    manifest = telemetry.run_manifest("doctor", corpus=str(path),
                                      config={"repair": args.repair,
                                              "deep": not args.quick})
    started = time.perf_counter()
    deep = not args.quick
    with telemetry.activate(telem):
        try:
            report = scrub_corpus(path, deep=deep,
                                  cache_dir=args.cache_dir or None)
            repair = None
            if args.repair and not report.clean:
                repair = repair_corpus(path, report, deep=deep,
                                       cache_dir=args.cache_dir or None)
                repair.verified = scrub_corpus(
                    path, deep=deep, cache_dir=args.cache_dir or None)
        except DoctorError as exc:
            _write_telemetry(telem, args, manifest, started)
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_UNREADABLE
    _write_telemetry(telem, args, manifest, started)
    if args.json:
        document = report.to_json()
        if repair is not None:
            document["repair"] = repair.to_json()
        print(json.dumps(document, indent=2))
    else:
        print(report.format())
        if repair is not None:
            print(repair.format())
    if repair is not None:
        healed = repair.ok and repair.verified is not None \
            and repair.verified.clean
        return EXIT_OK if healed else EXIT_FAILURES
    return EXIT_OK if report.clean else EXIT_FAILURES


def _cmd_report(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    if not path.exists():
        print(f"error: {path} does not exist", file=sys.stderr)
        return EXIT_USAGE
    try:
        trace = load_trace(path)
    except TelemetryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    print(render_report(trace))
    return EXIT_OK


def _cmd_inject(args: argparse.Namespace) -> int:
    src, dst = Path(args.corpus), Path(args.out)
    rc = _check_corpus_files(src)
    if rc != EXIT_OK:
        return rc
    try:
        specs = [FaultSpec.parse(text) for text in args.fault]
    except FaultInjectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not specs:
        print("error: at least one --fault kind[:intensity] required",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        report = degrade_corpus_dir(src, dst, specs, seed=args.seed)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    print(report.format())
    print(f"degraded corpus written to {dst}/ "
          f"(stale {MANIFEST_FILE} copied for validate to catch)")
    return EXIT_OK


def _print_study(pipeline: AnalysisPipeline, report: StudyReport) -> None:
    if not report.ok or any(report.warnings):
        print(report.format())
        print()

    load = report.value("fig3_load")
    if load is not None:
        try:
            n_events = len(pipeline.events)
            n_messages = pipeline.control.rtbh_message_count()
        except ReproError:
            n_events = n_messages = 0
        print(f"RTBH events: {n_events} "
              f"(from {n_messages} messages); "
              f"parallel blackholes mean {load.mean_active:.0f} / "
              f"peak {load.peak_active}")

    rates = report.value("fig5_drop_by_length")
    if rates is not None:
        rows = [[f"/{int(l)}", pct(float(p)), pct(float(b)), pct(float(s), 2)]
                for l, p, b, s in zip(rates.lengths, rates.drop_share_packets,
                                      rates.drop_share_bytes,
                                      rates.traffic_share)]
        print()
        print(format_table(["len", "drop(pkts)", "drop(bytes)", "traffic"],
                           rows, title="acceptance by prefix length (Fig. 5):"))

    pre_classes = report.value("table2_pre_classes")
    if pre_classes is not None:
        print("\npre-RTBH classes (Table 2):")
        for cls, share in pre_classes.items():
            print(f"  {cls.value:18s} {pct(share)}")

    classification = report.value("fig19_use_cases")
    if classification is not None:
        print("\nuse cases (Fig. 19):")
        for case, share in classification.shares().items():
            count = classification.counts()[case]
            if count:
                _, med, _ = classification.duration_quartiles(case)
                print(f"  {case.value:26s} {pct(share):>6s} "
                      f"(median duration {seconds_human(med)})")

    collateral = report.value("fig18_collateral")
    if collateral is not None:
        try:
            counts = pipeline.host_study.counts()
        except ReproError:
            counts = None
        if counts is not None:
            print(f"\nhosts: {counts[HostClass.CLIENT]} clients / "
                  f"{counts[HostClass.SERVER]} servers detected; "
                  f"{collateral.events_with_collateral} events "
                  "with collateral damage")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Down the Black Hole' (IMC'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_telemetry_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace", metavar="PATH",
                       help="write telemetry spans as JSONL (see "
                            "'repro report')")
        p.add_argument("--metrics", metavar="PATH",
                       help="write the final metrics snapshot as JSON")

    gen = sub.add_parser("generate", help="generate and save a corpus")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--days", type=float, default=30.0)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument("--resume", action="store_true",
                     help="finish an interrupted run: skip segments already "
                          "committed to the checkpoint journal")
    gen.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="fan day-segment writes across N forked workers "
                          "(0 = all CPUs, default 1); output is "
                          "byte-identical for every value")
    gen.add_argument("--keep-segments", action="store_true",
                     help="retain the committed per-day segment files "
                          "after finalize (required for 'watch' and "
                          "'advance')")
    gen.add_argument("--progress", action="store_true",
                     help="print per-stage progress lines to stderr")
    gen.add_argument("-q", "--quiet", action="store_true",
                     help="suppress informational output")
    add_telemetry_flags(gen)
    gen.set_defaults(func=_cmd_generate)

    ana = sub.add_parser("analyze", help="analyze a saved corpus")
    ana.add_argument("corpus", help="directory written by 'generate'")
    ana.add_argument("--host-min-days", type=int, default=20)
    mode = ana.add_mutually_exclusive_group()
    mode.add_argument("--strict", action="store_true",
                      help="fail on the first bad record or analysis")
    mode.add_argument("--lenient", dest="strict", action="store_false",
                      help="skip bad records, isolate failing analyses "
                           "(default)")
    ana.add_argument("--supervised", action="store_true",
                     help="run each analysis in a supervised child process")
    ana.add_argument("--timeout", type=float, metavar="SECONDS",
                     help="per-analysis wall-clock limit (implies "
                          "--supervised)")
    ana.add_argument("--retries", type=int, default=2, metavar="N",
                     help="max retries of a transiently-failing analysis "
                          "(default 2)")
    ana.add_argument("--resume", action="store_true",
                     help="skip analyses with a journaled terminal outcome "
                          "(implies --supervised)")
    ana.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="run up to N analyses concurrently in forked "
                          "workers (0 = all CPUs, default 1 = the serial "
                          "reference path)")
    ana.add_argument("--engine", choices=("auto", "columnar", "records"),
                     default="auto",
                     help="analysis engine: 'columnar' vectorizes the "
                          "hottest analyses over mmap'd sidecars "
                          "(deriving them if needed), 'records' is the "
                          "reference path, 'auto' (default) uses columnar "
                          "iff fresh sidecars already exist; results are "
                          "bit-identical either way")
    ana.add_argument("--cache-dir", metavar="DIR",
                     help="content-addressed result cache: skip analyses "
                          "already finished for this exact corpus + config")
    ana.add_argument("--cache-max-bytes", type=int, metavar="N",
                     help="bound the result cache: evict least-recently-"
                          "used entries once it exceeds N bytes "
                          "(default: unbounded)")
    ana.add_argument("--json", action="store_true",
                     help="machine-readable study report on stdout")
    add_telemetry_flags(ana)
    ana.set_defaults(func=_cmd_analyze, strict=False)

    wat = sub.add_parser("watch",
                         help="incrementally analyze a kept-segments "
                              "corpus as days are committed")
    wat.add_argument("corpus", help="directory written by "
                                    "'generate --keep-segments'")
    wat.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="poll interval between ticks (default 1)")
    stop = wat.add_mutually_exclusive_group()
    stop.add_argument("--once", action="store_true",
                      help="consume everything committed so far, report, "
                           "and exit")
    stop.add_argument("--until-days", type=int, metavar="N",
                      help="watch until N days are consumed, then report "
                           "and exit")
    stop.add_argument("--max-ticks", type=int, metavar="N",
                      help="stop after N poll ticks regardless of progress")
    wat.add_argument("--host-min-days", type=int, default=20)
    mode = wat.add_mutually_exclusive_group()
    mode.add_argument("--strict", action="store_true",
                      help="fail on the first bad record or analysis")
    mode.add_argument("--lenient", dest="strict", action="store_false",
                      help="skip bad records, isolate failing analyses "
                           "(default)")
    wat.add_argument("--analyses", metavar="NAME[,NAME...]",
                     help="restrict the report to these registry analyses")
    wat.add_argument("--fresh", action="store_true",
                     help="ignore any existing stream checkpoint and "
                          "consume from day 0")
    wat.add_argument("--reset-stream", action="store_true",
                     help="discard a (possibly corrupt) stream checkpoint "
                          "before opening, then re-consume from day 0")
    wat.add_argument("--tap", action="append", default=[],
                     metavar="[NAME=]FORMAT:PATH",
                     help="supervise an external feed into the corpus's "
                          "commit log (formats: mrt, ris, exabgp; "
                          "repeatable)")
    wat.add_argument("--tap-stall", type=float, default=30.0,
                     metavar="SECONDS",
                     help="tap stall-watchdog timeout (default 30)")
    wat.add_argument("--tap-breaker", type=int, default=3, metavar="N",
                     help="consecutive tap failures before its circuit "
                          "breaker opens (default 3)")
    wat.add_argument("--tap-max-reconnects", type=int, default=8,
                     metavar="N",
                     help="failed reconnect probes before a tap is declared "
                          "dead (default 8)")
    wat.add_argument("--tap-queue", type=int, default=100_000, metavar="N",
                     help="per-tap bounded ingest queue capacity "
                          "(default 100000)")
    wat.add_argument("--tap-queue-policy", default="block",
                     choices=["block", "drop-oldest", "fail"],
                     help="backpressure when a tap queue fills (default "
                          "block)")
    wat.add_argument("--tap-backoff", type=float, default=0.5,
                     metavar="SECONDS",
                     help="base reconnect backoff delay (default 0.5)")
    wat.add_argument("--tap-seed", type=int, default=0, metavar="N",
                     help="seed of the deterministic reconnect jitter "
                          "(default 0)")
    wat.add_argument("--tap-epoch", type=float, default=0.0,
                     metavar="SECONDS",
                     help="feed timestamps are shifted by -EPOCH into "
                          "corpus time (default 0)")
    wat.add_argument("--no-cache", action="store_true",
                     help="disable the corpus-local result cache for "
                          "non-incremental analyses")
    wat.add_argument("--cache-max-bytes", type=int, metavar="N",
                     help="bound the result cache: evict least-recently-"
                          "used entries once it exceeds N bytes "
                          "(default: unbounded)")
    wat.add_argument("--scrub-every", type=int, default=60, metavar="N",
                     help="run a quick integrity scrub every N ticks, "
                          "surfacing damage through the obs plane "
                          "(default 60; 0 disables)")
    wat.add_argument("--obs-port", type=int, metavar="PORT",
                     help="serve /metrics /healthz /readyz /status on "
                          "127.0.0.1:PORT (0 = ephemeral, printed to "
                          "stderr)")
    wat.add_argument("--slo-lag-days", type=float, default=2.0,
                     metavar="N",
                     help="committed-but-unconsumed days before readiness "
                          "degrades (default 2)")
    wat.add_argument("--slo-dead-taps", type=int, default=0, metavar="N",
                     help="permanently dead taps tolerated before "
                          "readiness degrades (default 0; every tap dead "
                          "is always unhealthy)")
    wat.add_argument("--slo-quarantine-rate", type=float, default=0.10,
                     metavar="RATE",
                     help="malformed/total feed-record ratio tolerated "
                          "(default 0.10)")
    wat.add_argument("--slo-checkpoint-age", type=float, default=900.0,
                     metavar="SECONDS",
                     help="stream-checkpoint staleness tolerated "
                          "(default 900; <= 0 disables the check)")
    wat.add_argument("--json", action="store_true",
                     help="machine-readable stream report on stdout")
    wat.add_argument("-q", "--quiet", action="store_true",
                     help="suppress informational output")
    add_telemetry_flags(wat)
    wat.set_defaults(func=_cmd_watch, strict=False)

    adv = sub.add_parser("advance",
                         help="extend a kept-segments corpus by N days")
    adv.add_argument("corpus", help="directory written by "
                                    "'generate --keep-segments'")
    adv.add_argument("--days", type=int, required=True, metavar="N",
                     help="how many days to append")
    adv.add_argument("--json", action="store_true",
                     help="machine-readable advance report (with the "
                          "metrics snapshot) on stdout")
    adv.add_argument("-q", "--quiet", action="store_true",
                     help="suppress informational output")
    add_telemetry_flags(adv)
    adv.set_defaults(func=_cmd_advance)

    sta = sub.add_parser("status",
                         help="render a watch session's operational state "
                              "from its .obs snapshot (or a live "
                              "endpoint)")
    sta.add_argument("corpus", nargs="?", default=".",
                     help="watched corpus directory (default: .)")
    sta.add_argument("--url", metavar="URL",
                     help="query a live session's obs endpoint instead of "
                          "the on-disk snapshot")
    sta.add_argument("--json", action="store_true",
                     help="print the raw status document as JSON")
    sta.set_defaults(func=_cmd_status)

    val = sub.add_parser("validate",
                         help="integrity-check a corpus directory")
    val.add_argument("corpus", help="directory written by 'generate'")
    val.add_argument("--json", action="store_true",
                     help="machine-readable report on stdout")
    val.add_argument("--cache-dir", metavar="DIR",
                     help="also check this analysis-result cache for "
                          "entries keyed to a different corpus")
    val.set_defaults(func=_cmd_validate, cache_dir=None)

    doc = sub.add_parser("doctor",
                         help="scrub a corpus directory's durable state "
                              "for damage and optionally repair it from "
                              "redundancy")
    doc.add_argument("corpus", help="corpus directory (synthetic or tap)")
    doc.add_argument("--repair", action="store_true",
                     help="execute the repair plan for every damage "
                          "found, then re-scrub to verify convergence")
    doc.add_argument("--quick", action="store_true",
                     help="structural checks only, no content re-hashing "
                          "(what the watch background scrub runs)")
    doc.add_argument("--cache-dir", metavar="DIR",
                     help="also scrub this analysis-result cache "
                          "(the corpus-local .cache/ is always scrubbed)")
    doc.add_argument("--json", action="store_true",
                     help="machine-readable damage/repair report on "
                          "stdout")
    doc.add_argument("-q", "--quiet", action="store_true",
                     help="suppress informational output")
    add_telemetry_flags(doc)
    doc.set_defaults(func=_cmd_doctor)

    inj = sub.add_parser("inject",
                         help="write a deterministically-degraded copy of "
                              "a corpus")
    inj.add_argument("corpus", help="clean corpus directory")
    inj.add_argument("--out", required=True, help="output directory")
    inj.add_argument("--fault", action="append", default=[],
                     metavar="KIND[:INTENSITY]",
                     help="fault to inject, e.g. drop:0.1 (repeatable)")
    inj.add_argument("--seed", type=int, default=0)
    inj.set_defaults(func=_cmd_inject)

    summ = sub.add_parser("summary", help="generate + analyze in memory")
    summ.add_argument("--scale", type=float, default=0.01)
    summ.add_argument("--days", type=float, default=14.0)
    summ.add_argument("--seed", type=int, default=7)
    summ.add_argument("--host-min-days", type=int, default=8)
    summ.add_argument("--json", action="store_true",
                      help="machine-readable study report on stdout")
    add_telemetry_flags(summ)
    summ.set_defaults(func=_cmd_summary)

    rep = sub.add_parser("report",
                         help="render the timing table from a --trace file")
    rep.add_argument("trace", help="JSONL trace written by --trace")
    rep.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
