"""Command-line interface.

Five subcommands mirror the library's layering::

    python -m repro generate --scale 0.02 --days 30 --out corpus_dir
    python -m repro validate corpus_dir
    python -m repro inject corpus_dir --out degraded_dir --fault drop:0.1
    python -m repro analyze corpus_dir [--strict | --lenient]
    python -m repro summary --scale 0.01 --days 14

``generate`` writes the corpora (plus the membership/PeeringDB sidecar and
a checksummed ``manifest.json``); ``validate`` integrity-checks a corpus
directory without running any analysis; ``inject`` produces a
deterministically-degraded copy of a corpus for robustness work;
``analyze`` re-loads a corpus and prints the study's headline numbers —
leniently by default, isolating each figure behind typed-exception capture;
``summary`` generates and analyzes in memory.

Exit codes: 0 success; 1 validation or analysis failures; 2 missing
inputs or bad usage; 3 a corpus that could not be ingested at all.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import AnalysisPipeline, ControlPlaneCorpus, DataPlaneCorpus
from repro.core.hosts import HostClass
from repro.core.report import format_table, pct, seconds_human
from repro.core.study import StudyReport
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    validate_corpus,
    write_manifest,
)
from repro.errors import FaultInjectionError, ReproError
from repro.faults import FaultSpec, degrade_corpus_dir
from repro.ixp.peeringdb import OrgType, PeeringDB, PeeringDBRecord
from repro.scenario import ScenarioConfig, run_scenario

#: process exit codes (documented in the module docstring)
EXIT_OK = 0
EXIT_FAILURES = 1
EXIT_USAGE = 2
EXIT_UNREADABLE = 3


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ScenarioConfig.paper(scale=args.scale, duration_days=args.days,
                                  seed=args.seed)
    result = run_scenario(config)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    result.control.save_jsonl(out / CONTROL_FILE)
    result.data.save_npz(out / DATA_FILE)
    meta = {
        "peer_asns": result.ixp.member_asns,
        "route_server_asn": result.ixp.route_server.asn,
        "sampling_rate": result.data.sampling_rate,
        "peeringdb": [
            {"asn": r.asn, "name": r.name, "org_type": r.org_type.value,
             "scope": r.scope}
            for r in result.ixp.peeringdb
        ],
        "scale": args.scale,
        "duration_days": args.days,
        "seed": args.seed,
    }
    (out / META_FILE).write_text(json.dumps(meta, indent=2))
    write_manifest(out, counts={
        "control_messages": len(result.control),
        "data_packets": len(result.data),
    })
    print(f"wrote {len(result.control)} control messages, "
          f"{len(result.data)} sampled packets, platform metadata, and "
          f"{MANIFEST_FILE} to {out}/")
    return EXIT_OK


def _load_platform(path: Path) -> tuple[list[int], int, PeeringDB]:
    meta = json.loads((path / META_FILE).read_text())
    db = PeeringDB()
    for entry in meta["peeringdb"]:
        db.register(PeeringDBRecord(
            asn=int(entry["asn"]), name=entry["name"],
            org_type=OrgType(entry["org_type"]), scope=entry["scope"],
        ))
    return list(meta["peer_asns"]), int(meta["route_server_asn"]), db


def _check_corpus_files(path: Path) -> int:
    for required in (CONTROL_FILE, DATA_FILE, META_FILE):
        if not (path / required).exists():
            print(f"error: {path / required} missing", file=sys.stderr)
            return EXIT_USAGE
    return EXIT_OK


def _cmd_analyze(args: argparse.Namespace) -> int:
    path = Path(args.corpus)
    rc = _check_corpus_files(path)
    if rc != EXIT_OK:
        return rc
    policy = "strict" if args.strict else "skip"
    try:
        control = ControlPlaneCorpus.load_jsonl(path / CONTROL_FILE,
                                                on_error=policy)
        data = DataPlaneCorpus.load_npz(path / DATA_FILE, on_error=policy)
        peers, rs_asn, peeringdb = _load_platform(path)
    except (ReproError, OSError, ValueError, KeyError) as exc:
        print(f"error: cannot ingest corpus: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    pipeline = AnalysisPipeline(control, data, peer_asns=peers,
                                peeringdb=peeringdb, route_server_asn=rs_asn,
                                host_min_days=args.host_min_days)
    try:
        report = pipeline.run_all(strict=args.strict)
    except ReproError as exc:
        print(f"error: analysis failed (strict mode): "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_FAILURES
    _print_study(pipeline, report)
    return EXIT_OK if report.ok else EXIT_FAILURES


def _cmd_summary(args: argparse.Namespace) -> int:
    config = ScenarioConfig.paper(scale=args.scale, duration_days=args.days,
                                  seed=args.seed)
    result = run_scenario(config)
    pipeline = AnalysisPipeline(result.control, result.data,
                                peer_asns=result.ixp.member_asns,
                                peeringdb=result.ixp.peeringdb,
                                host_min_days=args.host_min_days)
    report = pipeline.run_all(strict=False)
    _print_study(pipeline, report)
    return EXIT_OK if report.ok else EXIT_FAILURES


def _cmd_validate(args: argparse.Namespace) -> int:
    path = Path(args.corpus)
    if not path.is_dir():
        print(f"error: {path} is not a directory", file=sys.stderr)
        return EXIT_USAGE
    report = validate_corpus(path)
    print(report.format())
    return EXIT_OK if report.ok else EXIT_FAILURES


def _cmd_inject(args: argparse.Namespace) -> int:
    src, dst = Path(args.corpus), Path(args.out)
    rc = _check_corpus_files(src)
    if rc != EXIT_OK:
        return rc
    try:
        specs = [FaultSpec.parse(text) for text in args.fault]
    except FaultInjectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not specs:
        print("error: at least one --fault kind[:intensity] required",
              file=sys.stderr)
        return EXIT_USAGE
    try:
        report = degrade_corpus_dir(src, dst, specs, seed=args.seed)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNREADABLE
    print(report.format())
    print(f"degraded corpus written to {dst}/ "
          f"(stale {MANIFEST_FILE} copied for validate to catch)")
    return EXIT_OK


def _print_study(pipeline: AnalysisPipeline, report: StudyReport) -> None:
    if not report.ok or any(report.warnings):
        print(report.format())
        print()

    load = report.value("fig3_load")
    if load is not None:
        try:
            n_events = len(pipeline.events)
            n_messages = pipeline.control.rtbh_message_count()
        except ReproError:
            n_events = n_messages = 0
        print(f"RTBH events: {n_events} "
              f"(from {n_messages} messages); "
              f"parallel blackholes mean {load.mean_active:.0f} / "
              f"peak {load.peak_active}")

    rates = report.value("fig5_drop_by_length")
    if rates is not None:
        rows = [[f"/{int(l)}", pct(float(p)), pct(float(b)), pct(float(s), 2)]
                for l, p, b, s in zip(rates.lengths, rates.drop_share_packets,
                                      rates.drop_share_bytes,
                                      rates.traffic_share)]
        print()
        print(format_table(["len", "drop(pkts)", "drop(bytes)", "traffic"],
                           rows, title="acceptance by prefix length (Fig. 5):"))

    pre_classes = report.value("table2_pre_classes")
    if pre_classes is not None:
        print("\npre-RTBH classes (Table 2):")
        for cls, share in pre_classes.items():
            print(f"  {cls.value:18s} {pct(share)}")

    classification = report.value("fig19_use_cases")
    if classification is not None:
        print("\nuse cases (Fig. 19):")
        for case, share in classification.shares().items():
            count = classification.counts()[case]
            if count:
                _, med, _ = classification.duration_quartiles(case)
                print(f"  {case.value:26s} {pct(share):>6s} "
                      f"(median duration {seconds_human(med)})")

    collateral = report.value("fig18_collateral")
    if collateral is not None:
        try:
            counts = pipeline.host_study.counts()
        except ReproError:
            counts = None
        if counts is not None:
            print(f"\nhosts: {counts[HostClass.CLIENT]} clients / "
                  f"{counts[HostClass.SERVER]} servers detected; "
                  f"{collateral.events_with_collateral} events "
                  "with collateral damage")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Down the Black Hole' (IMC'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a corpus")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--days", type=float, default=30.0)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True, help="output directory")
    gen.set_defaults(func=_cmd_generate)

    ana = sub.add_parser("analyze", help="analyze a saved corpus")
    ana.add_argument("corpus", help="directory written by 'generate'")
    ana.add_argument("--host-min-days", type=int, default=20)
    mode = ana.add_mutually_exclusive_group()
    mode.add_argument("--strict", action="store_true",
                      help="fail on the first bad record or analysis")
    mode.add_argument("--lenient", dest="strict", action="store_false",
                      help="skip bad records, isolate failing analyses "
                           "(default)")
    ana.set_defaults(func=_cmd_analyze, strict=False)

    val = sub.add_parser("validate",
                         help="integrity-check a corpus directory")
    val.add_argument("corpus", help="directory written by 'generate'")
    val.set_defaults(func=_cmd_validate)

    inj = sub.add_parser("inject",
                         help="write a deterministically-degraded copy of "
                              "a corpus")
    inj.add_argument("corpus", help="clean corpus directory")
    inj.add_argument("--out", required=True, help="output directory")
    inj.add_argument("--fault", action="append", default=[],
                     metavar="KIND[:INTENSITY]",
                     help="fault to inject, e.g. drop:0.1 (repeatable)")
    inj.add_argument("--seed", type=int, default=0)
    inj.set_defaults(func=_cmd_inject)

    summ = sub.add_parser("summary", help="generate + analyze in memory")
    summ.add_argument("--scale", type=float, default=0.01)
    summ.add_argument("--days", type=float, default=14.0)
    summ.add_argument("--seed", type=int, default=7)
    summ.add_argument("--host-min-days", type=int, default=8)
    summ.set_defaults(func=_cmd_summary)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
