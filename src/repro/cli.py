"""Command-line interface.

Three subcommands mirror the library's layering::

    python -m repro generate --scale 0.02 --days 30 --out corpus_dir
    python -m repro analyze corpus_dir [--peers corpus_dir/peers.json]
    python -m repro summary --scale 0.01 --days 14

``generate`` writes the corpora (and the membership/PeeringDB sidecar) to
disk; ``analyze`` re-loads them and prints the study's headline numbers —
the pair demonstrates that the pipeline runs from files alone, exactly as
it would on real route-server dumps and IPFIX exports. ``summary`` does
both in memory.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import AnalysisPipeline, ControlPlaneCorpus, DataPlaneCorpus
from repro.core.hosts import HostClass
from repro.core.report import format_table, pct, seconds_human
from repro.ixp.peeringdb import OrgType, PeeringDB, PeeringDBRecord
from repro.scenario import ScenarioConfig, run_scenario

CONTROL_FILE = "control.jsonl"
DATA_FILE = "data.npz"
META_FILE = "platform.json"


def _cmd_generate(args: argparse.Namespace) -> int:
    config = ScenarioConfig.paper(scale=args.scale, duration_days=args.days,
                                  seed=args.seed)
    result = run_scenario(config)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    result.control.save_jsonl(out / CONTROL_FILE)
    result.data.save_npz(out / DATA_FILE)
    meta = {
        "peer_asns": result.ixp.member_asns,
        "route_server_asn": result.ixp.route_server.asn,
        "sampling_rate": result.data.sampling_rate,
        "peeringdb": [
            {"asn": r.asn, "name": r.name, "org_type": r.org_type.value,
             "scope": r.scope}
            for r in result.ixp.peeringdb
        ],
        "scale": args.scale,
        "duration_days": args.days,
        "seed": args.seed,
    }
    (out / META_FILE).write_text(json.dumps(meta, indent=2))
    print(f"wrote {len(result.control)} control messages, "
          f"{len(result.data)} sampled packets, and platform metadata to {out}/")
    return 0


def _load_platform(path: Path) -> tuple[list[int], int, PeeringDB]:
    meta = json.loads((path / META_FILE).read_text())
    db = PeeringDB()
    for entry in meta["peeringdb"]:
        db.register(PeeringDBRecord(
            asn=int(entry["asn"]), name=entry["name"],
            org_type=OrgType(entry["org_type"]), scope=entry["scope"],
        ))
    return list(meta["peer_asns"]), int(meta["route_server_asn"]), db


def _cmd_analyze(args: argparse.Namespace) -> int:
    path = Path(args.corpus)
    for required in (CONTROL_FILE, DATA_FILE, META_FILE):
        if not (path / required).exists():
            print(f"error: {path / required} missing", file=sys.stderr)
            return 2
    control = ControlPlaneCorpus.load_jsonl(path / CONTROL_FILE)
    data = DataPlaneCorpus.load_npz(path / DATA_FILE)
    peers, rs_asn, peeringdb = _load_platform(path)
    pipeline = AnalysisPipeline(control, data, peer_asns=peers,
                                peeringdb=peeringdb, route_server_asn=rs_asn,
                                host_min_days=args.host_min_days)
    _print_study(pipeline)
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    config = ScenarioConfig.paper(scale=args.scale, duration_days=args.days,
                                  seed=args.seed)
    result = run_scenario(config)
    pipeline = AnalysisPipeline(result.control, result.data,
                                peer_asns=result.ixp.member_asns,
                                peeringdb=result.ixp.peeringdb,
                                host_min_days=args.host_min_days)
    _print_study(pipeline)
    return 0


def _print_study(pipeline: AnalysisPipeline) -> None:
    events = pipeline.events
    load = pipeline.fig3_load()
    print(f"RTBH events: {len(events)} "
          f"(from {pipeline.control.rtbh_message_count()} messages); "
          f"parallel blackholes mean {load.mean_active:.0f} / "
          f"peak {load.peak_active}")

    rates = pipeline.fig5_drop_by_length()
    rows = [[f"/{int(l)}", pct(float(p)), pct(float(b)), pct(float(s), 2)]
            for l, p, b, s in zip(rates.lengths, rates.drop_share_packets,
                                  rates.drop_share_bytes, rates.traffic_share)]
    print()
    print(format_table(["len", "drop(pkts)", "drop(bytes)", "traffic"],
                       rows, title="acceptance by prefix length (Fig. 5):"))

    print("\npre-RTBH classes (Table 2):")
    for cls, share in pipeline.table2_pre_classes().items():
        print(f"  {cls.value:18s} {pct(share)}")

    print("\nuse cases (Fig. 19):")
    classification = pipeline.fig19_use_cases()
    for case, share in classification.shares().items():
        count = classification.counts()[case]
        if count:
            _, med, _ = classification.duration_quartiles(case)
            print(f"  {case.value:26s} {pct(share):>6s} "
                  f"(median duration {seconds_human(med)})")

    counts = pipeline.host_study.counts()
    print(f"\nhosts: {counts[HostClass.CLIENT]} clients / "
          f"{counts[HostClass.SERVER]} servers detected; "
          f"{pipeline.fig18_collateral().events_with_collateral} events "
          "with collateral damage")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'Down the Black Hole' (IMC'19)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate and save a corpus")
    gen.add_argument("--scale", type=float, default=0.02)
    gen.add_argument("--days", type=float, default=30.0)
    gen.add_argument("--seed", type=int, default=7)
    gen.add_argument("--out", required=True, help="output directory")
    gen.set_defaults(func=_cmd_generate)

    ana = sub.add_parser("analyze", help="analyze a saved corpus")
    ana.add_argument("corpus", help="directory written by 'generate'")
    ana.add_argument("--host-min-days", type=int, default=20)
    ana.set_defaults(func=_cmd_analyze)

    summ = sub.add_parser("summary", help="generate + analyze in memory")
    summ.add_argument("--scale", type=float, default=0.01)
    summ.add_argument("--days", type=float, default=14.0)
    summ.add_argument("--seed", type=int, default=7)
    summ.add_argument("--host-min-days", type=int, default=8)
    summ.set_defaults(func=_cmd_summary)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
