"""repro.telemetry — zero-dependency instrumentation for the whole stack.

Three pieces (mirroring what the paper's own measurement apparatus keeps,
§3.1):

* a **metrics registry** — labeled counters / gauges / histograms, e.g.
  ``sampler.packets_sampled``, ``route_server.updates{action=announce}``,
  ``ingest.records{outcome=skipped,plane=control}``,
  ``pipeline.analysis_seconds{name=fig3_load}``;
* **hierarchical tracing spans** — ``with telemetry.span("generate.traffic")``
  captures wall time, peak-RSS delta, and escaping exception type, emitted
  as JSONL; and
* a **run manifest** stamping every invocation with seed, config hash, and
  git revision (:mod:`repro.telemetry.manifest`).

Instrumented call sites never take a telemetry parameter; they ask
:func:`current` for the active context.  By default that is :data:`NULL` —
a backend whose spans and instruments are shared no-ops, making the layer
free when nobody is listening.  The CLI (or a test) enables collection by
activating a real context::

    telem = Telemetry()
    with activate(telem):
        run_scenario(config)           # spans/counters land in ``telem``
    telem.write_trace("trace.jsonl", manifest=manifest)

Single-threaded by design, matching the rest of the package; an activation
is process-global, not thread-local.
"""

from __future__ import annotations

import json
import time as _time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.manifest import config_hash, git_revision, run_manifest
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    series_key,
)
from repro.telemetry.trace import NullTracer, Span, Tracer, peak_rss_kb

__all__ = [
    "Counter",
    "EventChannel",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL",
    "NullTelemetry",
    "SEVERITIES",
    "Span",
    "Telemetry",
    "Tracer",
    "activate",
    "config_hash",
    "current",
    "ensure_active",
    "events",
    "git_revision",
    "peak_rss_kb",
    "run_manifest",
    "series_key",
]

#: event severities, in escalation order (used by sinks to filter)
SEVERITIES = ("debug", "info", "warning", "error")


class EventChannel:
    """The structured operational event stream of one telemetry context.

    Where metrics answer "how much" and spans answer "how long", events
    answer "what happened": breaker transitions, tap deaths and
    revivals, day commits, checkpoint writes, SLO state changes.  Each
    :meth:`emit` produces one flat JSON-serializable record —
    ``{"kind", "severity", "time", ...fields}`` — buffered in order and
    fanned out to every subscribed sink (the obs plane subscribes its
    JSONL event log; tests subscribe lists).  A sink that raises does
    not disturb the emitting call site: operational logging must never
    take down the operation it logs.
    """

    #: cap on the in-memory buffer; long-running watch sessions rely on
    #: the subscribed sinks (which rotate), not on this buffer
    MAX_BUFFER = 10_000

    def __init__(self) -> None:
        self.records: List[dict] = []
        self._sinks: List[Callable[[dict], None]] = []

    def subscribe(self, sink: Callable[[dict], None]) -> None:
        self._sinks.append(sink)

    def unsubscribe(self, sink: Callable[[dict], None]) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def emit(self, kind: str, *, severity: str = "info",
             **fields: Any) -> dict:
        if severity not in SEVERITIES:
            raise ValueError(f"unknown event severity {severity!r} "
                             f"(expected one of {SEVERITIES})")
        record: Dict[str, Any] = {"kind": kind, "severity": severity,
                                  "time": _time.time(), **fields}
        self.records.append(record)
        if len(self.records) > self.MAX_BUFFER:
            del self.records[:len(self.records) - self.MAX_BUFFER]
        for sink in self._sinks:
            try:
                sink(record)
            except Exception:  # noqa: BLE001 — see docstring
                pass
        return record


class _NullEventChannel(EventChannel):
    """Disabled events: nothing buffered, nothing fanned out."""

    def emit(self, kind: str, *, severity: str = "info",
             **fields: Any) -> dict:
        return {"kind": kind, "severity": severity}


class Telemetry:
    """One collection context: a registry plus a tracer.

    ``progress`` (optional) is called with one formatted line every time a
    span closes — the CLI wires it to stderr for ``generate --progress``.
    """

    enabled = True

    def __init__(self, progress: Optional[Callable[[str], None]] = None):
        self.registry = MetricsRegistry()
        self.tracer = Tracer(on_close=self._on_span_close if progress else None)
        self.events = EventChannel()
        self._progress = progress

    # -- instrumentation surface (what call sites use) ----------------------

    def counter(self, name: str, /, **labels: str) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        return self.registry.histogram(name, **labels)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def event(self, kind: str, *, severity: str = "info",
              **fields: Any) -> dict:
        """Emit one structured operational event (see :class:`EventChannel`)."""
        return self.events.emit(kind, severity=severity, **fields)

    # -- progress rendering -------------------------------------------------

    def _on_span_close(self, span: Span) -> None:
        detail = " ".join(f"{k}={v}" for k, v in span.attrs.items()
                          if isinstance(v, (int, float, str)))
        line = f"{'  ' * span.depth}{span.name}: {span.seconds:.2f}s"
        if detail:
            line += f" ({detail})"
        if span.error_type:
            line += f" [{span.error_type}]"
        self._progress(line)

    # -- output --------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        return self.registry.snapshot()

    def write_trace(self, path: str | Path,
                    manifest: Optional[dict] = None) -> Path:
        """Write the buffered trace as JSONL: manifest first, one span per
        line, final metrics snapshot last."""
        path = Path(path)
        with open(path, "w", encoding="utf-8") as fh:
            if manifest is not None:
                fh.write(json.dumps(manifest) + "\n")
            for record in self.tracer.records:
                fh.write(json.dumps(record) + "\n")
            fh.write(json.dumps({"type": "metrics",
                                 "metrics": self.metrics_snapshot()}) + "\n")
        return path

    def write_metrics(self, path: str | Path,
                      manifest: Optional[dict] = None) -> Path:
        """Write the metrics snapshot (plus manifest) as one JSON file."""
        path = Path(path)
        payload = {"manifest": manifest, "metrics": self.metrics_snapshot()}
        path.write_text(json.dumps(payload, indent=2))
        return path


class NullTelemetry(Telemetry):
    """The disabled backend: every operation is a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        self.registry = NullRegistry()
        self.tracer = NullTracer()
        self.events = _NullEventChannel()
        self._progress = None


#: the process-wide disabled default
NULL = NullTelemetry()

_current: Telemetry = NULL


def current() -> Telemetry:
    """The active telemetry context (the no-op :data:`NULL` by default)."""
    return _current


def events() -> EventChannel:
    """The active context's event channel (no-op under :data:`NULL`)."""
    return _current.events


def ensure_active() -> Telemetry:
    """A *collecting* context for the rest of the process.

    Long-running sessions (``repro watch`` with the operations plane,
    ``Study.watch`` with obs options) need a real registry and event
    channel with no natural ``with activate(...)`` scope to wrap them
    in.  This installs a fresh :class:`Telemetry` process-globally iff
    the no-op default is still active, and returns whatever context ends
    up current — so it composes with an explicit ``activate`` block
    instead of fighting it.
    """
    global _current
    if _current is NULL:
        _current = Telemetry()
    return _current


@contextmanager
def activate(telemetry: Telemetry):
    """Install ``telemetry`` as the process-wide context for the block."""
    global _current
    previous = _current
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
