"""Labeled metrics: counters, gauges, and histograms in a registry.

The registry is deliberately Prometheus-shaped without the dependency:
a metric is identified by a name plus a sorted label set, rendered as
``name{key=value,...}`` in snapshots so series stay greppable —
``route_server.updates{action=announce}``,
``ingest.records{outcome=skipped,plane=control}``.  Instruments are
memoized per series, so hot paths can call
``registry.counter("x", k="v").inc()`` repeatedly without allocating.

The :class:`NullRegistry` hands out shared no-op instruments; with it
installed the whole instrumentation layer costs one dict-free method call
per site (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple


def series_key(name: str, labels: Dict[str, str]) -> str:
    """Render ``name`` + labels as the canonical series string."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += float(amount)


#: default histogram bucket upper bounds, tuned for the seconds-scale
#: timings this layer records (sub-millisecond ticks up to minute-long
#: analyses); the implicit final bucket is +Inf
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: the quantiles every snapshot reports
SNAPSHOT_QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)


class Histogram:
    """Bucketed summary of observations: count, sum, min, max, buckets.

    Buckets are cumulative Prometheus-style upper bounds (the last,
    implicit bound is +Inf), cheap enough for hot paths — one bisect per
    observation — and sufficient for the p50/p90/p99 estimates
    :meth:`quantile` interpolates.  The exact min/max/sum stay alongside
    so the summary statistics remain exact regardless of bucket layout.
    """

    __slots__ = ("count", "total", "min", "max", "bounds", "bucket_counts")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.bounds = tuple(sorted(float(b) for b in bounds))
        # one slot per finite bound plus the +Inf overflow bucket;
        # non-cumulative per-bucket counts (snapshot cumulates)
        self.bucket_counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile by linear bucket interpolation.

        The rank is located in the cumulative bucket counts and
        interpolated linearly inside its bucket, with the estimate
        clamped to the exactly-tracked ``[min, max]`` — so single-bucket
        histograms still report sane values and the +Inf bucket never
        yields an infinite quantile.  Returns None for an empty
        histogram or a ``q`` outside ``(0, 1]``.
        """
        if not self.count or not 0.0 < q <= 1.0:
            return None
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.bucket_counts):
            if n:
                if running + n >= rank:
                    fraction = (rank - running) / n
                    estimate = lower + (bound - lower) * fraction
                    return min(max(estimate, self.min), self.max)
                running += n
            lower = bound
        return self.max  # rank falls in the +Inf overflow bucket


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 — no-op backend
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Owns every metric series of one telemetry context."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, str]):
        return name, tuple(sorted(labels.items()))

    def counter(self, name: str, /, **labels: str) -> Counter:
        key = self._key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        key = self._key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        key = self._key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every series, sorted for diffing."""
        counters = {series_key(name, dict(labels)): inst.value
                    for (name, labels), inst in self._counters.items()}
        gauges = {series_key(name, dict(labels)): inst.value
                  for (name, labels), inst in self._gauges.items()}
        histograms = {}
        for (name, labels), inst in self._histograms.items():
            histograms[series_key(name, dict(labels))] = {
                "count": inst.count,
                "sum": inst.total,
                "min": inst.min if inst.count else None,
                "max": inst.max if inst.count else None,
                "mean": inst.mean,
                "buckets": {
                    ("+Inf" if math.isinf(bound) else f"{bound:g}"): total
                    for bound, total in inst.cumulative_buckets()
                },
                **{f"p{int(q * 100)}": inst.quantile(q)
                   for q in SNAPSHOT_QUANTILES},
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """Free-when-disabled registry: every lookup returns a shared no-op."""

    def counter(self, name: str, /, **labels: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
