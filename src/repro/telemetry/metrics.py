"""Labeled metrics: counters, gauges, and histograms in a registry.

The registry is deliberately Prometheus-shaped without the dependency:
a metric is identified by a name plus a sorted label set, rendered as
``name{key=value,...}`` in snapshots so series stay greppable —
``route_server.updates{action=announce}``,
``ingest.records{outcome=skipped,plane=control}``.  Instruments are
memoized per series, so hot paths can call
``registry.counter("x", k="v").inc()`` repeatedly without allocating.

The :class:`NullRegistry` hands out shared no-op instruments; with it
installed the whole instrumentation layer costs one dict-free method call
per site (see :mod:`repro.telemetry`).
"""

from __future__ import annotations

import math
from typing import Dict, Tuple


def series_key(name: str, labels: Dict[str, str]) -> str:
    """Render ``name`` + labels as the canonical series string."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A value that can go up and down (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, amount: float) -> None:
        self.value += float(amount)


class Histogram:
    """Streaming summary of observations: count, sum, min, max, mean.

    Full bucketing is overkill for the per-analysis timings this layer
    records (tens of observations per run); the summary is exact and
    constant-size.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002 — no-op backend
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class MetricsRegistry:
    """Owns every metric series of one telemetry context."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Histogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, str]):
        return name, tuple(sorted(labels.items()))

    def counter(self, name: str, /, **labels: str) -> Counter:
        key = self._key(name, labels)
        inst = self._counters.get(key)
        if inst is None:
            inst = self._counters[key] = Counter()
        return inst

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        key = self._key(name, labels)
        inst = self._gauges.get(key)
        if inst is None:
            inst = self._gauges[key] = Gauge()
        return inst

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        key = self._key(name, labels)
        inst = self._histograms.get(key)
        if inst is None:
            inst = self._histograms[key] = Histogram()
        return inst

    def snapshot(self) -> dict:
        """A JSON-serializable dump of every series, sorted for diffing."""
        counters = {series_key(name, dict(labels)): inst.value
                    for (name, labels), inst in self._counters.items()}
        gauges = {series_key(name, dict(labels)): inst.value
                  for (name, labels), inst in self._gauges.items()}
        histograms = {}
        for (name, labels), inst in self._histograms.items():
            histograms[series_key(name, dict(labels))] = {
                "count": inst.count,
                "sum": inst.total,
                "min": inst.min if inst.count else None,
                "max": inst.max if inst.count else None,
                "mean": inst.mean,
            }
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullRegistry(MetricsRegistry):
    """Free-when-disabled registry: every lookup returns a shared no-op."""

    def counter(self, name: str, /, **labels: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str, /, **labels: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, /, **labels: str) -> Histogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}
