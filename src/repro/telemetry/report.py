"""Reading trace files back and rendering the `repro report` table.

A trace file is JSONL: an optional ``manifest`` record, then ``span``
records in close order, then an optional final ``metrics`` snapshot.
:func:`load_trace` re-reads one defensively — a missing file or a
non-JSONL payload raises :class:`~repro.errors.TelemetryError`, while
unknown record types are skipped (forward compatibility) — and
:func:`render_report` turns it into the per-stage timing / throughput
table the CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.report import format_table
from repro.errors import TelemetryError
from repro.telemetry.metrics import Histogram


@dataclass
class TraceFile:
    """One parsed trace: manifest, spans, and the final metrics snapshot."""

    path: str
    manifest: Optional[dict] = None
    spans: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None

    def span_names(self) -> List[str]:
        return [s["name"] for s in self.spans]


def load_trace(path: str | Path) -> TraceFile:
    """Parse a trace JSONL file, raising typed errors on garbage."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8", errors="strict")
    except OSError as exc:
        raise TelemetryError(f"{path}: cannot read trace: {exc}") from exc
    except ValueError as exc:
        raise TelemetryError(f"{path}: not a text trace file: {exc}") from exc
    trace = TraceFile(path=str(path))
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TelemetryError(
                f"{path}:{line_no}: bad trace record: {exc}") from exc
        if not isinstance(record, dict):
            raise TelemetryError(
                f"{path}:{line_no}: trace record is not an object")
        kind = record.get("type")
        if kind == "manifest":
            trace.manifest = record
        elif kind == "span":
            if "name" not in record or "seconds" not in record:
                raise TelemetryError(
                    f"{path}:{line_no}: span record missing name/seconds")
            trace.spans.append(record)
        elif kind == "metrics":
            trace.metrics = record.get("metrics")
        # unknown record types are skipped for forward compatibility
    if not trace.spans and trace.metrics is None:
        raise TelemetryError(f"{path}: no span or metrics records found")
    return trace


@dataclass
class _Agg:
    count: int = 0
    seconds: float = 0.0
    rss_kb: int = 0
    errors: int = 0
    #: per-span-name duration distribution, for the p50/p90/p99 columns
    durations: Histogram = field(default_factory=Histogram)


def aggregate_spans(trace: TraceFile) -> Dict[str, _Agg]:
    """Per span name: count, total seconds, peak-RSS growth, errors,
    and the duration distribution (bucketed, for quantile estimates)."""
    out: Dict[str, _Agg] = {}
    for span in trace.spans:
        agg = out.setdefault(span["name"], _Agg())
        agg.count += 1
        seconds = float(span["seconds"])
        agg.seconds += seconds
        agg.durations.observe(seconds)
        agg.rss_kb += int(span.get("rss_delta_kb") or 0)
        if span.get("error"):
            agg.errors += 1
    return out


def _top_level_seconds(trace: TraceFile) -> float:
    """Wall time attributable to root spans (no double-counting children)."""
    return sum(float(s["seconds"]) for s in trace.spans
               if s.get("parent_id") is None)


def _throughput_rows(trace: TraceFile) -> List[Tuple[str, str]]:
    """Headline record counts from the final metrics snapshot."""
    if not trace.metrics:
        return []
    rows: List[Tuple[str, str]] = []
    for series, value in trace.metrics.get("counters", {}).items():
        rows.append((series, f"{value:,}"))
    return rows


def render_report(trace: TraceFile) -> str:
    """The `repro report` output: manifest header, timing table, counters."""
    lines: List[str] = []
    if trace.manifest:
        m = trace.manifest
        bits = [f"command={m.get('command')}"]
        if m.get("seed") is not None:
            bits.append(f"seed={m['seed']}")
        if m.get("config_hash"):
            bits.append(f"config={m['config_hash']}")
        if m.get("git_rev"):
            bits.append(f"rev={m['git_rev']}")
        if m.get("wall_seconds") is not None:
            bits.append(f"wall={m['wall_seconds']:.2f}s")
        lines.append("run: " + "  ".join(bits))
        lines.append("")

    aggregates = aggregate_spans(trace)
    total = _top_level_seconds(trace) or sum(
        a.seconds for a in aggregates.values()) or 1.0
    rows = []
    for name, agg in sorted(aggregates.items(),
                            key=lambda kv: -kv[1].seconds):
        quantiles = [agg.durations.quantile(q) for q in (0.5, 0.9, 0.99)]
        rows.append([
            name,
            agg.count,
            f"{agg.seconds:.3f}",
            f"{agg.seconds / agg.count:.3f}",
            *(("-" if q is None else f"{q:.3f}") for q in quantiles),
            f"{100.0 * agg.seconds / total:.1f}%",
            f"{agg.rss_kb / 1024:.1f}",
            agg.errors or "",
        ])
    if rows:
        lines.append(format_table(
            ["span", "count", "total_s", "mean_s", "p50_s", "p90_s",
             "p99_s", "share", "rss_mb", "err"],
            rows, title=f"spans ({len(trace.spans)} recorded):"))

    throughput = _throughput_rows(trace)
    if throughput:
        lines.append("")
        lines.append(format_table(["counter", "value"], throughput,
                                  title="counters:"))
    return "\n".join(lines)
