"""Hierarchical tracing spans.

``with tracer.span("generate.traffic", flows=123) as span:`` opens a span;
on close it records wall time, the peak-RSS delta across the span (how much
the stage grew the process's high-water mark), and the exception type if
one escaped.  Spans nest: the tracer keeps a stack, so a span opened inside
another records its parent id and depth, and a trace file replays the whole
call tree.

Finished spans are buffered as plain JSON-serializable dicts (capped — a
runaway loop must not OOM the tracer) and can be streamed to a sink
callback as they close, which is how the CLI's ``--progress`` stage lines
and ``--trace`` JSONL files are fed from the same instrumentation.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

try:  # pragma: no cover - resource is absent only on non-POSIX platforms
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None

#: buffered finished-span cap; the count stays exact past it
MAX_SPANS = 100_000


def peak_rss_kb() -> int:
    """The process's peak RSS high-water mark, in KiB (0 if unknown)."""
    if _resource is None:
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


class Span:
    """One live (then finished) traced stage."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "start", "seconds", "rss_delta_kb", "error_type")

    def __init__(self, name: str, attrs: Dict[str, Any], span_id: int,
                 parent_id: Optional[int], depth: int):
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = 0.0
        self.seconds = 0.0
        self.rss_delta_kb = 0
        self.error_type: Optional[str] = None

    def to_record(self) -> dict:
        """The JSONL representation of a finished span."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "seconds": self.seconds,
            "rss_delta_kb": self.rss_delta_kb,
            "error": self.error_type,
            "attrs": self.attrs,
        }


class _SpanContext:
    """Context manager tying one :class:`Span` to the tracer's stack."""

    __slots__ = ("_tracer", "span", "_t0", "_rss0")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self.span.start = time.time()
        self._t0 = time.perf_counter()
        self._rss0 = peak_rss_kb()
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.seconds = time.perf_counter() - self._t0
        self.span.rss_delta_kb = peak_rss_kb() - self._rss0
        if exc_type is not None:
            self.span.error_type = exc_type.__name__
        self._tracer._close(self.span)
        return False  # never swallow


class _NullSpanContext:
    """Shared, reusable no-op span context (see :class:`NullTracer`)."""

    __slots__ = ("span",)

    def __init__(self) -> None:
        self.span = Span("<null>", {}, span_id=0, parent_id=None, depth=0)

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class Tracer:
    """Produces and collects spans for one telemetry context."""

    def __init__(self, on_close: Optional[Callable[[Span], None]] = None):
        self.records: List[dict] = []
        self.total_spans = 0
        self.on_close = on_close
        self._stack: List[int] = []
        self._next_id = 1

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span; use as a context manager."""
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        span = Span(name, attrs, span_id=span_id, parent_id=parent,
                    depth=len(self._stack))
        self._stack.append(span_id)
        return _SpanContext(self, span)

    def _close(self, span: Span) -> None:
        # the stack discipline is enforced by the with-statement pairing
        if self._stack and self._stack[-1] == span.span_id:
            self._stack.pop()
        self.total_spans += 1
        if len(self.records) < MAX_SPANS:
            self.records.append(span.to_record())
        if self.on_close is not None:
            self.on_close(span)


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """Free-when-disabled tracer: one shared span, nothing recorded."""

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT
