"""Run manifests: what produced this trace / corpus / metrics file.

Every ``generate``/``analyze`` invocation is stamped with enough context to
reproduce it — the command, the seed, a short hash of the scenario
configuration, the git revision of the working tree, and interpreter /
package versions.  The same dict heads the ``--trace`` JSONL file, lands in
the ``--metrics`` JSON, and (for ``generate``) is embedded in the corpus's
checksummed ``manifest.json`` so ``repro validate`` can answer "where did
this corpus come from" years later.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from typing import Any, Optional


def config_hash(config: Any) -> Optional[str]:
    """A short stable digest of a (dataclass) configuration.

    Nested dataclasses are flattened via :func:`dataclasses.asdict`; any
    non-JSON leaf is stringified, so the hash is stable across runs but
    changes whenever any knob changes.
    """
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        payload = {"repr": repr(config)}
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]


def git_revision() -> Optional[str]:
    """The current git commit (short), or None outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5.0, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_manifest(command: str, *, seed: Optional[int] = None,
                 config: Any = None, **extra: Any) -> dict:
    """Build the manifest dict stamped on one CLI invocation.

    ``wall_seconds`` is filled in by the caller once the run finishes
    (see :meth:`repro.telemetry.Telemetry.finish_manifest`).
    """
    from repro import __version__

    manifest = {
        "type": "manifest",
        "command": command,
        "seed": seed,
        "config_hash": config_hash(config),
        "git_rev": git_revision(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "started_unix": time.time(),
        "wall_seconds": None,
    }
    manifest.update(extra)
    return manifest
