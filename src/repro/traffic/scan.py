"""Internet-wide scanning / background radiation.

Low-rate probes hitting blackholed address space regardless of whether a
host answers. The paper names scans as one of the biases of incoming
traffic (§6.3, "end-hosts might receive traffic on ports although no
application is listening") and as a trigger class RTBH was originally
designed for (§2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.errors import ScenarioError

#: Ports scanners famously sweep.
SCANNED_PORTS: tuple[tuple[int, int], ...] = (
    (6, 22), (6, 23), (6, 80), (6, 443), (6, 445), (6, 3389),
    (6, 8080), (17, 53), (17, 123), (17, 5060),
)


@dataclass(frozen=True)
class ScanConfig:
    """One scanner sweeping a set of targets over a time range."""

    scanner_ip: int
    ingress_asn: int
    origin_asn: int
    start: float
    duration: float
    pps_per_target: float = 0.02
    mean_packet_size: float = 60.0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.pps_per_target <= 0:
            raise ScenarioError("scan duration and rate must be positive")


def generate_scan_flows(
    rng: np.random.Generator,
    config: ScanConfig,
    target_ips: Sequence[int],
    ports_per_target: int = 2,
) -> List[FlowSpec]:
    """Emit probe flows towards each target on a few scanned ports."""
    if not target_ips:
        raise ScenarioError("need at least one scan target")
    if ports_per_target < 1:
        raise ScenarioError("ports_per_target must be >= 1")
    flows = []
    for target in target_ips:
        picks = rng.choice(len(SCANNED_PORTS), size=min(ports_per_target, len(SCANNED_PORTS)),
                           replace=False)
        for pick in picks:
            protocol, port = SCANNED_PORTS[int(pick)]
            flows.append(FlowSpec(
                start=config.start,
                duration=config.duration,
                src_ip=config.scanner_ip,
                dst_ip=int(target),
                protocol=protocol,
                src_port=int(rng.integers(32768, 65536)),
                dst_port=port,
                pps=config.pps_per_target,
                mean_packet_size=config.mean_packet_size,
                ingress_asn=config.ingress_asn,
                origin_asn=config.origin_asn,
                label=FlowLabel.SCAN,
            ))
    return flows
