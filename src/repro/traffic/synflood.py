"""TCP SYN flood attack traffic.

State-exhaustion attacks with spoofed sources: small packets towards one
service port, source addresses drawn randomly. Spoofed origins mean the
"origin AS" attribution the paper performs for reflection attacks is
meaningless here — the generator assigns the origin of the *spoofed*
address block, just as a MAC-based handover mapping would still be valid
but an IP-based origin lookup would mislead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.errors import ScenarioError


@dataclass(frozen=True)
class SynFloodConfig:
    """Shape of one SYN flood."""

    victim_ip: int
    victim_port: int
    start: float
    duration: float
    total_pps: float
    num_sources: int = 200
    mean_packet_size: float = 60.0
    #: base of the spoofed source range (defaults inside 100.64/10)
    spoofed_base: int = 0x64400000

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.total_pps <= 0:
            raise ScenarioError("attack duration and pps must be positive")
        if self.num_sources < 1:
            raise ScenarioError("need at least one source")


def generate_syn_flood_flows(
    rng: np.random.Generator,
    config: SynFloodConfig,
    ingress_asns: Sequence[int],
    spoofed_origin_asns: Sequence[int],
) -> List[FlowSpec]:
    """Emit spoofed-source SYN flows entering via random handover ASes."""
    if not ingress_asns or not spoofed_origin_asns:
        raise ScenarioError("need ingress and spoofed-origin AS lists")
    per_source = config.total_pps / config.num_sources
    if per_source * config.duration < 1.0:
        raise ScenarioError("attack rate too low for the source count")
    flows = []
    for _ in range(config.num_sources):
        flows.append(FlowSpec(
            start=config.start,
            duration=config.duration,
            src_ip=int(config.spoofed_base + rng.integers(0, 1 << 22)),
            dst_ip=config.victim_ip,
            protocol=6,
            src_port=int(rng.integers(1024, 65536)),
            dst_port=config.victim_port,
            pps=per_source,
            mean_packet_size=config.mean_packet_size,
            ingress_asn=int(rng.choice(ingress_asns)),
            origin_asn=int(rng.choice(spoofed_origin_asns)),
            label=FlowLabel.ATTACK,
        ))
    return flows
