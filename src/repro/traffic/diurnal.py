"""Diurnal modulation of traffic rates.

Inter-domain traffic follows a day/night cycle; legitimate-traffic flows
are emitted in segments whose rate follows a raised cosine with a
configurable peak hour and peak-to-trough ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScenarioError

DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class DiurnalProfile:
    """A raised-cosine day/night rate profile.

    ``factor(t)`` averages 1.0 over a day, peaks at ``peak_hour`` local
    time, and bottoms out at ``trough_ratio`` times the peak.
    """

    peak_hour: float = 20.0
    trough_ratio: float = 0.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.peak_hour < 24.0:
            raise ScenarioError(f"peak_hour must be in [0, 24): {self.peak_hour}")
        if not 0.0 < self.trough_ratio <= 1.0:
            raise ScenarioError(f"trough_ratio must be in (0, 1]: {self.trough_ratio}")

    def factor(self, time: float | np.ndarray) -> float | np.ndarray:
        """Rate multiplier at ``time`` (simulation seconds); mean 1.0."""
        phase = 2.0 * np.pi * ((np.asarray(time) / DAY_SECONDS) - self.peak_hour / 24.0)
        # cosine in [trough, 1] scaled so its day-average is 1
        raw = (1.0 + self.trough_ratio) / 2.0 + (1.0 - self.trough_ratio) / 2.0 * np.cos(phase)
        mean = (1.0 + self.trough_ratio) / 2.0
        result = raw / mean
        if np.ndim(time) == 0:
            return float(result)
        return result

    def segment_rates(self, day_start: float, base_pps: float,
                      segments: int = 4) -> list[tuple[float, float, float]]:
        """Chop one day into ``segments`` equal parts with modulated rates.

        Returns ``(start, duration, pps)`` triples; each segment's rate is
        the profile evaluated at the segment midpoint.
        """
        if segments < 1:
            raise ScenarioError(f"segments must be >= 1: {segments}")
        seg = DAY_SECONDS / segments
        out = []
        for i in range(segments):
            start = day_start + i * seg
            pps = base_pps * self.factor(start + seg / 2.0)
            out.append((start, seg, pps))
        return out
