"""Carpet / random-port attacks.

The ~10% of events Fig. 14 finds hard to filter: UDP (and mixed-protocol)
floods to random or linearly increasing destination ports from sources
that are not known amplification reflectors. Port-list-based fine-grained
filtering cannot fully stop them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Sequence

import numpy as np

from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.errors import ScenarioError


class PortPattern(str, Enum):
    RANDOM = "random"
    INCREASING = "increasing"
    MULTI_PROTOCOL = "multi-protocol"


@dataclass(frozen=True)
class CarpetAttackConfig:
    """Shape of one carpet attack."""

    victim_ip: int
    start: float
    duration: float
    total_pps: float
    pattern: PortPattern = PortPattern.RANDOM
    num_flows: int = 150
    mean_packet_size: float = 512.0
    source_base: int = 0x0C000000  # 12.0.0.0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.total_pps <= 0:
            raise ScenarioError("attack duration and pps must be positive")
        if self.num_flows < 1:
            raise ScenarioError("need at least one flow")


def generate_carpet_flows(
    rng: np.random.Generator,
    config: CarpetAttackConfig,
    ingress_asns: Sequence[int],
    origin_asns: Sequence[int],
) -> List[FlowSpec]:
    """Emit the attack's flows with the configured destination-port pattern."""
    if not ingress_asns or not origin_asns:
        raise ScenarioError("need ingress and origin AS lists")
    per_flow = config.total_pps / config.num_flows
    if per_flow * config.duration < 1.0:
        raise ScenarioError("attack rate too low for the flow count")
    flows = []
    port_walk = int(rng.integers(1, 30_000))
    for i in range(config.num_flows):
        if config.pattern is PortPattern.INCREASING:
            dst_port = (port_walk + i * 7) % 65_536
        else:
            dst_port = int(rng.integers(1, 65_536))
        if config.pattern is PortPattern.MULTI_PROTOCOL:
            protocol = int(rng.choice([6, 17, 1]))
        else:
            protocol = 17
        flows.append(FlowSpec(
            start=config.start,
            duration=config.duration,
            src_ip=int(config.source_base + rng.integers(0, 1 << 20)),
            dst_ip=config.victim_ip,
            protocol=protocol,
            src_port=int(rng.integers(1024, 65_536)),
            dst_port=dst_port,
            pps=per_flow,
            mean_packet_size=config.mean_packet_size,
            ingress_asn=int(rng.choice(ingress_asns)),
            origin_asn=int(rng.choice(origin_asns)),
            label=FlowLabel.ATTACK,
        ))
    return flows
