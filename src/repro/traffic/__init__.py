"""Synthetic traffic generators.

Each generator emits :class:`~repro.dataplane.flow.FlowSpec` aggregates for
one class of traffic the paper observes at the IXP: UDP amplification
attacks reflected off a skewed amplifier population, TCP SYN floods,
carpet/random-port attacks, diurnal legitimate client/server traffic, and
background scanning.
"""

from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.amplification import (
    Amplifier,
    AmplifierPool,
    AmplificationAttackConfig,
    generate_amplification_flows,
)
from repro.traffic.synflood import SynFloodConfig, generate_syn_flood_flows
from repro.traffic.carpet import CarpetAttackConfig, generate_carpet_flows
from repro.traffic.legit import (
    ClientProfile,
    ServerProfile,
    generate_client_traffic,
    generate_server_traffic,
)
from repro.traffic.scan import ScanConfig, generate_scan_flows

__all__ = [
    "DiurnalProfile",
    "Amplifier",
    "AmplifierPool",
    "AmplificationAttackConfig",
    "generate_amplification_flows",
    "SynFloodConfig",
    "generate_syn_flood_flows",
    "CarpetAttackConfig",
    "generate_carpet_flows",
    "ServerProfile",
    "ClientProfile",
    "generate_server_traffic",
    "generate_client_traffic",
    "ScanConfig",
    "generate_scan_flows",
]
