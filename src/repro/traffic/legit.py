"""Legitimate traffic of the hosts that end up blackholed.

Two host archetypes drive the client/server analysis of §6:

* **servers** receive traffic on a small, stable set of service ports
  (their daily *top port* barely varies) from clients using ephemeral
  source ports, and answer from those service ports;
* **clients** (e.g. DSL subscribers, often gamers) initiate connections
  from ephemeral ports, so their *incoming* traffic targets a different
  high port almost every day — the port-variation signal of Fig. 17.

Generators emit a configurable number of flow aggregates per host per day
in both directions, diurnally modulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.errors import ScenarioError
from repro.net.ports import EPHEMERAL_PORT_RANGE
from repro.traffic.diurnal import DAY_SECONDS, DiurnalProfile

#: (ingress_asn, origin_asn) of a remote network exchanging traffic with a
#: scenario host through the IXP.
RemotePeer = Tuple[int, int]


@dataclass(frozen=True)
class ServerProfile:
    """A server host: stable service ports, client-heavy incoming mix."""

    ip: int
    member_asn: int
    #: (protocol, port, weight) — weight biases the daily top port
    services: Sequence[Tuple[int, int, float]]
    base_pps_in: float = 1.0
    base_pps_out: float = 0.8
    mean_size_in: float = 300.0
    mean_size_out: float = 900.0

    def __post_init__(self) -> None:
        if not self.services:
            raise ScenarioError("a server needs at least one service")
        if any(w <= 0 for _, _, w in self.services):
            raise ScenarioError("service weights must be positive")


@dataclass(frozen=True)
class ClientProfile:
    """A client host: ephemeral-port incoming traffic, varying daily."""

    ip: int
    member_asn: int
    #: (protocol, remote service port) the client talks to
    remote_services: Sequence[Tuple[int, int]] = ((6, 443), (17, 443))
    base_pps_in: float = 1.0
    base_pps_out: float = 0.5
    mean_size_in: float = 900.0
    mean_size_out: float = 200.0

    def __post_init__(self) -> None:
        if not self.remote_services:
            raise ScenarioError("a client needs at least one remote service")


def _ephemeral(rng: np.random.Generator) -> int:
    low, high = EPHEMERAL_PORT_RANGE
    return int(rng.integers(low, high + 1))


def generate_server_traffic(
    rng: np.random.Generator,
    profile: ServerProfile,
    remote_peers: Sequence[RemotePeer],
    day_index: int,
    flows_per_day: int = 3,
    diurnal: DiurnalProfile | None = None,
    remote_ip_base: int = 0x0D000000,
) -> List[FlowSpec]:
    """One day of incoming + outgoing traffic for a server host.

    Incoming flows hit the (weighted) service ports from ephemeral client
    ports; outgoing flows answer from the service ports.
    """
    if not remote_peers:
        raise ScenarioError("need at least one remote peer")
    diurnal = diurnal or DiurnalProfile()
    day_start = day_index * DAY_SECONDS
    weights = np.array([w for _, _, w in profile.services])
    weights = weights / weights.sum()
    flows: List[FlowSpec] = []
    for _ in range(flows_per_day):
        svc_proto, svc_port, _ = profile.services[
            int(rng.choice(len(profile.services), p=weights))
        ]
        ingress, origin = remote_peers[int(rng.integers(len(remote_peers)))]
        remote_ip = int(remote_ip_base + rng.integers(0, 1 << 20))
        client_port = _ephemeral(rng)
        offset = float(rng.uniform(0, DAY_SECONDS / 2))
        duration = float(rng.uniform(DAY_SECONDS / 4, DAY_SECONDS / 2))
        start = day_start + offset
        rate_factor = float(diurnal.factor(start + duration / 2))
        flows.append(FlowSpec(  # incoming: client -> server service port
            start=start, duration=duration,
            src_ip=remote_ip, dst_ip=profile.ip,
            protocol=svc_proto, src_port=client_port, dst_port=svc_port,
            pps=profile.base_pps_in * rate_factor,
            mean_packet_size=profile.mean_size_in,
            ingress_asn=ingress, origin_asn=origin,
            label=FlowLabel.LEGIT,
        ))
        flows.append(FlowSpec(  # outgoing: server service port -> client
            start=start, duration=duration,
            src_ip=profile.ip, dst_ip=remote_ip,
            protocol=svc_proto, src_port=svc_port, dst_port=client_port,
            pps=profile.base_pps_out * rate_factor,
            mean_packet_size=profile.mean_size_out,
            ingress_asn=profile.member_asn, origin_asn=profile.member_asn,
            label=FlowLabel.LEGIT,
        ))
    return flows


def generate_client_traffic(
    rng: np.random.Generator,
    profile: ClientProfile,
    remote_peers: Sequence[RemotePeer],
    day_index: int,
    flows_per_day: int = 2,
    diurnal: DiurnalProfile | None = None,
    remote_ip_base: int = 0x0D800000,
) -> List[FlowSpec]:
    """One day of traffic for a client host.

    The client opens connections from fresh ephemeral ports each day, so
    the dominant *destination* port of its incoming traffic changes daily.
    """
    if not remote_peers:
        raise ScenarioError("need at least one remote peer")
    diurnal = diurnal or DiurnalProfile()
    day_start = day_index * DAY_SECONDS
    flows: List[FlowSpec] = []
    for _ in range(flows_per_day):
        proto, svc_port = profile.remote_services[
            int(rng.integers(len(profile.remote_services)))
        ]
        ingress, origin = remote_peers[int(rng.integers(len(remote_peers)))]
        remote_ip = int(remote_ip_base + rng.integers(0, 1 << 20))
        client_port = _ephemeral(rng)
        offset = float(rng.uniform(0, DAY_SECONDS / 2))
        duration = float(rng.uniform(DAY_SECONDS / 8, DAY_SECONDS / 3))
        start = day_start + offset
        rate_factor = float(diurnal.factor(start + duration / 2))
        flows.append(FlowSpec(  # incoming: remote service -> client's ephemeral port
            start=start, duration=duration,
            src_ip=remote_ip, dst_ip=profile.ip,
            protocol=proto, src_port=svc_port, dst_port=client_port,
            pps=profile.base_pps_in * rate_factor,
            mean_packet_size=profile.mean_size_in,
            ingress_asn=ingress, origin_asn=origin,
            label=FlowLabel.LEGIT,
        ))
        flows.append(FlowSpec(  # outgoing: client -> remote service
            start=start, duration=duration,
            src_ip=profile.ip, dst_ip=remote_ip,
            protocol=proto, src_port=client_port, dst_port=svc_port,
            pps=profile.base_pps_out * rate_factor,
            mean_packet_size=profile.mean_size_out,
            ingress_asn=profile.member_asn, origin_asn=profile.member_asn,
            label=FlowLabel.LEGIT,
        ))
    return flows
