"""UDP amplification (reflection) attack traffic.

A fixed population of reflectors — each speaking one amplification
protocol, hosted in an *origin AS* and entering the IXP through a
*handover AS* — is shared by all attacks of a scenario. Per-AS selection
weights are Zipf-skewed so a few ASes participate in a large share of all
attacks while most appear rarely, reproducing the participation CDF of
Fig. 15 (top origin AS in ~60% of events).

Reflected packets arrive at the victim with the amplification protocol as
the UDP *source* port (the reflector answers from its service port) and
the spoofed request's source port as the destination port.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.dataplane.flow import FlowLabel, FlowSpec
from repro.errors import ScenarioError
from repro.net.ports import AMPLIFICATION_PROTOCOLS, AmplificationProtocol


@dataclass(frozen=True)
class Amplifier:
    """One reflector host."""

    ip: int
    origin_asn: int
    ingress_asn: int
    protocol: AmplificationProtocol


@dataclass
class AmplifierPool:
    """The scenario-wide reflector population."""

    amplifiers: List[Amplifier]
    #: per-amplifier selection weight (already normalised)
    weights: np.ndarray

    @classmethod
    def build(
        cls,
        rng: np.random.Generator,
        origin_asns: Sequence[int],
        ingress_asns: Sequence[int],
        amplifiers_per_asn: int = 10,
        protocols: Sequence[AmplificationProtocol] | None = None,
        zipf_exponent: float = 1.3,
        ip_space_start: int = 0x0B000000,  # 11.0.0.0, clear of scenario victims
        broad_coverage_ranks: int = 3,
    ) -> "AmplifierPool":
        """Create reflectors spread over ``origin_asns``.

        Each origin AS hosts ``amplifiers_per_asn`` reflectors and is
        reached through a fixed, randomly chosen handover AS. AS-level
        Zipf weights make participation skewed across attacks.

        The first ``broad_coverage_ranks`` ASes additionally host one
        reflector per of the first six protocols in ``protocols`` — big
        abused hosters answer on every popular vector, which is what puts
        the same AS into the majority of attacks (Fig. 15's top AS).
        """
        if not origin_asns or not ingress_asns:
            raise ScenarioError("need at least one origin and one ingress AS")
        if zipf_exponent <= 0:
            raise ScenarioError(f"zipf_exponent must be positive: {zipf_exponent}")
        usable = [p for p in (protocols or AMPLIFICATION_PROTOCOLS) if p.port != 0]
        if not usable:
            raise ScenarioError("no usable amplification protocols")
        ranks = np.arange(1, len(origin_asns) + 1, dtype=np.float64)
        asn_weights = ranks ** -zipf_exponent
        asn_weights /= asn_weights.sum()

        amplifiers: List[Amplifier] = []
        weights: List[float] = []
        next_ip = ip_space_start
        for rank, (asn, asn_weight) in enumerate(zip(origin_asns, asn_weights)):
            # Heavy reflector ASes are multi-homed: each of their hosts may
            # enter the IXP through a different member. The long tail is
            # single-homed. Without this, one lucky policy draw at a single
            # member would decide the fate of most attack traffic.
            multihomed = rank < max(broad_coverage_ranks, 10)
            ingress = int(rng.choice(ingress_asns))
            if rank < broad_coverage_ranks:
                asn_protocols = list(usable[:6]) or list(usable)
                while len(asn_protocols) < amplifiers_per_asn:
                    asn_protocols.append(usable[int(rng.integers(len(usable)))])
            else:
                asn_protocols = [usable[int(rng.integers(len(usable)))]
                                 for _ in range(amplifiers_per_asn)]
            for protocol in asn_protocols:
                amplifiers.append(Amplifier(
                    ip=next_ip, origin_asn=asn,
                    ingress_asn=(int(rng.choice(ingress_asns)) if multihomed
                                 else ingress),
                    protocol=protocol,
                ))
                weights.append(asn_weight / len(asn_protocols))
                next_ip += 1
        w = np.asarray(weights)
        return cls(amplifiers=amplifiers, weights=w / w.sum())

    def __len__(self) -> int:
        return len(self.amplifiers)

    def select(self, rng: np.random.Generator, count: int,
               protocols: Sequence[AmplificationProtocol]) -> List[Amplifier]:
        """Draw ``count`` distinct reflectors speaking one of ``protocols``,
        respecting the skewed per-AS weights."""
        wanted = {p.port for p in protocols}
        idx = [i for i, a in enumerate(self.amplifiers) if a.protocol.port in wanted]
        if not idx:
            raise ScenarioError(f"no amplifiers for ports {sorted(wanted)}")
        sub_weights = self.weights[idx]
        sub_weights = sub_weights / sub_weights.sum()
        take = min(count, len(idx))
        chosen = rng.choice(len(idx), size=take, replace=False, p=sub_weights)
        return [self.amplifiers[idx[i]] for i in chosen]


@dataclass(frozen=True)
class AmplificationAttackConfig:
    """Shape of one reflection attack."""

    victim_ip: int
    start: float
    duration: float
    total_pps: float
    protocols: Sequence[AmplificationProtocol]
    num_amplifiers: int = 300
    mean_packet_size: float = 1100.0
    #: destination port seen at the victim (the spoofed request's source
    #: port); a single value models the common fixed-src-port booters.
    victim_port: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.total_pps <= 0:
            raise ScenarioError("attack duration and pps must be positive")
        if not self.protocols:
            raise ScenarioError("attack needs at least one protocol")


def generate_amplification_flows(
    rng: np.random.Generator,
    pool: AmplifierPool,
    config: AmplificationAttackConfig,
) -> List[FlowSpec]:
    """Emit per-reflector flows for one attack.

    The total rate is split over reflectors with a Dirichlet draw, so a few
    reflectors carry much of the attack (heavy hitters) while all
    contribute — matching honeypot observations of booter behaviour.
    """
    amplifiers = pool.select(rng, config.num_amplifiers, config.protocols)
    # Heavily skewed per-reflector contributions: booter infrastructures
    # concentrate most of an attack's volume on a few strong reflectors,
    # which is also what makes the per-event /32 drop rate so wide (Fig. 6)
    # — one dominant handover AS decides most of the event's fate.
    shares = rng.dirichlet(np.full(len(amplifiers), 0.12))
    victim_port = config.victim_port or int(rng.integers(1024, 65536))
    flows = []
    for amplifier, share in zip(amplifiers, shares):
        pps = config.total_pps * float(share)
        if pps * config.duration < 1.0:
            continue  # sub-packet contributions: merge into nothing
        flows.append(FlowSpec(
            start=config.start,
            duration=config.duration,
            src_ip=amplifier.ip,
            dst_ip=config.victim_ip,
            protocol=17,
            src_port=amplifier.protocol.port,
            dst_port=victim_port,
            pps=pps,
            mean_packet_size=config.mean_packet_size,
            ingress_asn=amplifier.ingress_asn,
            origin_asn=amplifier.origin_asn,
            label=FlowLabel.ATTACK,
        ))
    if not flows:
        raise ScenarioError("attack rate too low: no reflector reaches 1 packet")
    return flows
