"""Corpus manifests and integrity validation.

``generate`` writes a ``manifest.json`` next to the corpus files: per-file
SHA-256 checksums and sizes plus record counts.  :func:`validate_corpus`
replays the contract — files present, checksums matching, every record
parseable, timestamps sane, no suspicious feed gaps — and returns a
:class:`ValidationReport` the CLI turns into an exit code.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.corpus.ingest import IngestReport
from repro.errors import ReproError

#: canonical corpus file names (the CLI re-exports these)
CONTROL_FILE = "control.jsonl"
DATA_FILE = "data.npz"
META_FILE = "platform.json"
MANIFEST_FILE = "manifest.json"

#: a feed gap is suspicious when it exceeds both this many seconds (six
#: hours — longer than any diurnal lull the traffic model produces) …
MIN_SUSPICIOUS_GAP = 6 * 3_600.0
#: … and this multiple of the corpus's median inter-record gap
GAP_FACTOR = 50.0


def file_sha256(path: str | Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def build_manifest(corpus_dir: str | Path,
                   counts: Optional[Dict[str, int]] = None,
                   run: Optional[dict] = None) -> dict:
    """Checksum every regular file in the corpus directory (except the
    manifest itself).

    ``run`` is the telemetry run manifest of the generating invocation
    (seed, config hash, git revision, wall time — see
    :func:`repro.telemetry.run_manifest`), embedded so the provenance of a
    corpus is checksummed along with its contents.
    """
    corpus_dir = Path(corpus_dir)
    files = {}
    for entry in sorted(corpus_dir.iterdir()):
        # dot-prefixed entries are runtime internals (checkpoint journal,
        # segment scratch dir, atomic-write temporaries) — not corpus data
        if entry.is_file() and entry.name != MANIFEST_FILE \
                and not entry.name.startswith("."):
            files[entry.name] = {
                "sha256": file_sha256(entry),
                "bytes": entry.stat().st_size,
            }
    manifest = {"version": 1, "files": files, "counts": dict(counts or {})}
    if run is not None:
        manifest["run"] = dict(run)
    return manifest


def write_manifest(corpus_dir: str | Path,
                   counts: Optional[Dict[str, int]] = None,
                   run: Optional[dict] = None) -> Path:
    """Write ``manifest.json`` atomically (temp file + fsync + rename).

    A crash mid-write therefore leaves either the previous manifest or
    none at all — never a truncated file that ``validate`` would report
    as malformed instead of missing.
    """
    from repro.runtime.atomic import atomic_write_text

    corpus_dir = Path(corpus_dir)
    path = corpus_dir / MANIFEST_FILE
    atomic_write_text(path, json.dumps(
        build_manifest(corpus_dir, counts, run=run), indent=2))
    return path


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating a corpus directory."""

    severity: str  # "error" | "warning"
    code: str      # stable machine-readable tag, e.g. "checksum-mismatch"
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """Everything `repro validate` learned about a corpus directory."""

    corpus_dir: str
    issues: List[ValidationIssue] = field(default_factory=list)
    control_ingest: Optional[IngestReport] = None
    data_ingest: Optional[IngestReport] = None
    control_gaps: List[Tuple[float, float]] = field(default_factory=list)
    data_gaps: List[Tuple[float, float]] = field(default_factory=list)
    #: the generating invocation's run manifest, when the corpus manifest
    #: recorded one (seed, config hash, git rev, wall time)
    run_manifest: Optional[dict] = None

    @property
    def ok(self) -> bool:
        """True when no *error*-severity issue was found (warnings pass)."""
        return not any(i.severity == "error" for i in self.issues)

    def error(self, code: str, message: str) -> None:
        self.issues.append(ValidationIssue("error", code, message))

    def warning(self, code: str, message: str) -> None:
        self.issues.append(ValidationIssue("warning", code, message))

    def format(self) -> str:
        lines = [f"validate {self.corpus_dir}: "
                 f"{'OK' if self.ok else 'CORRUPT'}"]
        if self.run_manifest:
            run = self.run_manifest
            bits = []
            if run.get("seed") is not None:
                bits.append(f"seed={run['seed']}")
            if run.get("config_hash"):
                bits.append(f"config={run['config_hash']}")
            if run.get("git_rev"):
                bits.append(f"rev={run['git_rev']}")
            if run.get("wall_seconds") is not None:
                bits.append(f"wall={run['wall_seconds']:.2f}s")
            if bits:
                lines.append("  generated by: " + "  ".join(bits))
        for issue in self.issues:
            lines.append(f"  {issue}")
        for name, report in (("control", self.control_ingest),
                             ("data", self.data_ingest)):
            if report is not None:
                lines.append(f"  {name}: {report.loaded}/{report.total} "
                             f"records loaded, {report.skipped} bad")
        for name, gaps in (("control", self.control_gaps),
                           ("data", self.data_gaps)):
            for start, end in gaps[:5]:
                lines.append(f"  {name} feed gap: "
                             f"[{start:.0f}, {end:.0f}] "
                             f"({end - start:.0f}s)")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A machine-readable mirror of :meth:`format` for ``--json``."""
        def ingest(report: Optional[IngestReport]) -> Optional[dict]:
            if report is None:
                return None
            return {"total": report.total, "loaded": report.loaded,
                    "skipped": report.skipped}

        return {
            "corpus_dir": self.corpus_dir,
            "ok": self.ok,
            "issues": [
                {"severity": i.severity, "code": i.code, "message": i.message}
                for i in self.issues
            ],
            "control_ingest": ingest(self.control_ingest),
            "data_ingest": ingest(self.data_ingest),
            "control_gaps": [[s, e] for s, e in self.control_gaps],
            "data_gaps": [[s, e] for s, e in self.data_gaps],
            "run_manifest": self.run_manifest,
        }


def _find_gaps(times: np.ndarray,
               min_gap: float = MIN_SUSPICIOUS_GAP,
               factor: float = GAP_FACTOR) -> List[Tuple[float, float]]:
    """Sorted-timestamp gaps that dwarf the feed's own cadence."""
    if len(times) < 3:
        return []
    diffs = np.diff(times)
    positive = diffs[diffs > 0]
    if len(positive) == 0:
        return []
    threshold = max(min_gap, factor * float(np.median(positive)))
    out = []
    for i in np.flatnonzero(diffs > threshold):
        out.append((float(times[i]), float(times[i + 1])))
    return out


def validate_corpus(corpus_dir: str | Path, *,
                    min_gap: float = MIN_SUSPICIOUS_GAP,
                    gap_factor: float = GAP_FACTOR,
                    cache_dir: Optional[str | Path] = None) -> ValidationReport:
    """Integrity-check a corpus directory without loading it strictly.

    Checks, in order: directory and required files exist; manifest
    checksums match; every record parses (lenient load, bad records
    counted as errors); timestamps are finite; record counts match the
    manifest; neither feed has gaps wildly out of scale with its own
    cadence (reported as warnings — a quiet night is not corruption);
    and no analysis-result cache (the corpus-local default, plus
    ``cache_dir`` when given) holds entries keyed to a corpus digest the
    current manifest no longer matches — serving those would silently
    report another corpus's numbers.
    """
    from repro.corpus.control import ControlPlaneCorpus
    from repro.corpus.data import DataPlaneCorpus

    corpus_dir = Path(corpus_dir)
    report = ValidationReport(corpus_dir=str(corpus_dir))
    if not corpus_dir.is_dir():
        report.error("missing-dir", f"{corpus_dir} is not a directory")
        return report

    for required in (CONTROL_FILE, DATA_FILE, META_FILE):
        if not (corpus_dir / required).exists():
            report.error("missing-file", f"{required} not found")
    if not report.ok:
        return report

    manifest: Optional[dict] = None
    manifest_path = corpus_dir / MANIFEST_FILE
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, ValueError) as exc:
            report.error("bad-manifest", f"{MANIFEST_FILE} unreadable: {exc}")
    else:
        report.warning("no-manifest",
                       f"{MANIFEST_FILE} absent; checksums not verifiable")

    if manifest is not None:
        run = manifest.get("run")
        if isinstance(run, dict):
            report.run_manifest = run
        for name, meta in manifest.get("files", {}).items():
            path = corpus_dir / name
            if not path.exists():
                report.error("missing-file",
                             f"{name} listed in manifest but absent")
                continue
            if path.stat().st_size != meta.get("bytes"):
                report.error("size-mismatch",
                             f"{name}: {path.stat().st_size} bytes on disk, "
                             f"{meta.get('bytes')} in manifest")
            elif file_sha256(path) != meta.get("sha256"):
                report.error("checksum-mismatch",
                             f"{name}: SHA-256 differs from manifest")

    control_only = False
    try:
        meta = json.loads((corpus_dir / META_FILE).read_text())
        # tap corpora ingest control-plane feeds only; their empty data
        # plane is by construction, not a defect
        control_only = bool(meta.get("tap_session"))
    except (OSError, ValueError) as exc:
        report.error("bad-metadata", f"{META_FILE} unreadable: {exc}")

    control = None
    try:
        control = ControlPlaneCorpus.load_jsonl(
            corpus_dir / CONTROL_FILE, on_error="skip")
        report.control_ingest = control.ingest_report
        if not control.ingest_report.ok:
            report.error(
                "bad-records",
                f"{CONTROL_FILE}: {control.ingest_report.skipped} of "
                f"{control.ingest_report.total} records malformed")
        if len(control) == 0:
            report.error("empty-corpus", f"{CONTROL_FILE}: no usable records")
    except ReproError as exc:
        report.error("unreadable", f"{CONTROL_FILE}: {exc}")

    data = None
    try:
        data = DataPlaneCorpus.load_npz(corpus_dir / DATA_FILE,
                                        on_error="skip")
        report.data_ingest = data.ingest_report
        if not data.ingest_report.ok:
            report.error(
                "bad-records",
                f"{DATA_FILE}: {data.ingest_report.skipped} of "
                f"{data.ingest_report.total} records malformed")
        if len(data) == 0:
            if control_only:
                report.warning("empty-data-plane",
                               f"{DATA_FILE}: control-only tap corpus")
            else:
                report.error("empty-corpus",
                             f"{DATA_FILE}: no usable records")
    except ReproError as exc:
        report.error("unreadable", f"{DATA_FILE}: {exc}")

    if manifest is not None:
        counts = manifest.get("counts", {})
        recorded = counts.get("control_messages")
        if control is not None and recorded is not None \
                and control.ingest_report.total != recorded:
            report.error("count-mismatch",
                         f"{CONTROL_FILE}: {control.ingest_report.total} "
                         f"records on disk, {recorded} in manifest")
        recorded = counts.get("data_packets")
        if data is not None and recorded is not None \
                and data.ingest_report.total != recorded:
            report.error("count-mismatch",
                         f"{DATA_FILE}: {data.ingest_report.total} "
                         f"records on disk, {recorded} in manifest")

    if control is not None and len(control) >= 3:
        times = np.array([m.time for m in control])
        report.control_gaps = _find_gaps(times, min_gap, gap_factor)
        for start, end in report.control_gaps:
            report.warning("feed-gap",
                           f"{CONTROL_FILE}: {end - start:.0f}s silence at "
                           f"t={start:.0f}")
    if data is not None and len(data) >= 3:
        report.data_gaps = _find_gaps(data.packets["time"], min_gap,
                                      gap_factor)
        for start, end in report.data_gaps:
            report.warning("feed-gap",
                           f"{DATA_FILE}: {end - start:.0f}s silence at "
                           f"t={start:.0f}")

    if control is not None and data is not None \
            and len(control) and len(data):
        overlap_start = max(control.start_time, data.start_time)
        overlap_end = min(control.end_time, data.end_time)
        if overlap_end <= overlap_start:
            report.warning("span-mismatch",
                           "control and data feeds do not overlap in time")

    _check_columnar_sidecars(corpus_dir, report)
    _check_result_caches(corpus_dir, report, cache_dir)
    return report


def _check_columnar_sidecars(corpus_dir: Path,
                             report: ValidationReport) -> None:
    """Validate the ``.columnar/`` sidecars, when any exist.

    Sidecars are derived state, so an absent ``.columnar/`` directory is
    fine.  Present sidecars must be structurally sound, pass the deep
    payload hash, and still be bound (by source SHA-256) to the current
    corpus files — serving stale columns would silently analyze another
    corpus's rows, which is exactly the class of failure ``validate``
    exists to catch.  Exactly one of the two sidecars missing is a torn
    write worth a warning.
    """
    from repro.columnar.format import open_columnar
    from repro.columnar.store import sidecar_paths, source_checksums
    from repro.errors import ColumnarError, TornColumnarError

    control_path, data_path = sidecar_paths(corpus_dir)
    present = [p for p in (control_path, data_path) if p.exists()]
    if not present:
        return
    if len(present) == 1:
        report.warning(
            "columnar-partial",
            f"only {present[0].name} exists under .columnar/ — torn "
            "sidecar write; re-derive with `repro analyze --engine "
            "columnar` or `repro doctor --repair`")
    current = source_checksums(corpus_dir)
    for path, plane in ((control_path, "control"), (data_path, "data")):
        if not path.exists():
            continue
        try:
            segment = open_columnar(path, verify=True)
        except TornColumnarError as exc:
            report.error("columnar-torn", str(exc))
            continue
        except ColumnarError as exc:
            report.error("columnar-corrupt", str(exc))
            continue
        if segment.plane != plane:
            report.error("columnar-corrupt",
                         f"{path.name}: header says plane "
                         f"{segment.plane!r}, expected {plane!r}")
        if current[plane] is not None \
                and segment.source_sha256 != current[plane]:
            report.error(
                "columnar-stale",
                f"{path.name}: derived from {segment.source_file} "
                f"{segment.source_sha256[:12]}… but the corpus file now "
                f"digests to {current[plane][:12]}…; re-derive the "
                "sidecars")


def _check_result_caches(corpus_dir: Path, report: ValidationReport,
                         cache_dir: Optional[str | Path]) -> None:
    """Flag cached analysis results whose corpus digest no longer matches.

    A stale entry means the corpus was regenerated (or edited) after the
    result was cached; ``analyze`` would recompute on a key miss, but a
    cache that *only* holds foreign digests is a deployment error worth
    failing ``validate`` over — most likely a cache directory pointed at
    the wrong corpus.
    """
    from repro.parallel.cache import (
        DEFAULT_CACHE_DIRNAME,
        ResultCache,
        corpus_digest,
    )

    roots = []
    if cache_dir is not None:
        roots.append(Path(cache_dir))
    default = corpus_dir / DEFAULT_CACHE_DIRNAME
    if default.is_dir() and all(r.resolve() != default.resolve()
                                for r in roots):
        roots.append(default)
    if not roots:
        return
    digest = corpus_digest(corpus_dir)
    # a streaming watcher keys its batch-fallback entries per consumed
    # day prefix ("stream:<sha>"); entries matching a prefix of this
    # corpus's own commit log are current, not foreign
    from repro.streaming.engine import stream_corpus_digests
    stream_digests = stream_corpus_digests(corpus_dir)
    for root in roots:
        cache = ResultCache(root)
        for path, entry in cache.stale_entries(digest):
            if str(entry.get("corpus_digest")) in stream_digests:
                continue
            recorded = str(entry.get("corpus_digest"))[:12]
            current = "absent" if digest is None else digest[:12]
            report.error(
                "stale-cache",
                f"{root}: cached result for {entry.get('name')!r} is keyed "
                f"to corpus digest {recorded}… but this corpus digests to "
                f"{current}…; drop the cache or re-run analyze")
