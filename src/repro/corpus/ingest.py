"""Per-record error policies and ingest accounting shared by both loaders.

Every corpus loader accepts an ``on_error`` policy:

``strict``
    The first malformed record raises :class:`~repro.errors.IngestError`
    (a :class:`~repro.errors.CorpusError`).  The default — a clean corpus
    must load silently, a dirty one must not load at all.
``skip``
    Malformed records are dropped; counts and capped per-record reasons
    accumulate in an :class:`IngestReport` attached to the corpus.
``collect``
    Like ``skip``, but the raw offending payloads are also retained (and
    written to a quarantine file when the loader is given one) for offline
    forensics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import IngestError

#: the three supported per-record error policies
POLICIES = ("strict", "skip", "collect")

#: cap on per-record detail kept in memory; counts are always exact
MAX_PROBLEMS = 50
#: cap on raw quarantined payloads kept in memory under ``collect``
MAX_QUARANTINED = 1_000


def check_policy(policy: str) -> str:
    """Validate an ``on_error`` policy name, returning it unchanged."""
    if policy not in POLICIES:
        raise IngestError(
            f"unknown error policy {policy!r}; expected one of {POLICIES}")
    return policy


@dataclass(frozen=True)
class IngestProblem:
    """One malformed record: where it was and why it was rejected."""

    location: str
    reason: str

    def __str__(self) -> str:
        return f"{self.location}: {self.reason}"


@dataclass
class IngestReport:
    """What ingestion kept, dropped, and why.

    ``total`` counts records seen, ``loaded`` records kept, ``skipped``
    records rejected.  ``problems`` holds the first :data:`MAX_PROBLEMS`
    reasons; ``skipped`` stays exact even past the cap.
    """

    source: str
    policy: str
    total: int = 0
    loaded: int = 0
    skipped: int = 0
    problems: List[IngestProblem] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    quarantine_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when every record seen was loaded."""
        return self.skipped == 0

    @property
    def loss_fraction(self) -> float:
        return self.skipped / self.total if self.total else 0.0

    def record_problem(self, location: str, reason: str,
                       payload: Optional[str] = None) -> None:
        self.skipped += 1
        if len(self.problems) < MAX_PROBLEMS:
            self.problems.append(IngestProblem(location=location, reason=reason))
        if (payload is not None and self.policy == "collect"
                and len(self.quarantined) < MAX_QUARANTINED):
            self.quarantined.append(payload)

    def merge_from(self, other: "IngestReport") -> None:
        """Fold a later validation pass into this report (counts add;
        ``loaded`` is overwritten by the caller once final)."""
        self.skipped += other.skipped
        for problem in other.problems:
            if len(self.problems) < MAX_PROBLEMS:
                self.problems.append(problem)
        for payload in other.quarantined:
            if len(self.quarantined) < MAX_QUARANTINED:
                self.quarantined.append(payload)

    def format(self) -> str:
        lines = [
            f"ingest {self.source} [{self.policy}]: "
            f"{self.loaded}/{self.total} records loaded, {self.skipped} skipped"
        ]
        for problem in self.problems:
            lines.append(f"  {problem}")
        if self.skipped > len(self.problems):
            lines.append(f"  … and {self.skipped - len(self.problems)} more")
        if self.quarantine_path:
            lines.append(f"  quarantine: {self.quarantine_path}")
        return "\n".join(lines)
