"""Per-record error policies and ingest accounting shared by both loaders.

Every corpus loader accepts an ``on_error`` policy:

``strict``
    The first malformed record raises :class:`~repro.errors.IngestError`
    (a :class:`~repro.errors.CorpusError`).  The default — a clean corpus
    must load silently, a dirty one must not load at all.
``skip``
    Malformed records are dropped; counts and capped per-record reasons
    accumulate in an :class:`IngestReport` attached to the corpus.
``collect``
    Like ``skip``, but the raw offending payloads are also retained (and
    written to a quarantine file when the loader is given one) for offline
    forensics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, List, Optional, Set, Union

from repro.errors import IngestError


class ErrorPolicy(str, Enum):
    """The per-record error policies, as a proper enum.

    A :class:`str` subclass, so every call site that compares against the
    literal names (``policy == "skip"``) keeps working, and either a
    member or its string value is accepted wherever a policy is expected
    (see :func:`check_policy`).
    """

    STRICT = "strict"
    SKIP = "skip"
    COLLECT = "collect"

    # render as the bare value everywhere (f-strings, json, logs)
    __str__ = str.__str__
    __format__ = str.__format__


#: the three supported per-record error policies (string values)
POLICIES = tuple(p.value for p in ErrorPolicy)

#: cap on per-record detail kept in memory; counts are always exact
MAX_PROBLEMS = 50
#: cap on raw quarantined payloads kept in memory under ``collect``
MAX_QUARANTINED = 1_000


def check_policy(policy: Union[str, ErrorPolicy]) -> ErrorPolicy:
    """Validate an ``on_error`` policy, returning the :class:`ErrorPolicy`.

    Accepts either an :class:`ErrorPolicy` member or one of the string
    values in :data:`POLICIES`; anything else raises
    :class:`~repro.errors.IngestError`.
    """
    try:
        return ErrorPolicy(policy)
    except ValueError:
        raise IngestError(
            f"unknown error policy {policy!r}; expected one of {POLICIES}"
        ) from None


@dataclass(frozen=True)
class IngestProblem:
    """One malformed record: where it was and why it was rejected."""

    location: str
    reason: str

    def __str__(self) -> str:
        return f"{self.location}: {self.reason}"


@dataclass
class IngestReport:
    """What ingestion kept, dropped, and why.

    ``total`` counts records seen, ``loaded`` records kept, ``skipped``
    records rejected.  ``problems`` holds the first :data:`MAX_PROBLEMS`
    reasons; ``skipped`` stays exact even past the cap.
    """

    source: str
    policy: str
    total: int = 0
    loaded: int = 0
    skipped: int = 0
    problems: List[IngestProblem] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)
    quarantine_path: Optional[str] = None
    #: payloads suppressed because their checksum was already quarantined
    #: (a re-ingested corpus must not double-count its quarantine store)
    quarantine_duplicates: int = 0
    #: SHA-256 digests of every payload seen (pre-seeded from an existing
    #: quarantine file), the dedupe key for :attr:`quarantined`
    quarantine_digests: Set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        """True when every record seen was loaded."""
        return self.skipped == 0

    @property
    def loss_fraction(self) -> float:
        return self.skipped / self.total if self.total else 0.0

    def seed_quarantine_digests(self, payloads: Iterable[str]) -> None:
        """Register payloads already quarantined by an earlier pass so they
        are not quarantined (and counted) again — records are identified
        by checksum, not position."""
        for payload in payloads:
            self.quarantine_digests.add(payload_digest(payload))

    def _quarantine(self, payload: str) -> None:
        digest = payload_digest(payload)
        if digest in self.quarantine_digests:
            self.quarantine_duplicates += 1
            return
        self.quarantine_digests.add(digest)
        if len(self.quarantined) < MAX_QUARANTINED:
            self.quarantined.append(payload)

    def record_problem(self, location: str, reason: str,
                       payload: Optional[str] = None) -> None:
        self.skipped += 1
        if len(self.problems) < MAX_PROBLEMS:
            self.problems.append(IngestProblem(location=location, reason=reason))
        if payload is not None and self.policy == "collect":
            self._quarantine(payload)

    def merge_from(self, other: "IngestReport") -> None:
        """Fold a later validation pass into this report (counts add;
        ``loaded`` is overwritten by the caller once final)."""
        self.skipped += other.skipped
        for problem in other.problems:
            if len(self.problems) < MAX_PROBLEMS:
                self.problems.append(problem)
        for payload in other.quarantined:
            self._quarantine(payload)

    def format(self) -> str:
        lines = [
            f"ingest {self.source} [{self.policy}]: "
            f"{self.loaded}/{self.total} records loaded, {self.skipped} skipped"
        ]
        for problem in self.problems:
            lines.append(f"  {problem}")
        if self.skipped > len(self.problems):
            lines.append(f"  … and {self.skipped - len(self.problems)} more")
        if self.quarantine_path:
            lines.append(f"  quarantine: {self.quarantine_path}")
        if self.quarantine_duplicates:
            lines.append(f"  {self.quarantine_duplicates} record(s) already "
                         "quarantined (deduped by checksum)")
        return "\n".join(lines)


def payload_digest(payload: str) -> str:
    """The dedupe key of one quarantined record: SHA-256 of its bytes."""
    return hashlib.sha256(payload.encode("utf-8", "replace")).hexdigest()
