"""Loader for the ``platform.json`` sidecar of a corpus directory.

The sidecar carries everything the analysis pipeline needs beyond the two
corpora: the member ASNs, the route-server ASN, and the PeeringDB
registry for the org-type joins — plus the generation provenance
(``scale`` / ``duration_days`` / ``seed``) that ``repro advance`` uses to
extend a corpus deterministically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple

from repro.corpus.manifest import META_FILE
from repro.errors import CorpusError
from repro.ixp.peeringdb import OrgType, PeeringDB, PeeringDBRecord


def load_platform(corpus_dir: str | Path) -> Tuple[List[int], int, PeeringDB]:
    """``(peer_asns, route_server_asn, peeringdb)`` from ``platform.json``.

    Raises the underlying ``OSError``/``ValueError``/``KeyError`` on a
    missing or malformed sidecar — callers that need a typed error use
    :func:`read_platform_meta` first.
    """
    meta = json.loads((Path(corpus_dir) / META_FILE).read_text())
    db = PeeringDB()
    for entry in meta["peeringdb"]:
        db.register(PeeringDBRecord(
            asn=int(entry["asn"]), name=entry["name"],
            org_type=OrgType(entry["org_type"]), scope=entry["scope"],
        ))
    return list(meta["peer_asns"]), int(meta["route_server_asn"]), db


def read_platform_meta(corpus_dir: str | Path) -> dict:
    """The raw ``platform.json`` dict, with typed errors."""
    path = Path(corpus_dir) / META_FILE
    try:
        meta = json.loads(path.read_text())
    except OSError as exc:
        raise CorpusError(f"{path}: cannot read platform sidecar: {exc}"
                          ) from exc
    except ValueError as exc:
        raise CorpusError(f"{path}: malformed platform sidecar: {exc}"
                          ) from exc
    if not isinstance(meta, dict):
        raise CorpusError(f"{path}: platform sidecar is not an object")
    return meta
