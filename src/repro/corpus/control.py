"""The control-plane corpus: every BGP UPDATE seen at the route server
during the measurement period, in time order.

Withdrawals carry no communities on the wire, so "RTBH-related" withdrawals
are identified the way the paper must: a withdrawal is blackhole-related
when the same peer currently has a blackhole announcement standing for the
prefix. :meth:`ControlPlaneCorpus.rtbh_updates` performs that stateful
classification once and caches it.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.community import Community
from repro.bgp.message import BGPUpdate, UpdateAction
from repro.corpus.ingest import IngestReport, check_policy
from repro.errors import CorpusError, IngestError, ReproError
from repro.net.ip import IPv4Address, IPv4Prefix
from repro import telemetry

#: marker returned alongside updates by :meth:`rtbh_updates`
RTBH_RELATED = "rtbh"


class ControlPlaneCorpus:
    """An ordered store of BGP updates with RTBH-aware helpers.

    Construction validates timestamps: real feeds arrive with corrupt
    records, and a single NaN would silently poison every sort-based
    analysis.  Under ``on_error="strict"`` (default) a non-finite
    timestamp raises :class:`CorpusError`; under ``"skip"``/``"collect"``
    the record is dropped and accounted in :attr:`ingest_report`.
    """

    def __init__(self, messages: Sequence[BGPUpdate], *,
                 on_error: str = "strict",
                 ingest_report: Optional[IngestReport] = None):
        check_policy(on_error)
        report = ingest_report
        if report is None:
            report = IngestReport(source="<memory>", policy=on_error)
            report.total = len(messages)
        clean: List[BGPUpdate] = []
        for index, msg in enumerate(messages):
            if not math.isfinite(msg.time):
                if on_error == "strict":
                    raise CorpusError(
                        f"control-plane record {index} has non-finite "
                        f"timestamp {msg.time!r}")
                report.record_problem(f"record {index}",
                                      f"non-finite timestamp {msg.time!r}",
                                      payload=str(msg))
                continue
            clean.append(msg)
        self._messages: List[BGPUpdate] = sorted(clean, key=lambda m: m.time)
        report.loaded = len(self._messages)
        #: accounting of what construction/loading kept and dropped
        self.ingest_report: IngestReport = report
        self._rtbh_flags: Optional[List[bool]] = None

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[BGPUpdate]:
        return iter(self._messages)

    def __getitem__(self, index: int) -> BGPUpdate:
        return self._messages[index]

    @property
    def start_time(self) -> float:
        if not self._messages:
            raise CorpusError("empty control-plane corpus")
        return self._messages[0].time

    @property
    def end_time(self) -> float:
        if not self._messages:
            raise CorpusError("empty control-plane corpus")
        return self._messages[-1].time

    # -- RTBH classification ---------------------------------------------------

    def _classify(self) -> List[bool]:
        if self._rtbh_flags is not None:
            return self._rtbh_flags
        flags: List[bool] = []
        active: Set[Tuple[int, IPv4Prefix]] = set()
        for msg in self._messages:
            key = (msg.peer_asn, msg.prefix)
            if msg.action is UpdateAction.ANNOUNCE:
                if msg.is_blackhole:
                    active.add(key)
                    flags.append(True)
                else:
                    # replaces any standing blackhole from this peer
                    was_blackhole = key in active
                    active.discard(key)
                    flags.append(was_blackhole)
            else:
                flags.append(key in active)
                active.discard(key)
        self._rtbh_flags = flags
        return flags

    def rtbh_updates(self) -> List[BGPUpdate]:
        """Only the blackhole-related updates (announce + paired withdraw)."""
        flags = self._classify()
        return [m for m, f in zip(self._messages, flags) if f]

    def rtbh_message_count(self) -> int:
        return sum(self._classify())

    def rtbh_prefixes(self) -> Set[IPv4Prefix]:
        """Every prefix that was ever blackholed via the route server."""
        return {m.prefix for m in self.rtbh_updates()}

    def rtbh_windows_by_prefix(self) -> Dict[IPv4Prefix, List[Tuple[float, float, int]]]:
        """Per prefix: (announce_time, withdraw_time, announcer ASN) windows.

        A window left open at the end of the corpus closes at
        :attr:`end_time` — the paper treats still-active blackholes (e.g.
        zombies) the same way.
        """
        open_at: Dict[Tuple[int, IPv4Prefix], float] = {}
        out: Dict[IPv4Prefix, List[Tuple[float, float, int]]] = {}
        for msg in self.rtbh_updates():
            key = (msg.peer_asn, msg.prefix)
            if msg.action is UpdateAction.ANNOUNCE:
                open_at.setdefault(key, msg.time)
            else:
                start = open_at.pop(key, None)
                if start is not None:
                    out.setdefault(msg.prefix, []).append((start, msg.time, msg.peer_asn))
        end = self.end_time if self._messages else 0.0
        for (peer, prefix), start in open_at.items():
            out.setdefault(prefix, []).append((start, end, peer))
        for windows in out.values():
            windows.sort()
        return out

    # -- persistence -----------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """One JSON object per line; communities as ``asn:value`` strings."""
        write_updates_jsonl(self._messages, path)

    @classmethod
    def load_jsonl(cls, path: str | Path, *, on_error: str = "strict",
                   quarantine_path: str | Path | None = None,
                   ) -> "ControlPlaneCorpus":
        """Stream a JSONL dump into a corpus under an error policy.

        ``strict`` raises :class:`~repro.errors.IngestError` at the first
        malformed line; ``skip``/``collect`` drop malformed lines and
        account for them in the returned corpus's :attr:`ingest_report`
        (``collect`` additionally quarantines the raw payloads, writing
        them to ``quarantine_path`` when given).
        """
        check_policy(on_error)
        telem = telemetry.current()
        report = IngestReport(source=str(path), policy=on_error,
                              quarantine_path=(None if quarantine_path is None
                                               else str(quarantine_path)))
        # records already quarantined by an earlier pass are recognised by
        # checksum and neither re-quarantined nor double-counted
        existing_quarantine: List[str] = []
        if quarantine_path is not None and Path(quarantine_path).exists():
            existing_quarantine = [
                line for line in Path(quarantine_path).read_text(
                    encoding="utf-8", errors="replace").splitlines() if line]
            report.seed_quarantine_digests(existing_quarantine)
        messages: List[BGPUpdate] = []
        with telem.span("ingest.control", source=str(path),
                        policy=on_error) as sp:
            for line_no, item in read_updates_jsonl(path, on_error=on_error):
                report.total += 1
                if isinstance(item, BGPUpdate):
                    messages.append(item)
                else:
                    report.record_problem(f"{Path(path).name}:{line_no}",
                                          item[0], payload=item[1])
            if quarantine_path is not None and (existing_quarantine
                                                or report.quarantined):
                from repro.runtime.atomic import atomic_writer

                with atomic_writer(quarantine_path) as fh:
                    for payload in existing_quarantine + report.quarantined:
                        fh.write(payload + "\n")
            corpus = cls(messages, on_error=on_error, ingest_report=report)
            sp.attrs["records"] = report.total
        telem.counter("ingest.records", plane="control",
                      outcome="ok").inc(report.loaded)
        telem.counter("ingest.records", plane="control",
                      outcome="skipped").inc(report.skipped)
        telem.counter("ingest.records", plane="control",
                      outcome="quarantined").inc(len(report.quarantined))
        return corpus


# -- record (de)serialization ----------------------------------------------------


def update_to_json(msg: BGPUpdate) -> dict:
    """The canonical JSONL representation of one UPDATE."""
    return {
        "time": msg.time,
        "peer_asn": msg.peer_asn,
        "action": msg.action.value,
        "prefix": str(msg.prefix),
        "next_hop": None if msg.next_hop is None else str(msg.next_hop),
        "as_path": list(msg.as_path),
        "communities": sorted(str(c) for c in msg.communities),
    }


def update_from_json(raw: dict) -> BGPUpdate:
    """Parse one JSONL record; raises ``KeyError``/``ValueError``/
    :class:`~repro.errors.ReproError` on malformed input."""
    if not isinstance(raw, dict):
        raise ValueError(f"record is not an object: {type(raw).__name__}")
    return BGPUpdate(
        time=float(raw["time"]),
        peer_asn=int(raw["peer_asn"]),
        action=UpdateAction(raw["action"]),
        prefix=IPv4Prefix(raw["prefix"]),
        next_hop=(None if raw["next_hop"] is None
                  else IPv4Address(raw["next_hop"])),
        as_path=tuple(int(asn) for asn in raw["as_path"]),
        communities=frozenset(
            Community.parse(c) for c in raw["communities"]
        ),
    )


def write_updates_jsonl(messages: Sequence[BGPUpdate],
                        path: str | Path) -> None:
    """Write messages in the given order (fault injection relies on the
    order being preserved, so no sorting happens here)."""
    with open(path, "w", encoding="utf-8") as fh:
        for msg in messages:
            fh.write(json.dumps(update_to_json(msg)) + "\n")


def read_updates_jsonl(
    path: str | Path, *, on_error: str = "strict",
) -> Iterator[Tuple[int, "BGPUpdate | Tuple[str, str]"]]:
    """Stream ``(line_no, update)`` pairs from a JSONL dump.

    Under lenient policies a malformed line yields ``(line_no, (reason,
    raw_line))`` instead of raising, letting callers do their own
    accounting without buffering the file.
    """
    check_policy(on_error)
    try:
        fh = open(path, encoding="utf-8", errors="replace")
    except OSError as exc:
        raise IngestError(f"{path}: cannot open: {exc}") from exc
    with fh:
        for line_no, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield line_no, update_from_json(json.loads(line))
            except (KeyError, ValueError, TypeError, ReproError) as exc:
                if on_error == "strict":
                    raise IngestError(
                        f"{path}:{line_no}: bad record: {exc}") from exc
                yield line_no, (f"bad record: {exc}", line)
