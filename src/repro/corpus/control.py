"""The control-plane corpus: every BGP UPDATE seen at the route server
during the measurement period, in time order.

Withdrawals carry no communities on the wire, so "RTBH-related" withdrawals
are identified the way the paper must: a withdrawal is blackhole-related
when the same peer currently has a blackhole announcement standing for the
prefix. :meth:`ControlPlaneCorpus.rtbh_updates` performs that stateful
classification once and caches it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bgp.community import Community
from repro.bgp.message import BGPUpdate, UpdateAction
from repro.errors import CorpusError
from repro.net.ip import IPv4Address, IPv4Prefix

#: marker returned alongside updates by :meth:`rtbh_updates`
RTBH_RELATED = "rtbh"


class ControlPlaneCorpus:
    """An ordered store of BGP updates with RTBH-aware helpers."""

    def __init__(self, messages: Sequence[BGPUpdate]):
        self._messages: List[BGPUpdate] = sorted(messages, key=lambda m: m.time)
        self._rtbh_flags: Optional[List[bool]] = None

    def __len__(self) -> int:
        return len(self._messages)

    def __iter__(self) -> Iterator[BGPUpdate]:
        return iter(self._messages)

    def __getitem__(self, index: int) -> BGPUpdate:
        return self._messages[index]

    @property
    def start_time(self) -> float:
        if not self._messages:
            raise CorpusError("empty control-plane corpus")
        return self._messages[0].time

    @property
    def end_time(self) -> float:
        if not self._messages:
            raise CorpusError("empty control-plane corpus")
        return self._messages[-1].time

    # -- RTBH classification ---------------------------------------------------

    def _classify(self) -> List[bool]:
        if self._rtbh_flags is not None:
            return self._rtbh_flags
        flags: List[bool] = []
        active: Set[Tuple[int, IPv4Prefix]] = set()
        for msg in self._messages:
            key = (msg.peer_asn, msg.prefix)
            if msg.action is UpdateAction.ANNOUNCE:
                if msg.is_blackhole:
                    active.add(key)
                    flags.append(True)
                else:
                    # replaces any standing blackhole from this peer
                    was_blackhole = key in active
                    active.discard(key)
                    flags.append(was_blackhole)
            else:
                flags.append(key in active)
                active.discard(key)
        self._rtbh_flags = flags
        return flags

    def rtbh_updates(self) -> List[BGPUpdate]:
        """Only the blackhole-related updates (announce + paired withdraw)."""
        flags = self._classify()
        return [m for m, f in zip(self._messages, flags) if f]

    def rtbh_message_count(self) -> int:
        return sum(self._classify())

    def rtbh_prefixes(self) -> Set[IPv4Prefix]:
        """Every prefix that was ever blackholed via the route server."""
        return {m.prefix for m in self.rtbh_updates()}

    def rtbh_windows_by_prefix(self) -> Dict[IPv4Prefix, List[Tuple[float, float, int]]]:
        """Per prefix: (announce_time, withdraw_time, announcer ASN) windows.

        A window left open at the end of the corpus closes at
        :attr:`end_time` — the paper treats still-active blackholes (e.g.
        zombies) the same way.
        """
        open_at: Dict[Tuple[int, IPv4Prefix], float] = {}
        out: Dict[IPv4Prefix, List[Tuple[float, float, int]]] = {}
        for msg in self.rtbh_updates():
            key = (msg.peer_asn, msg.prefix)
            if msg.action is UpdateAction.ANNOUNCE:
                open_at.setdefault(key, msg.time)
            else:
                start = open_at.pop(key, None)
                if start is not None:
                    out.setdefault(msg.prefix, []).append((start, msg.time, msg.peer_asn))
        end = self.end_time if self._messages else 0.0
        for (peer, prefix), start in open_at.items():
            out.setdefault(prefix, []).append((start, end, peer))
        for windows in out.values():
            windows.sort()
        return out

    # -- persistence -----------------------------------------------------------------

    def save_jsonl(self, path: str | Path) -> None:
        """One JSON object per line; communities as ``asn:value`` strings."""
        with open(path, "w", encoding="utf-8") as fh:
            for msg in self._messages:
                fh.write(json.dumps({
                    "time": msg.time,
                    "peer_asn": msg.peer_asn,
                    "action": msg.action.value,
                    "prefix": str(msg.prefix),
                    "next_hop": None if msg.next_hop is None else str(msg.next_hop),
                    "as_path": list(msg.as_path),
                    "communities": sorted(str(c) for c in msg.communities),
                }) + "\n")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "ControlPlaneCorpus":
        messages = []
        with open(path, encoding="utf-8") as fh:
            for line_no, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    raw = json.loads(line)
                    messages.append(BGPUpdate(
                        time=float(raw["time"]),
                        peer_asn=int(raw["peer_asn"]),
                        action=UpdateAction(raw["action"]),
                        prefix=IPv4Prefix(raw["prefix"]),
                        next_hop=(None if raw["next_hop"] is None
                                  else IPv4Address(raw["next_hop"])),
                        as_path=tuple(raw["as_path"]),
                        communities=frozenset(
                            Community.parse(c) for c in raw["communities"]
                        ),
                    ))
                except (KeyError, ValueError) as exc:
                    raise CorpusError(f"{path}:{line_no}: bad record: {exc}") from exc
        return cls(messages)
