"""The data-plane corpus: all sampled packets, numpy-backed and
time-sorted, with the vectorized selections the analyses need.
"""

from __future__ import annotations

import zipfile
import zlib
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.corpus.ingest import IngestReport, check_policy
from repro.dataplane.packet import PACKET_DTYPE, packets_from_arrays
from repro.errors import CorpusError, IngestError
from repro import telemetry
from repro.net.ip import IPv4Prefix

_MAX32 = 0xFFFFFFFF


def _prefix_mask(length: int) -> np.uint32:
    return np.uint32((_MAX32 << (32 - length)) & _MAX32 if length else 0)


class DataPlaneCorpus:
    """Sampled packets of the whole measurement period.

    Construction validates the store the way a production ingester must:
    wrong dtype, non-1-D shape, or a non-positive sampling rate always
    raise :class:`CorpusError`; rows with non-finite or negative
    timestamps raise under ``on_error="strict"`` (default) and are
    dropped — with accounting in :attr:`ingest_report` — under
    ``"skip"``/``"collect"``.
    """

    def __init__(self, packets: np.ndarray, sampling_rate: int = 10_000, *,
                 on_error: str = "strict",
                 ingest_report: Optional[IngestReport] = None):
        check_policy(on_error)
        if not isinstance(packets, np.ndarray) or packets.dtype != PACKET_DTYPE:
            raise CorpusError(
                f"expected PACKET_DTYPE array, got "
                f"{getattr(packets, 'dtype', type(packets).__name__)}")
        if packets.ndim != 1:
            raise CorpusError(
                f"packet store must be 1-D, got shape {packets.shape}")
        try:
            sampling_rate = int(sampling_rate)
        except (TypeError, ValueError) as exc:
            raise CorpusError(f"bad sampling rate: {sampling_rate!r}") from exc
        if sampling_rate <= 0:
            raise CorpusError(f"sampling rate must be positive: {sampling_rate}")
        report = ingest_report
        if report is None:
            report = IngestReport(source="<memory>", policy=on_error)
            report.total = len(packets)
        bad = ~np.isfinite(packets["time"]) | (packets["time"] < 0.0)
        n_bad = int(bad.sum())
        if n_bad:
            if on_error == "strict":
                raise CorpusError(
                    f"{n_bad} packet record(s) with non-finite or negative "
                    "timestamps")
            for index in np.flatnonzero(bad)[:8]:
                report.record_problem(
                    f"row {int(index)}",
                    f"bad timestamp {packets['time'][index]!r}")
            report.skipped += n_bad - min(n_bad, 8)
            packets = packets[~bad]
        order = np.argsort(packets["time"], kind="stable")
        self._packets = packets[order]
        report.loaded = len(self._packets)
        #: accounting of what construction/loading kept and dropped
        self.ingest_report: IngestReport = report
        self.sampling_rate = sampling_rate

    @property
    def packets(self) -> np.ndarray:
        """The underlying time-sorted record array (do not mutate)."""
        return self._packets

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def start_time(self) -> float:
        if len(self._packets) == 0:
            raise CorpusError("empty data-plane corpus")
        return float(self._packets["time"][0])

    @property
    def end_time(self) -> float:
        if len(self._packets) == 0:
            raise CorpusError("empty data-plane corpus")
        return float(self._packets["time"][-1])

    # -- selection ------------------------------------------------------------

    def mask_dst_in(self, prefix: IPv4Prefix) -> np.ndarray:
        """Boolean mask of packets destined into ``prefix``."""
        mask = _prefix_mask(prefix.length)
        return (self._packets["dst_ip"] & mask) == np.uint32(prefix.network_int)

    def mask_src_in(self, prefix: IPv4Prefix) -> np.ndarray:
        mask = _prefix_mask(prefix.length)
        return (self._packets["src_ip"] & mask) == np.uint32(prefix.network_int)

    def mask_time(self, t0: float, t1: float) -> np.ndarray:
        """Packets with ``t0 <= time < t1`` (fast: the array is sorted)."""
        lo = np.searchsorted(self._packets["time"], t0, side="left")
        hi = np.searchsorted(self._packets["time"], t1, side="left")
        out = np.zeros(len(self._packets), dtype=bool)
        out[lo:hi] = True
        return out

    def slice_time(self, t0: float, t1: float) -> np.ndarray:
        lo = np.searchsorted(self._packets["time"], t0, side="left")
        hi = np.searchsorted(self._packets["time"], t1, side="left")
        return self._packets[lo:hi]

    def select(
        self,
        dst_prefix: Optional[IPv4Prefix] = None,
        src_prefix: Optional[IPv4Prefix] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        dropped: Optional[bool] = None,
    ) -> np.ndarray:
        """Packets matching all given criteria."""
        mask = np.ones(len(self._packets), dtype=bool)
        if t0 is not None or t1 is not None:
            mask &= self.mask_time(
                self.start_time if t0 is None else t0,
                (self.end_time + 1.0) if t1 is None else t1,
            )
        if dst_prefix is not None:
            mask &= self.mask_dst_in(dst_prefix)
        if src_prefix is not None:
            mask &= self.mask_src_in(src_prefix)
        if dropped is not None:
            mask &= self._packets["dropped"] == dropped
        return self._packets[mask]

    def dropped_times_by_prefix(
        self, prefixes: Iterable[IPv4Prefix]
    ) -> Dict[IPv4Prefix, np.ndarray]:
        """Timestamps of dropped packets per destination prefix — the input
        of the time-offset MLE (Fig. 2)."""
        dropped = self._packets[self._packets["dropped"]]
        out: Dict[IPv4Prefix, np.ndarray] = {}
        for prefix in prefixes:
            mask = _prefix_mask(prefix.length)
            hit = (dropped["dst_ip"] & mask) == np.uint32(prefix.network_int)
            times = dropped["time"][hit]
            if len(times):
                out[prefix] = times.astype(np.float64)
        return out

    # -- summaries ----------------------------------------------------------------

    def dropped_share(self) -> float:
        """Packet-level dropped share over the whole corpus."""
        if len(self._packets) == 0:
            raise CorpusError("empty data-plane corpus")
        return float(self._packets["dropped"].mean())

    def total_bytes(self) -> int:
        return int(self._packets["size"].astype(np.int64).sum())

    # -- persistence ----------------------------------------------------------------

    def save_npz(self, path: str | Path) -> None:
        write_packets_npz(self._packets, self.sampling_rate, path)

    @classmethod
    def load_npz(cls, path: str | Path, *,
                 on_error: str = "strict") -> "DataPlaneCorpus":
        """Load an ``.npz`` store under an error policy.

        Unreadable archives (missing file, flipped bytes, bad zip
        members) raise :class:`~repro.errors.IngestError` regardless of
        policy — there is nothing salvageable.  Row-level problems follow
        ``on_error`` as in :meth:`__init__`.  Archives holding parallel
        column arrays instead of a packed ``packets`` record array are
        assembled via :func:`packets_from_arrays`; mismatched column
        lengths become :class:`CorpusError` rather than numpy errors.
        """
        check_policy(on_error)
        telem = telemetry.current()
        with telem.span("ingest.data", source=str(path),
                        policy=on_error) as sp:
            packets, rate = read_packets_npz(path)
            report = IngestReport(source=str(path), policy=on_error)
            report.total = len(packets)
            corpus = cls(packets, sampling_rate=rate, on_error=on_error,
                         ingest_report=report)
            sp.attrs["records"] = report.total
        telem.counter("ingest.records", plane="data",
                      outcome="ok").inc(report.loaded)
        telem.counter("ingest.records", plane="data",
                      outcome="skipped").inc(report.skipped)
        return corpus


# -- raw array I/O ----------------------------------------------------------------


def write_packets_npz(packets: np.ndarray, sampling_rate: int,
                      path: str | Path) -> None:
    """Write a packet array verbatim (fault injection uses this to persist
    deliberately-degraded stores that :class:`DataPlaneCorpus` would
    refuse to construct strictly)."""
    np.savez_compressed(path, packets=packets, sampling_rate=sampling_rate)


def read_packets_npz(path: str | Path) -> Tuple[np.ndarray, int]:
    """Read ``(packets, sampling_rate)`` from an ``.npz`` archive, wrapping
    every decode failure in a typed error."""
    try:
        with np.load(path) as archive:
            names = set(archive.files)
            if "packets" in names:
                packets = archive["packets"]
            else:
                columns = sorted(names & set(PACKET_DTYPE.names))
                if not columns:
                    raise IngestError(
                        f"{path}: no 'packets' array and no recognizable "
                        f"packet columns (found {sorted(names)})")
                try:
                    packets = packets_from_arrays(
                        {name: archive[name] for name in columns})
                except ValueError as exc:
                    raise CorpusError(f"{path}: {exc}") from exc
            if "sampling_rate" in names:
                rate = int(archive["sampling_rate"])
            else:
                raise IngestError(f"{path}: missing array 'sampling_rate'")
    except (zipfile.BadZipFile, zlib.error, OSError, EOFError, ValueError,
            KeyError) as exc:
        raise IngestError(f"{path}: unreadable archive: {exc}") from exc
    return packets, rate
