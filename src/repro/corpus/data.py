"""The data-plane corpus: all sampled packets, numpy-backed and
time-sorted, with the vectorized selections the analyses need.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Optional

import numpy as np

from repro.dataplane.packet import PACKET_DTYPE
from repro.errors import CorpusError
from repro.net.ip import IPv4Prefix

_MAX32 = 0xFFFFFFFF


def _prefix_mask(length: int) -> np.uint32:
    return np.uint32((_MAX32 << (32 - length)) & _MAX32 if length else 0)


class DataPlaneCorpus:
    """Sampled packets of the whole measurement period."""

    def __init__(self, packets: np.ndarray, sampling_rate: int = 10_000):
        if packets.dtype != PACKET_DTYPE:
            raise CorpusError(f"expected PACKET_DTYPE array, got {packets.dtype}")
        order = np.argsort(packets["time"], kind="stable")
        self._packets = packets[order]
        self.sampling_rate = sampling_rate

    @property
    def packets(self) -> np.ndarray:
        """The underlying time-sorted record array (do not mutate)."""
        return self._packets

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def start_time(self) -> float:
        if len(self._packets) == 0:
            raise CorpusError("empty data-plane corpus")
        return float(self._packets["time"][0])

    @property
    def end_time(self) -> float:
        if len(self._packets) == 0:
            raise CorpusError("empty data-plane corpus")
        return float(self._packets["time"][-1])

    # -- selection ------------------------------------------------------------

    def mask_dst_in(self, prefix: IPv4Prefix) -> np.ndarray:
        """Boolean mask of packets destined into ``prefix``."""
        mask = _prefix_mask(prefix.length)
        return (self._packets["dst_ip"] & mask) == np.uint32(prefix.network_int)

    def mask_src_in(self, prefix: IPv4Prefix) -> np.ndarray:
        mask = _prefix_mask(prefix.length)
        return (self._packets["src_ip"] & mask) == np.uint32(prefix.network_int)

    def mask_time(self, t0: float, t1: float) -> np.ndarray:
        """Packets with ``t0 <= time < t1`` (fast: the array is sorted)."""
        lo = np.searchsorted(self._packets["time"], t0, side="left")
        hi = np.searchsorted(self._packets["time"], t1, side="left")
        out = np.zeros(len(self._packets), dtype=bool)
        out[lo:hi] = True
        return out

    def slice_time(self, t0: float, t1: float) -> np.ndarray:
        lo = np.searchsorted(self._packets["time"], t0, side="left")
        hi = np.searchsorted(self._packets["time"], t1, side="left")
        return self._packets[lo:hi]

    def select(
        self,
        dst_prefix: Optional[IPv4Prefix] = None,
        src_prefix: Optional[IPv4Prefix] = None,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        dropped: Optional[bool] = None,
    ) -> np.ndarray:
        """Packets matching all given criteria."""
        mask = np.ones(len(self._packets), dtype=bool)
        if t0 is not None or t1 is not None:
            mask &= self.mask_time(
                self.start_time if t0 is None else t0,
                (self.end_time + 1.0) if t1 is None else t1,
            )
        if dst_prefix is not None:
            mask &= self.mask_dst_in(dst_prefix)
        if src_prefix is not None:
            mask &= self.mask_src_in(src_prefix)
        if dropped is not None:
            mask &= self._packets["dropped"] == dropped
        return self._packets[mask]

    def dropped_times_by_prefix(
        self, prefixes: Iterable[IPv4Prefix]
    ) -> Dict[IPv4Prefix, np.ndarray]:
        """Timestamps of dropped packets per destination prefix — the input
        of the time-offset MLE (Fig. 2)."""
        dropped = self._packets[self._packets["dropped"]]
        out: Dict[IPv4Prefix, np.ndarray] = {}
        for prefix in prefixes:
            mask = _prefix_mask(prefix.length)
            hit = (dropped["dst_ip"] & mask) == np.uint32(prefix.network_int)
            times = dropped["time"][hit]
            if len(times):
                out[prefix] = times.astype(np.float64)
        return out

    # -- summaries ----------------------------------------------------------------

    def dropped_share(self) -> float:
        """Packet-level dropped share over the whole corpus."""
        if len(self._packets) == 0:
            raise CorpusError("empty data-plane corpus")
        return float(self._packets["dropped"].mean())

    def total_bytes(self) -> int:
        return int(self._packets["size"].astype(np.int64).sum())

    # -- persistence ----------------------------------------------------------------

    def save_npz(self, path: str | Path) -> None:
        np.savez_compressed(path, packets=self._packets,
                            sampling_rate=self.sampling_rate)

    @classmethod
    def load_npz(cls, path: str | Path) -> "DataPlaneCorpus":
        with np.load(path) as archive:
            try:
                packets = archive["packets"]
                rate = int(archive["sampling_rate"])
            except KeyError as exc:
                raise CorpusError(f"{path}: missing array {exc}") from exc
        return cls(packets, sampling_rate=rate)
