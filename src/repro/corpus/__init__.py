"""Measurement corpora: the control-plane BGP message log and the
numpy-backed data-plane store of sampled packets, with persistence.
"""

from repro.corpus.control import ControlPlaneCorpus, RTBH_RELATED
from repro.corpus.data import DataPlaneCorpus

__all__ = ["ControlPlaneCorpus", "DataPlaneCorpus", "RTBH_RELATED"]
