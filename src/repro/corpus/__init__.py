"""Measurement corpora: the control-plane BGP message log and the
numpy-backed data-plane store of sampled packets, with persistence,
per-record error policies, and manifest-based integrity validation.
"""

from repro.corpus.control import ControlPlaneCorpus, RTBH_RELATED
from repro.corpus.data import DataPlaneCorpus
from repro.corpus.ingest import IngestProblem, IngestReport
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    MANIFEST_FILE,
    META_FILE,
    ValidationIssue,
    ValidationReport,
    validate_corpus,
    write_manifest,
)

__all__ = [
    "ControlPlaneCorpus",
    "DataPlaneCorpus",
    "IngestProblem",
    "IngestReport",
    "RTBH_RELATED",
    "CONTROL_FILE",
    "DATA_FILE",
    "MANIFEST_FILE",
    "META_FILE",
    "ValidationIssue",
    "ValidationReport",
    "validate_corpus",
    "write_manifest",
]
