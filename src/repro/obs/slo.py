"""SLO rules and the health evaluator behind ``/readyz`` and ``repro status``.

Health is a pure function of one *operational sample* — the dict the
streaming engine assembles each tick (watermark, commit-log lag, tap
states, quarantine accounting, checkpoint staleness) — against a frozen
:class:`SLORules`.  Keeping it pure means the live HTTP endpoint, the
on-disk snapshot, and ``repro status`` all reproduce the identical
verdict from the same inputs: the acceptance contract is literally
"SIGKILL the session, run ``status`` on the snapshot, get the same
answer ``/readyz`` gave".

Escalation model, per check: within threshold → ``ok``; beyond it →
``degraded``; beyond ``unhealthy_factor``× the threshold → ``unhealthy``.
Dead taps are the exception — a dead tap is already a terminal fact, so
any count beyond ``max_dead_taps`` is ``degraded`` (the session is still
producing numbers from surviving feeds) and only *every* tap dead is
``unhealthy`` (nothing is feeding the reducers at all).  The session
state is the worst check state, with every tripped check listed as a
reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: overall / per-check states, in escalation order
STATE_OK = "ok"
STATE_DEGRADED = "degraded"
STATE_UNHEALTHY = "unhealthy"
STATES = (STATE_OK, STATE_DEGRADED, STATE_UNHEALTHY)

_RANK = {state: rank for rank, state in enumerate(STATES)}

#: ``repro status`` exit codes per state (0 ok / 4 degraded / 5 unhealthy)
EXIT_CODES = {STATE_OK: 0, STATE_DEGRADED: 4, STATE_UNHEALTHY: 5}


@dataclass(frozen=True, kw_only=True)
class SLORules:
    """Thresholds one watch session is judged against."""

    #: committed-but-unconsumed days before the watcher counts as behind
    max_lag_days: float = 2.0
    #: permanently dead taps tolerated before the session degrades
    max_dead_taps: int = 0
    #: malformed/total feed-record ratio tolerated
    max_quarantine_rate: float = 0.10
    #: seconds since the last stream-checkpoint write (None disables —
    #: a tail-only watcher of a finished corpus legitimately goes quiet)
    max_checkpoint_age: Optional[float] = 900.0
    #: per-check degraded→unhealthy escalation multiplier
    unhealthy_factor: float = 3.0

    def to_json(self) -> dict:
        return {
            "max_lag_days": self.max_lag_days,
            "max_dead_taps": self.max_dead_taps,
            "max_quarantine_rate": self.max_quarantine_rate,
            "max_checkpoint_age": self.max_checkpoint_age,
            "unhealthy_factor": self.unhealthy_factor,
        }

    @classmethod
    def from_json(cls, raw: dict) -> "SLORules":
        known = {f: raw[f] for f in (
            "max_lag_days", "max_dead_taps", "max_quarantine_rate",
            "max_checkpoint_age", "unhealthy_factor") if f in raw}
        return cls(**known)


@dataclass
class Check:
    """One evaluated SLO dimension."""

    name: str
    state: str
    value: Optional[float]
    threshold: Optional[float]
    detail: str = ""

    def to_json(self) -> dict:
        return {"name": self.name, "state": self.state,
                "value": self.value, "threshold": self.threshold,
                "detail": self.detail}


@dataclass
class Health:
    """The session verdict: worst check state plus every reason."""

    state: str = STATE_OK
    checks: List[Check] = field(default_factory=list)

    @property
    def reasons(self) -> List[str]:
        return [f"{c.name}: {c.detail}" for c in self.checks
                if c.state != STATE_OK]

    @property
    def exit_code(self) -> int:
        return EXIT_CODES[self.state]

    @property
    def ready(self) -> bool:
        return self.state == STATE_OK

    def to_json(self) -> dict:
        return {"state": self.state, "reasons": self.reasons,
                "checks": [c.to_json() for c in self.checks]}

    @classmethod
    def from_json(cls, raw: dict) -> "Health":
        health = cls(state=str(raw.get("state", STATE_OK)))
        if health.state not in _RANK:
            raise ValueError(f"unknown health state {health.state!r}")
        for entry in raw.get("checks", []):
            health.checks.append(Check(
                name=str(entry.get("name", "?")),
                state=str(entry.get("state", STATE_OK)),
                value=entry.get("value"),
                threshold=entry.get("threshold"),
                detail=str(entry.get("detail", ""))))
        return health


def _escalate(value: float, threshold: float, factor: float) -> str:
    if value <= threshold:
        return STATE_OK
    if value > threshold * factor:
        return STATE_UNHEALTHY
    return STATE_DEGRADED


def evaluate(sample: dict, rules: SLORules = SLORules()) -> Health:
    """Judge one operational sample; see the module docstring.

    The sample dict is the shape :meth:`StreamEngine.obs_sample`
    produces; absent keys are treated as "not applicable" (e.g. a
    tap-less watcher has no quarantine rate), never as failures.
    """
    health = Health()

    lag = sample.get("lag_days")
    if lag is not None:
        state = _escalate(float(lag), rules.max_lag_days,
                          rules.unhealthy_factor)
        health.checks.append(Check(
            "stream.lag_days", state, float(lag), rules.max_lag_days,
            f"{float(lag):g} committed day(s) not yet consumed "
            f"(threshold {rules.max_lag_days:g})"))

    taps: Optional[Dict[str, dict]] = sample.get("taps")
    if taps:
        dead = sorted(name for name, entry in taps.items()
                      if entry.get("state") == "dead")
        if not dead:
            state = STATE_OK
        elif len(dead) == len(taps):
            state = STATE_UNHEALTHY
        elif len(dead) > rules.max_dead_taps:
            state = STATE_DEGRADED
        else:
            state = STATE_OK
        health.checks.append(Check(
            "taps.dead", state, float(len(dead)),
            float(rules.max_dead_taps),
            f"{len(dead)}/{len(taps)} tap(s) permanently dead"
            + (f": {', '.join(dead)}" if dead else "")))

        total = sum(int(entry.get("records_ok", 0))
                    + int(entry.get("records_malformed", 0))
                    for entry in taps.values())
        malformed = sum(int(entry.get("records_malformed", 0))
                        for entry in taps.values())
        if total:
            rate = malformed / total
            state = _escalate(rate, rules.max_quarantine_rate,
                              rules.unhealthy_factor)
            health.checks.append(Check(
                "taps.quarantine_rate", state, rate,
                rules.max_quarantine_rate,
                f"{malformed}/{total} feed records malformed "
                f"({100.0 * rate:.1f}%, threshold "
                f"{100.0 * rules.max_quarantine_rate:g}%)"))

    doctor = sample.get("doctor")
    if doctor is not None:
        errors = int(doctor.get("error_count", 0))
        classes = doctor.get("classes") or []
        # damage is a repairable condition, not a death sentence: the
        # watcher keeps producing numbers from what it already ingested,
        # so readiness degrades (run ``repro doctor --repair``) but the
        # session is never judged unhealthy on this check alone
        state = STATE_DEGRADED if errors > 0 else STATE_OK
        detail = (f"{errors} integrity error(s) found by the background "
                  f"scrub ({', '.join(classes)}); run repro doctor --repair"
                  if errors else "background scrub clean")
        health.checks.append(Check(
            "doctor.damage", state, float(errors), 0.0, detail))

    age = sample.get("checkpoint_age_seconds")
    if age is not None and rules.max_checkpoint_age is not None:
        state = _escalate(float(age), rules.max_checkpoint_age,
                          rules.unhealthy_factor)
        health.checks.append(Check(
            "checkpoint.age_seconds", state, float(age),
            rules.max_checkpoint_age,
            f"stream checkpoint last written {float(age):.0f}s ago "
            f"(threshold {rules.max_checkpoint_age:g}s)"))

    for check in health.checks:
        if _RANK[check.state] > _RANK[health.state]:
            health.state = check.state
    return health
