"""Prometheus text exposition (format version 0.0.4), stdlib-only.

:func:`render_prometheus` turns a :meth:`MetricsRegistry.snapshot` dict
into the text format every Prometheus-compatible scraper ingests.  The
registry's series strings (``name{key=value,...}``) are parsed back into
name + labels, metric names are sanitized to the exposition charset
(``[a-zA-Z_:][a-zA-Z0-9_:]*`` — dots become underscores), label values
are escaped per the spec, and histograms are rendered as the canonical
``_bucket``/``_sum``/``_count`` triplet with cumulative ``le`` buckets
plus the snapshot's interpolated quantiles as ``{quantile="..."}``
series (summary-style, so dashboards get p50/p90/p99 without PromQL
``histogram_quantile`` over tiny bucket counts).

This module is one of the shared components the future ``repro serve``
API layer reuses — it depends only on the snapshot dict shape, not on
any live registry.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """Map a registry metric name onto the exposition-format charset."""
    name = _NAME_OK.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Split a registry series string back into ``(name, labels)``."""
    if "{" not in series:
        return series, {}
    name, _, inner = series.partition("{")
    labels: Dict[str, str] = {}
    for pair in inner.rstrip("}").split(","):
        if pair:
            key, _, value = pair.partition("=")
            labels[key] = value
    return name, labels


def _label_str(labels: Dict[str, str], **extra: str) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    inner = ",".join(f'{sanitize_name(k)}="{escape_label_value(str(v))}"'
                     for k, v in sorted(merged.items()))
    return "{" + inner + "}"


def _value(v) -> str:
    if v is None:
        return "NaN"
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(float(v)) if isinstance(v, float) else str(v)


def render_prometheus(snapshot: dict) -> str:
    """The complete ``/metrics`` payload for one registry snapshot.

    Series are grouped per sanitized metric name so each gets exactly
    one ``# TYPE`` line, as the format requires; within a group the
    registry's sorted-series order is preserved.
    """
    groups: Dict[str, List[str]] = {}
    types: Dict[str, str] = {}

    def add(series: str, kind: str, render, suffix: str = "") -> None:
        raw_name, labels = parse_series(series)
        name = sanitize_name(raw_name) + suffix
        types.setdefault(name, kind)
        groups.setdefault(name, []).extend(render(name, labels))

    # counters carry the conventional _total suffix (on both the TYPE
    # line and the sample, so the classic 0.0.4 parser groups them)
    for series, value in snapshot.get("counters", {}).items():
        add(series, "counter",
            lambda name, labels, v=value:
            [f"{name}{_label_str(labels)} {_value(v)}"], suffix="_total")
    for series, value in snapshot.get("gauges", {}).items():
        add(series, "gauge",
            lambda name, labels, v=value:
            [f"{name}{_label_str(labels)} {_value(v)}"])
    for series, summary in snapshot.get("histograms", {}).items():
        add(series, "histogram",
            lambda name, labels, s=summary: _histogram_lines(name, labels, s))

    lines: List[str] = []
    for name in sorted(groups):
        lines.append(f"# TYPE {name} {types[name]}")
        lines.extend(groups[name])
    return "\n".join(lines) + "\n" if lines else ""


def _histogram_lines(name: str, labels: Dict[str, str],
                     summary: dict) -> List[str]:
    lines: List[str] = []
    for le, cumulative in summary.get("buckets", {"+Inf": 0}).items():
        lines.append(f"{name}_bucket{_label_str(labels, le=le)} "
                     f"{cumulative}")
    for quantile in ("p50", "p90", "p99"):
        if quantile in summary:
            q = f"0.{quantile[1:].rstrip('0') or '5'}"
            lines.append(f"{name}{_label_str(labels, quantile=q)} "
                         f"{_value(summary[quantile])}")
    lines.append(f"{name}_sum{_label_str(labels)} "
                 f"{_value(summary.get('sum', 0.0))}")
    lines.append(f"{name}_count{_label_str(labels)} "
                 f"{summary.get('count', 0)}")
    return lines
