"""``repro status``: one look at a watch session, live or post-mortem.

The status document is the obs snapshot — read from
``<corpus>/.obs/snapshot.json`` (works after the session was SIGKILLed;
that is the point) or fetched from a live session's ``/status`` endpoint
with ``--url``.  Either way the SLO verdict shown is the one the session
itself computed, so ``status`` never re-judges stale data against
different rules; it *reports*, and its exit code (0 ok / 4 degraded /
5 unhealthy) makes the verdict scriptable.
"""

from __future__ import annotations

import http.client
import json
import urllib.error
import urllib.request
from typing import List

from repro.core.report import format_table
from repro.errors import ObsError, ObsSnapshotError, ObsUnreachableError
from repro.obs.slo import EXIT_CODES, STATE_OK, Health
from repro.obs.snapshot import SNAPSHOT_VERSION, snapshot_age_seconds


def fetch_status(url: str, *, timeout: float = 5.0) -> dict:
    """The ``/status`` document of a live session at ``url``.

    ``url`` may be the endpoint root (``http://127.0.0.1:9100``) or the
    full ``/status`` route.  Connection refused, DNS failure, and
    timeouts raise :class:`~repro.errors.ObsUnreachableError` (CLI exit
    6 — "probably not running"); an endpoint that *answers* but with an
    HTTP error or an unusable document raises
    :class:`~repro.errors.ObsError` /
    :class:`~repro.errors.ObsSnapshotError` as before.
    """
    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    if not url.rstrip("/").endswith("/status"):
        url = url.rstrip("/") + "/status"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            raw = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        # the endpoint is alive — it just refused or errored the request
        raise ObsError(f"{url}: endpoint answered HTTP {exc.code}: "
                       f"{exc.reason}") from exc
    except (urllib.error.URLError, ConnectionError, TimeoutError,
            OSError) as exc:
        reason = getattr(exc, "reason", None) or exc
        raise ObsUnreachableError(
            f"{url}: cannot reach live obs endpoint ({reason}); "
            "is the watch session running?") from exc
    except http.client.HTTPException as exc:
        raise ObsError(f"{url}: malformed HTTP response: {exc}") from exc
    except ValueError as exc:
        raise ObsSnapshotError(f"{url}: endpoint returned non-JSON status: "
                               f"{exc}") from exc
    if not isinstance(raw, dict):
        raise ObsSnapshotError(f"{url}: status document is not an object")
    if raw.get("version") != SNAPSHOT_VERSION:
        raise ObsSnapshotError(
            f"{url}: unsupported status version {raw.get('version')!r} "
            f"(expected {SNAPSHOT_VERSION})")
    return raw


def status_exit_code(document: dict) -> int:
    """0 ok / 4 degraded / 5 unhealthy, from the document's own verdict."""
    state = (document.get("health") or {}).get("state", STATE_OK)
    return EXIT_CODES.get(state, EXIT_CODES[STATE_OK])


def render_status(document: dict) -> str:
    """The human-readable status view; ``--json`` bypasses this."""
    health = Health.from_json(document.get("health") or {})
    lines: List[str] = []
    age = snapshot_age_seconds(document)
    head = (f"{document.get('command', 'watch')} session on "
            f"{document.get('corpus', '?')}: {health.state.upper()}")
    if age is not None:
        head += f"  (snapshot {age:.0f}s old)"
    lines.append(head)
    for reason in health.reasons:
        lines.append(f"  ! {reason}")

    lines.append(
        f"watermark day {document.get('watermark_days', '?')} of "
        f"{document.get('committed_days', '?')} committed "
        f"(lag {document.get('lag_days', '?')} day(s)); "
        f"{document.get('ticks_observed', '?')} tick(s) observed")

    if health.checks:
        rows = [[c.name, c.state,
                 "-" if c.value is None else f"{c.value:g}",
                 "-" if c.threshold is None else f"{c.threshold:g}",
                 c.detail]
                for c in health.checks]
        lines.append("")
        lines.append(format_table(
            ["check", "state", "value", "threshold", "detail"], rows,
            title="SLO checks:"))

    taps = document.get("taps")
    if taps:
        rows = []
        for name, entry in sorted(taps.items()):
            rows.append([
                name, entry.get("state", "?"), entry.get("breaker", "?"),
                entry.get("records_ok", 0),
                entry.get("records_malformed", 0),
                entry.get("reconnects", 0),
                entry.get("last_error") or ""])
        lines.append("")
        lines.append(format_table(
            ["tap", "state", "breaker", "ok", "malformed", "reconnects",
             "last_error"], rows, title="taps:"))

    events_logged = document.get("events_logged")
    if events_logged is not None:
        lines.append("")
        lines.append(f"{events_logged} event(s) logged this session "
                     "(.obs/events.jsonl)")
    return "\n".join(lines)
