"""The live operations plane of one watch session.

An :class:`ObsPlane` wires the shared components together around a
running :class:`~repro.streaming.engine.StreamEngine`:

* subscribes an :class:`~repro.obs.events.EventLogWriter` to the active
  telemetry event channel (``.obs/events.jsonl``, bounded rotation);
* on every :meth:`observe` — called by the engine at the end of each
  tick — evaluates the SLO rules over the engine's operational sample,
  emits an ``slo.state`` event on every verdict transition, atomically
  flushes the versioned snapshot document to ``.obs/snapshot.json``,
  and publishes the same document to the HTTP endpoint (when one was
  requested via ``--obs-port``).

The plane is deliberately engine-agnostic: it consumes a plain sample
dict, so the future ``repro serve`` layer can drive the identical
publisher/snapshot/SLO machinery from its own sources.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional

from repro import telemetry
from repro.obs.events import EventLogWriter
from repro.obs.server import ObsServer, StatePublisher
from repro.obs.slo import Health, SLORules, evaluate
from repro.obs.snapshot import (
    SNAPSHOT_VERSION,
    ensure_obs_dir,
    events_path,
    write_snapshot,
)

_SEVERITY_BY_STATE = {"ok": "info", "degraded": "warning",
                      "unhealthy": "error"}


class ObsPlane:
    """Snapshot + event log + SLO + optional HTTP endpoint for one corpus."""

    def __init__(self, corpus_dir: str | Path, *,
                 rules: SLORules = SLORules(),
                 port: Optional[int] = None,
                 command: str = "watch",
                 min_severity: str = "info"):
        self.corpus_dir = Path(corpus_dir)
        self.rules = rules
        self.command = command
        self.started_at = time.time()
        self.ticks_observed = 0
        self.last_health: Optional[Health] = None
        ensure_obs_dir(self.corpus_dir)
        self.event_log = EventLogWriter(events_path(self.corpus_dir),
                                        min_severity=min_severity)
        self._channel = telemetry.events()
        self._channel.subscribe(self.event_log)
        self.publisher = StatePublisher()
        self.server: Optional[ObsServer] = None
        if port is not None:
            self.server = ObsServer(self.publisher, port=port).start()
        telemetry.current().event(
            "obs.session_started", command=command,
            corpus=str(self.corpus_dir),
            endpoint=None if self.server is None else self.server.url)

    # -- the per-tick hook ---------------------------------------------------

    def observe(self, sample: dict) -> Health:
        """Evaluate, persist, and publish one operational sample."""
        telem = telemetry.current()
        health = evaluate(sample, self.rules)
        previous = self.last_health.state if self.last_health else None
        if health.state != previous:
            telem.event(
                "slo.state",
                severity=_SEVERITY_BY_STATE[health.state],
                from_state=previous, to_state=health.state,
                reasons=health.reasons)
        self.last_health = health
        self.ticks_observed += 1
        document = {
            **sample,
            "command": self.command,
            "version": SNAPSHOT_VERSION,
            "started_at": self.started_at,
            "ticks_observed": self.ticks_observed,
            "slo": self.rules.to_json(),
            "health": health.to_json(),
            "events_logged": self.event_log.written,
        }
        write_snapshot(self.corpus_dir, document)
        self.publisher.publish({**document, "written_at": time.time()})
        telem.counter("obs.snapshots_written").inc()
        return health

    # -- lifecycle -----------------------------------------------------------

    @property
    def url(self) -> Optional[str]:
        return None if self.server is None else self.server.url

    def close(self) -> None:
        """Detach from the event channel and stop the endpoint."""
        telemetry.current().event(
            "obs.session_closed", command=self.command,
            ticks_observed=self.ticks_observed,
            state=None if self.last_health is None
            else self.last_health.state)
        self._channel.unsubscribe(self.event_log)
        if self.server is not None:
            self.server.stop()
            self.server = None

    def __enter__(self) -> "ObsPlane":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
