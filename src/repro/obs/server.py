"""The stdlib-only threaded HTTP exposition endpoint (``--obs-port``).

One :class:`ObsServer` serves four routes from a thread-safe
:class:`StatePublisher`:

====================  ======================================================
``/metrics``          Prometheus text exposition (0.0.4) of the session's
                      metrics registry
``/healthz``          liveness — 200 as long as the process serves at all
``/readyz``           readiness — the SLO verdict; 200 when ``ok``,
                      503 with the JSON reasons when degraded/unhealthy
``/status``           the full snapshot document (same shape as
                      ``.obs/snapshot.json``), consumed by
                      ``repro status --url``
====================  ======================================================

Design constraint: the rest of the package is deliberately
single-threaded, so request handlers never touch live engine or
telemetry objects.  The watch loop *publishes* an immutable rendering —
pre-serialized metrics text plus the snapshot document — once per tick,
and handler threads only ever read the latest published cell under a
lock.  Staleness is therefore bounded by the tick interval, and no lock
is ever held across engine work.  The server is a shared component: the
future ``repro serve`` query API mounts the same publisher/handler
machinery over reducer-state views.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from repro.errors import ObsError
from repro.obs.expfmt import render_prometheus
from repro.obs.slo import STATE_OK

#: content type the Prometheus text parser expects
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class StatePublisher:
    """Latest-value cell shared between the watch loop and handlers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics_text = ""
        self._document: dict = {}

    def publish(self, document: dict) -> None:
        """Install a new snapshot document (and render its metrics)."""
        metrics_text = render_prometheus(document.get("metrics") or {})
        with self._lock:
            self._document = document
            self._metrics_text = metrics_text

    @property
    def metrics_text(self) -> str:
        with self._lock:
            return self._metrics_text

    @property
    def document(self) -> dict:
        with self._lock:
            return self._document

    @property
    def health(self) -> dict:
        with self._lock:
            health = self._document.get("health")
        return health if isinstance(health, dict) else {
            "state": STATE_OK, "reasons": [], "checks": []}


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-obs/1"
    publisher: StatePublisher  # class attribute installed per server

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        route = self.path.split("?", 1)[0].rstrip("/") or "/"
        if route == "/metrics":
            self._respond(200, METRICS_CONTENT_TYPE,
                          self.publisher.metrics_text.encode("utf-8"))
        elif route == "/healthz":
            self._respond(200, "text/plain; charset=utf-8", b"ok\n")
        elif route == "/readyz":
            health = self.publisher.health
            code = 200 if health.get("state") == STATE_OK else 503
            self._respond(code, "application/json",
                          json.dumps(health).encode("utf-8"))
        elif route == "/status":
            self._respond(200, "application/json",
                          json.dumps(self.publisher.document,
                                     sort_keys=True).encode("utf-8"))
        else:
            self._respond(404, "text/plain; charset=utf-8",
                          f"no such route {route!r}; try /metrics, "
                          f"/healthz, /readyz, /status\n".encode("utf-8"))

    def _respond(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes poll every few seconds; stderr must stay usable


class ObsServer:
    """The threaded exposition server; binds lazily via :meth:`start`."""

    def __init__(self, publisher: StatePublisher, *,
                 port: int = 0, host: str = "127.0.0.1"):
        self.publisher = publisher
        self.requested_port = int(port)
        self.host = host
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``--obs-port 0`` to the real one)."""
        if self._httpd is None:
            raise ObsError("obs server is not running")
        return self._httpd.server_address[1]

    @property
    def address(self) -> Tuple[str, int]:
        return self.host, self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        if self._httpd is not None:
            return self
        handler = type("ObsHandler", (_Handler,),
                       {"publisher": self.publisher})
        try:
            httpd = ThreadingHTTPServer((self.host, self.requested_port),
                                        handler)
        except OSError as exc:
            raise ObsError(
                f"cannot bind obs endpoint on {self.host}:"
                f"{self.requested_port}: {exc}") from exc
        httpd.daemon_threads = True
        self._httpd = httpd
        self._thread = threading.Thread(
            target=httpd.serve_forever, kwargs={"poll_interval": 0.1},
            name="repro-obs-server", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
