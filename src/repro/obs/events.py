"""The on-disk structured event log: ``.obs/events.jsonl``.

:class:`EventLogWriter` is a :class:`~repro.telemetry.EventChannel` sink
that appends one JSON object per line and rotates when the active file
exceeds ``max_bytes`` — the active log is renamed to ``events.jsonl.1``
(… ``.N``), oldest dropped — so a weeks-long watch session occupies
bounded disk no matter how chatty its taps are.  Appends are plain
buffered writes flushed per record (events are operator forensics, not
the commit log; an fsync per breaker flap would be absurd), which means
a crash can tear the *tail* line of the active file.  :func:`read_events`
therefore tolerates exactly that: a torn or garbled line is skipped with
accounting instead of poisoning the whole read — the same stance the
checkpoint journal takes.

Severity filtering happens at the sink (``min_severity``), not at the
emitting call sites, so one session can keep debug-level checkpoint
events out of its bounded log while tests capture everything.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.telemetry import SEVERITIES

#: default rotation threshold for one event log file
DEFAULT_MAX_BYTES = 1 << 20
#: rotated generations kept alongside the active file
DEFAULT_BACKUPS = 2

_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


class RotatingLineWriter:
    """Append text lines with size-bounded generation rotation.

    The mechanism under :class:`EventLogWriter`, reusable for any
    append-only JSONL sidecar that must stay disk-bounded — the tap
    quarantine sidecars use it too.  Appends are buffered writes flushed
    per line, never fsynced: these files are forensics, not commit logs.
    """

    def __init__(self, path: str | Path, *,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS):
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self.written = 0
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, line: str) -> None:
        self._maybe_rotate(len(line) + 1)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
        self.written += 1

    def _maybe_rotate(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        # shift the generation chain from the oldest end, then retire
        # the active file; each step is a single atomic rename
        oldest = self.rotated_path(self.backups)
        oldest.unlink(missing_ok=True)
        for generation in range(self.backups - 1, 0, -1):
            source = self.rotated_path(generation)
            if source.exists():
                os.replace(source, self.rotated_path(generation + 1))
        if self.backups >= 1:
            os.replace(self.path, self.rotated_path(1))
        else:
            self.path.unlink(missing_ok=True)
        self.rotations += 1

    def rotated_path(self, generation: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{generation}")


class EventLogWriter(RotatingLineWriter):
    """Append events as JSONL with size-bounded rotation; see module doc."""

    def __init__(self, path: str | Path, *,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS,
                 min_severity: str = "info"):
        if min_severity not in _RANK:
            raise ValueError(f"unknown severity {min_severity!r}")
        super().__init__(path, max_bytes=max_bytes, backups=backups)
        self.min_severity = min_severity

    def __call__(self, record: dict) -> None:
        """The sink interface :meth:`EventChannel.subscribe` expects."""
        if _RANK.get(record.get("severity"), 1) < _RANK[self.min_severity]:
            return
        self.append(json.dumps(record, sort_keys=True))


def iter_event_files(path: str | Path,
                     backups: int = DEFAULT_BACKUPS) -> List[Path]:
    """Existing log files, oldest generation first, active file last."""
    path = Path(path)
    chain = [path.with_name(f"{path.name}.{generation}")
             for generation in range(backups, 0, -1)]
    chain.append(path)
    return [p for p in chain if p.exists()]


def read_events(path: str | Path, *,
                backups: int = DEFAULT_BACKUPS,
                min_severity: str = "debug",
                ) -> Tuple[List[dict], int]:
    """``(events, skipped_lines)`` across the rotation chain, in order.

    Unreadable lines — the torn tail a crash mid-append leaves, or a
    rotated file whose tail was torn *by* the rotation racing a crash —
    are counted in ``skipped_lines`` and dropped; everything parseable
    is returned oldest-first.
    """
    if min_severity not in _RANK:
        raise ValueError(f"unknown severity {min_severity!r}")
    events: List[dict] = []
    skipped = 0
    floor = _RANK[min_severity]
    for file in iter_event_files(path, backups):
        for record in _read_one(file):
            if record is None:
                skipped += 1
            elif _RANK.get(record.get("severity"), 1) >= floor:
                events.append(record)
    return events, skipped


def _read_one(path: Path) -> Iterator[Optional[dict]]:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            yield None
            continue
        yield record if isinstance(record, dict) else None
