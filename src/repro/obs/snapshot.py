"""Atomic obs snapshots: ``<corpus>/.obs/snapshot.json``.

Every watch tick flushes one versioned JSON document — the operational
sample, the evaluated health verdict, the SLO rules it was judged
against, and the full metrics snapshot — through the crash-safe
atomic-write primitives, so a SIGKILLed session always leaves its *last
complete* state on disk.  ``repro status`` (and any offline tooling)
reads that file instead of needing the process alive; the HTTP
``/status`` endpoint serves the identical document, which is what makes
the on-disk and live verdicts interchangeable.

The directory is dot-prefixed, like ``.taps/`` and the checkpoints, so
corpus manifests and digests never include operational state.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Optional

from repro.errors import ObsError, ObsSnapshotError
from repro.runtime.atomic import atomic_write_text, remove_stale_tmp

#: operational-state directory inside a watched corpus
OBS_DIR = ".obs"
#: the snapshot document inside :data:`OBS_DIR`
SNAPSHOT_FILE = "snapshot.json"
#: the event log inside :data:`OBS_DIR` (see :mod:`repro.obs.events`)
EVENTS_FILE = "events.jsonl"

SNAPSHOT_VERSION = 1


def obs_dir(corpus_dir: str | Path) -> Path:
    return Path(corpus_dir) / OBS_DIR


def snapshot_path(corpus_dir: str | Path) -> Path:
    return obs_dir(corpus_dir) / SNAPSHOT_FILE


def events_path(corpus_dir: str | Path) -> Path:
    return obs_dir(corpus_dir) / EVENTS_FILE


def ensure_obs_dir(corpus_dir: str | Path) -> Path:
    directory = obs_dir(corpus_dir)
    directory.mkdir(parents=True, exist_ok=True)
    remove_stale_tmp(directory)
    return directory


def write_snapshot(corpus_dir: str | Path, payload: dict) -> Path:
    """Atomically persist one snapshot document, stamping version + time."""
    ensure_obs_dir(corpus_dir)
    document = {"version": SNAPSHOT_VERSION,
                "written_at": time.time(), **payload}
    path = snapshot_path(corpus_dir)
    atomic_write_text(path, json.dumps(document, sort_keys=True))
    return path


def load_snapshot(corpus_dir: str | Path) -> dict:
    """Read the snapshot back, with typed errors for every bad shape.

    * no ``.obs/snapshot.json`` at all → :class:`~repro.errors.ObsError`
      ("never ran a watch session") — the ``repro status`` guidance case;
    * unreadable / truncated / non-object / wrong version →
      :class:`~repro.errors.ObsSnapshotError` — the file exists but
      cannot be trusted.
    """
    path = snapshot_path(corpus_dir)
    if not path.exists():
        raise ObsError(
            f"{corpus_dir}: no obs snapshot ({path} missing); this corpus "
            "has never run a watch session with the operations plane — "
            "start one with `repro watch` (optionally --obs-port) first")
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ObsSnapshotError(
            f"{path}: unreadable obs snapshot: {exc}") from exc
    if not isinstance(raw, dict):
        raise ObsSnapshotError(f"{path}: obs snapshot is not an object")
    if raw.get("version") != SNAPSHOT_VERSION:
        raise ObsSnapshotError(
            f"{path}: unsupported obs snapshot version "
            f"{raw.get('version')!r} (expected {SNAPSHOT_VERSION})")
    return raw


def snapshot_age_seconds(raw: dict,
                         now: Optional[float] = None) -> Optional[float]:
    """Seconds since the snapshot was written, or None if unstamped."""
    written = raw.get("written_at")
    if not isinstance(written, (int, float)):
        return None
    return max(0.0, (time.time() if now is None else now) - float(written))
