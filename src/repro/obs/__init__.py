"""repro.obs — the live operations plane for long-running sessions.

Everything a ``repro watch`` (or ``Study.watch``) session needs to be
*operated* rather than merely run:

* :mod:`repro.obs.expfmt` — Prometheus text exposition of the metrics
  registry (``/metrics``);
* :mod:`repro.obs.slo` — pure SLO evaluation of an operational sample
  (``/readyz``, ``repro status`` exit codes);
* :mod:`repro.obs.events` — the bounded, torn-tail-tolerant JSONL event
  log (``.obs/events.jsonl``);
* :mod:`repro.obs.snapshot` — atomic versioned state snapshots
  (``.obs/snapshot.json``);
* :mod:`repro.obs.server` — the stdlib threaded HTTP endpoint
  (``--obs-port``);
* :mod:`repro.obs.plane` — the :class:`ObsPlane` orchestrator the
  streaming engine calls once per tick;
* :mod:`repro.obs.status` — the ``repro status`` view over either the
  snapshot file or a live ``/status`` endpoint.

The server, snapshot schema, and SLO evaluator are shared components:
the future ``repro serve`` query API mounts the same machinery.
"""

from repro.obs.events import EventLogWriter, iter_event_files, read_events
from repro.obs.expfmt import render_prometheus
from repro.obs.plane import ObsPlane
from repro.obs.server import METRICS_CONTENT_TYPE, ObsServer, StatePublisher
from repro.obs.slo import (
    EXIT_CODES,
    STATE_DEGRADED,
    STATE_OK,
    STATE_UNHEALTHY,
    Check,
    Health,
    SLORules,
    evaluate,
)
from repro.obs.snapshot import (
    SNAPSHOT_VERSION,
    events_path,
    load_snapshot,
    obs_dir,
    snapshot_age_seconds,
    snapshot_path,
    write_snapshot,
)
from repro.obs.status import fetch_status, render_status, status_exit_code

__all__ = [
    "Check",
    "EXIT_CODES",
    "EventLogWriter",
    "Health",
    "METRICS_CONTENT_TYPE",
    "ObsPlane",
    "ObsServer",
    "SLORules",
    "SNAPSHOT_VERSION",
    "STATE_DEGRADED",
    "STATE_OK",
    "STATE_UNHEALTHY",
    "StatePublisher",
    "evaluate",
    "events_path",
    "fetch_status",
    "iter_event_files",
    "load_snapshot",
    "obs_dir",
    "read_events",
    "render_prometheus",
    "render_status",
    "snapshot_age_seconds",
    "snapshot_path",
    "status_exit_code",
    "write_snapshot",
]
