"""The corpus-local columnar store: ``.columnar/control.col`` +
``.columnar/data.col``.

A :class:`CorpusColumns` is the handle the columnar pipeline computes
from.  It comes in two flavors with identical semantics:

* **memory-backed** (:meth:`CorpusColumns.from_corpora`): columns copied
  out of already-loaded corpora — used when no sidecar exists, when the
  sidecar is stale, or by the streaming engine over its in-memory
  accumulated corpora;
* **mmap-backed** (:meth:`CorpusColumns.open`): zero-copy views over the
  sidecar files, shared read-only by every forked analysis worker.

The sidecar directory is dot-prefixed, so :func:`build_manifest`
excludes it — deriving or deleting sidecars never changes the corpus
digest, result-cache keys, or golden checksums.  Freshness is a *source
binding*: each sidecar header records the SHA-256 of the corpus file it
was derived from, checked against ``manifest.json`` (cheap) or a
re-hash (no manifest) before an mmap-backed open is trusted.

Sidecars hold the corpus in **canonical strict form**: records exactly
as a strict loader would see them, in the corpora's time-sorted order.
When a lenient ingest dropped records, the in-memory corpus no longer
matches that canonical form and callers must fall back to
:meth:`from_corpora` — :meth:`matches` makes that check explicit.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro import telemetry
from repro.columnar.encode import (
    encode_packets,
    encode_updates,
)
from repro.columnar.format import open_columnar, write_columnar
from repro.errors import ColumnarError
from repro.net.ip import IPv4Prefix

#: sidecar locations inside a corpus directory (dot-prefixed: excluded
#: from the manifest, invisible to corpus digests)
COLUMNAR_DIR = ".columnar"
CONTROL_COL_FILE = "control.col"
DATA_COL_FILE = "data.col"

#: journal keys committed after a generate-time sidecar write
COLUMNAR_CONTROL_KEY = "columnar:control"
COLUMNAR_DATA_KEY = "columnar:data"


def columnar_dir(corpus_dir: str | Path) -> Path:
    return Path(corpus_dir) / COLUMNAR_DIR


def sidecar_paths(corpus_dir: str | Path) -> Tuple[Path, Path]:
    root = columnar_dir(corpus_dir)
    return root / CONTROL_COL_FILE, root / DATA_COL_FILE


@dataclass
class CorpusColumns:
    """Struct-of-arrays views of both corpus planes.

    ``control`` and ``data`` map column names to 1-D arrays (see
    :mod:`repro.columnar.encode` for the schemas).  Arrays may alias a
    read-only mmap — treat them as immutable.
    """

    control: Dict[str, np.ndarray]
    data: Dict[str, np.ndarray]
    sampling_rate: int
    #: "memory" | "mmap"
    backing: str = "memory"
    #: source SHA-256 bindings when mmap-backed (control, data)
    sources: Optional[Dict[str, str]] = None

    @property
    def control_rows(self) -> int:
        return len(self.control["time"])

    @property
    def data_rows(self) -> int:
        return len(self.data["time"])

    def matches(self, control_corpus, data_corpus) -> bool:
        """Whether these columns describe exactly the given corpora.

        Row counts are the cheap proxy: sidecars store the canonical
        strict form, so a lenient ingest that dropped records (or any
        other divergence) shows up as a count mismatch and the caller
        rebuilds from memory instead.
        """
        return (self.control_rows == len(control_corpus)
                and self.data_rows == len(data_corpus))

    # -- construction --------------------------------------------------

    @classmethod
    def from_corpora(cls, control_corpus, data_corpus) -> "CorpusColumns":
        """Columnize already-loaded corpora in memory."""
        with telemetry.current().span("columnar.encode",
                                      control=len(control_corpus),
                                      data=len(data_corpus)):
            control = dict(encode_updates(list(control_corpus)))
            data = dict(encode_packets(data_corpus.packets))
        return cls(control=control, data=data,
                   sampling_rate=data_corpus.sampling_rate,
                   backing="memory")

    @classmethod
    def open(cls, corpus_dir: str | Path, *,
             verify: bool = False) -> "CorpusColumns":
        """Memory-map the sidecars of ``corpus_dir``.

        Raises :class:`~repro.errors.ColumnarError` /
        :class:`~repro.errors.TornColumnarError` when either sidecar is
        missing or unusable; freshness against the corpus files is the
        caller's concern (:func:`sidecars_fresh`).
        """
        control_path, data_path = sidecar_paths(corpus_dir)
        for path in (control_path, data_path):
            if not path.exists():
                raise ColumnarError(
                    f"{path}: columnar sidecar missing (derive it with "
                    "`repro analyze --engine columnar` or regenerate)")
        control_seg = open_columnar(control_path, verify=verify)
        data_seg = open_columnar(data_path, verify=verify)
        for seg, plane in ((control_seg, "control"), (data_seg, "data")):
            if seg.plane != plane:
                raise ColumnarError(
                    f"{seg.path}: header says plane {seg.plane!r}, "
                    f"expected {plane!r}")
        try:
            rate = int(data_seg.header["sampling_rate"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ColumnarError(
                f"{data_path}: header lacks a usable sampling_rate: "
                f"{exc}") from exc
        telemetry.current().counter("columnar.sidecars",
                                    outcome="opened").inc()
        return cls(control=control_seg.columns, data=data_seg.columns,
                   sampling_rate=rate, backing="mmap",
                   sources={"control": control_seg.source_sha256,
                            "data": data_seg.source_sha256})

    # -- derived packet views ------------------------------------------

    def packed_packets(self) -> np.ndarray:
        """The data plane as one ``PACKET_DTYPE`` record array.

        Materialized once and cached — the record-path twin functions
        (and the ``window_packets`` hooks) consume packet subsets in
        packed form, so gathers come from here.
        """
        from repro.columnar.encode import decode_packets

        cached = getattr(self, "_packed", None)
        if cached is None:
            cached = decode_packets(self.data)
            self._packed = cached
        return cached

    def use_packed(self, packets: np.ndarray) -> None:
        """Adopt an existing packed array (the already-loaded corpus) so
        gathers need no re-materialization."""
        if len(packets) == self.data_rows:
            self._packed = packets

    def prefixes(self) -> Dict[Tuple[int, int], IPv4Prefix]:
        """Interned ``(net, len) -> IPv4Prefix`` for the control plane."""
        cached = getattr(self, "_prefixes", None)
        if cached is None:
            net = self.control["prefix_net"]
            plen = self.control["prefix_len"]
            cached = {}
            for n, l in zip(net.tolist(), plen.tolist()):
                key = (n, l)
                if key not in cached:
                    cached[key] = IPv4Prefix(n, l)
            self._prefixes = cached
        return cached


# -- sidecar lifecycle -------------------------------------------------


def write_sidecars(corpus_dir: str | Path, control_corpus, data_corpus, *,
                   control_sha256: str, data_sha256: str,
                   journal=None) -> Tuple[Path, Path]:
    """Write both sidecars from loaded corpora, atomically.

    ``control_sha256`` / ``data_sha256`` bind the sidecars to the exact
    corpus files they mirror.  With ``journal`` given (the generate
    checkpoint journal), each sidecar write is committed under its
    ``columnar:*`` key so resumed runs can account for it.
    """
    from repro.corpus.manifest import file_sha256

    root = columnar_dir(corpus_dir)
    root.mkdir(exist_ok=True)
    control_path, data_path = sidecar_paths(corpus_dir)
    telem = telemetry.current()
    with telem.span("columnar.write", corpus=str(corpus_dir)):
        write_columnar(
            control_path, "control", encode_updates(list(control_corpus)),
            rows=len(control_corpus), source_name="control.jsonl",
            source_sha256=control_sha256)
        write_columnar(
            data_path, "data", encode_packets(data_corpus.packets),
            rows=len(data_corpus), source_name="data.npz",
            source_sha256=data_sha256,
            extra={"sampling_rate": int(data_corpus.sampling_rate)})
    telem.counter("columnar.sidecars", outcome="written").inc(2)
    if journal is not None:
        journal.commit(COLUMNAR_CONTROL_KEY,
                       sha256=file_sha256(control_path),
                       source_sha256=control_sha256,
                       rows=len(control_corpus))
        journal.commit(COLUMNAR_DATA_KEY,
                       sha256=file_sha256(data_path),
                       source_sha256=data_sha256,
                       rows=len(data_corpus))
    return control_path, data_path


def source_checksums(corpus_dir: str | Path) -> Dict[str, Optional[str]]:
    """Current SHA-256 of both corpus files, from the manifest when it
    is available (cheap) or by hashing (no manifest)."""
    import json

    from repro.corpus.manifest import (
        CONTROL_FILE,
        DATA_FILE,
        MANIFEST_FILE,
        file_sha256,
    )

    corpus_dir = Path(corpus_dir)
    out: Dict[str, Optional[str]] = {"control": None, "data": None}
    files = {}
    manifest_path = corpus_dir / MANIFEST_FILE
    if manifest_path.exists():
        try:
            files = json.loads(manifest_path.read_text()).get("files", {})
        except (OSError, ValueError):
            files = {}
    for plane, name in (("control", CONTROL_FILE), ("data", DATA_FILE)):
        recorded = files.get(name, {}).get("sha256") \
            if isinstance(files.get(name), dict) else None
        if recorded:
            out[plane] = str(recorded)
        elif (corpus_dir / name).exists():
            out[plane] = file_sha256(corpus_dir / name)
    return out


def sidecars_fresh(corpus_dir: str | Path,
                   columns: CorpusColumns) -> bool:
    """Whether mmap-backed columns still describe the corpus files."""
    if columns.backing != "mmap" or not columns.sources:
        return True
    current = source_checksums(corpus_dir)
    for plane in ("control", "data"):
        if current[plane] is None \
                or current[plane] != columns.sources.get(plane):
            return False
    return True


def derive_sidecars(corpus_dir: str | Path, *, journal=None,
                    ) -> Tuple[Path, Path]:
    """(Re-)derive both sidecars from the finalized corpus files.

    Loads both planes strictly — sidecars always hold the canonical
    strict form — and binds them to the files' current checksums.  This
    is the doctor's ``rederive-columnar`` repair action and the lazy
    path behind ``analyze --engine columnar`` on a pre-columnar corpus.
    """
    from repro.corpus.control import ControlPlaneCorpus
    from repro.corpus.data import DataPlaneCorpus
    from repro.corpus.manifest import CONTROL_FILE, DATA_FILE, file_sha256

    corpus_dir = Path(corpus_dir)
    telem = telemetry.current()
    with telem.span("columnar.derive", corpus=str(corpus_dir)):
        control = ControlPlaneCorpus.load_jsonl(corpus_dir / CONTROL_FILE)
        data = DataPlaneCorpus.load_npz(corpus_dir / DATA_FILE)
        paths = write_sidecars(
            corpus_dir, control, data,
            control_sha256=file_sha256(corpus_dir / CONTROL_FILE),
            data_sha256=file_sha256(corpus_dir / DATA_FILE),
            journal=journal)
    telem.counter("columnar.sidecars", outcome="derived").inc()
    return paths
