"""Engine selection: records vs columnar, and the sidecar lifecycle
policy behind ``analyze --engine {auto,columnar,records}``.

* ``records`` — the reference path: a plain
  :class:`~repro.core.pipeline.AnalysisPipeline`.
* ``columnar`` — always a :class:`~repro.columnar.pipeline
  .ColumnarPipeline`; with a corpus directory at hand, missing / stale /
  damaged sidecars are (re-)derived so subsequent runs mmap them.
* ``auto`` (the default) — columnar *iff* fresh sidecars already exist
  and open cleanly; it never writes anything, so ``analyze`` on a
  pre-columnar corpus behaves exactly as before.

Every resolution is recorded on the ``columnar.engine`` telemetry
counter so the live ops plane can see which path served a run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro import telemetry
from repro.columnar.pipeline import ColumnarPipeline
from repro.columnar.store import (
    CorpusColumns,
    derive_sidecars,
    sidecar_paths,
    sidecars_fresh,
)
from repro.core.pipeline import AnalysisPipeline
from repro.errors import AnalysisError, ColumnarError, ReproError

#: the CLI/API engine vocabulary
ENGINES = ("auto", "columnar", "records")


def _open_fresh(corpus_dir: Path) -> Optional[CorpusColumns]:
    """Open the sidecars when present AND still bound to the corpus
    files; ``None`` when unusable for any reason."""
    control_path, data_path = sidecar_paths(corpus_dir)
    if not (control_path.exists() and data_path.exists()):
        return None
    try:
        columns = CorpusColumns.open(corpus_dir)
    except ColumnarError:
        return None
    if not sidecars_fresh(corpus_dir, columns):
        telemetry.current().counter("columnar.sidecars",
                                    outcome="stale").inc()
        return None
    return columns


def build_pipeline(control, data, peer_asns, *, engine: str = "auto",
                   corpus_dir: str | Path | None = None,
                   **pipeline_kwargs) -> AnalysisPipeline:
    """Build the pipeline for an engine choice.

    ``pipeline_kwargs`` are the usual :class:`AnalysisPipeline` keyword
    arguments (``peeringdb``, ``route_server_asn``, ``delta``,
    ``host_min_days``).  The resolved engine lands on the
    ``columnar.engine`` telemetry counter.
    """
    if engine not in ENGINES:
        raise AnalysisError(
            f"unknown analysis engine {engine!r} (choose from "
            f"{', '.join(ENGINES)})")
    telem = telemetry.current()
    columns: Optional[CorpusColumns] = None
    if engine == "records":
        telem.counter("columnar.engine", resolved="records",
                      requested=engine).inc()
        return AnalysisPipeline(control, data, peer_asns, **pipeline_kwargs)
    if corpus_dir is not None:
        corpus_dir = Path(corpus_dir)
        columns = _open_fresh(corpus_dir)
        if columns is None and engine == "columnar":
            # heal: re-derive from the finalized corpus files, then mmap
            try:
                derive_sidecars(corpus_dir)
                columns = _open_fresh(corpus_dir)
            except (ReproError, OSError):
                columns = None
    if engine == "auto" and columns is None:
        telem.counter("columnar.engine", resolved="records",
                      requested=engine).inc()
        return AnalysisPipeline(control, data, peer_asns, **pipeline_kwargs)
    # engine == "columnar" without usable sidecars still runs columnar,
    # encoding from the loaded corpora in memory
    telem.counter("columnar.engine", resolved="columnar",
                  requested=engine).inc()
    return ColumnarPipeline(control, data, peer_asns, columns=columns,
                            **pipeline_kwargs)
