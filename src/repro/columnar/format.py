"""The columnar segment file format (``.columnar/*.col``).

One file holds one plane of one corpus as a struct-of-arrays batch:

* 8-byte magic ``RCOL\\x01\\n\\x00\\x00`` (version byte inside the magic),
* little-endian ``u4`` header length,
* a UTF-8 JSON header describing the payload — row count, column
  descriptors (name, dtype, byte offset, byte length), the SHA-256 of
  the payload, and the *source binding*: the name and SHA-256 of the
  corpus file the columns were derived from,
* zero padding up to a 64-byte boundary,
* the column payloads, each 64-byte aligned, concatenated.

Columns open as zero-copy views over one shared ``np.memmap``, so
parallel analysis workers forked from the same parent read the same
physical pages.  Opening performs *structural* checks only (magic,
header shape, offsets inside the payload, file length); it does NOT
hash the payload — a flipped bit in a column therefore reaches the
analyses, which is precisely what the differential-equivalence suite
must be able to catch (see ``tests/columnar``).  ``verify_payload``
performs the deep hash for ``repro validate`` and the doctor.

Failure taxonomy mirrors the checkpoint journal's tolerance rules: a
file shorter than its declared length raises
:class:`~repro.errors.TornColumnarError` (recoverable — re-derive),
every other structural defect raises
:class:`~repro.errors.ColumnarError`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ColumnarError, TornColumnarError

#: file magic; the fifth byte is the format version
MAGIC = b"RCOL\x01\n\x00\x00"
#: header/payload alignment — one cache line, and a safe lcm of every
#: column itemsize we store
ALIGN = 64
#: current header version (also encoded in the magic's version byte)
VERSION = 1


def _pad(n: int) -> int:
    return (ALIGN - n % ALIGN) % ALIGN


@dataclass(frozen=True)
class ColumnSpec:
    """One column's location inside the payload."""

    name: str
    dtype: str       # numpy dtype string, e.g. "<f8", "|b1"
    offset: int      # byte offset from the start of the payload
    nbytes: int

    def to_json(self) -> dict:
        return {"name": self.name, "dtype": self.dtype,
                "offset": self.offset, "nbytes": self.nbytes}


def write_columnar(path: str | Path, plane: str,
                   columns: Sequence[Tuple[str, np.ndarray]], *,
                   rows: int, source_name: str, source_sha256: str,
                   extra: Mapping[str, object] | None = None) -> dict:
    """Atomically write one columnar segment file; returns its header.

    ``columns`` are ``(name, 1-D array)`` pairs; arrays are written in
    the given order, each 64-byte aligned.  ``rows`` is the logical
    record count (columns may have other lengths — offset pools do).
    """
    from repro.runtime.atomic import atomic_writer

    specs = []
    offset = 0
    payload_hash = hashlib.sha256()
    blobs = []
    for name, array in columns:
        array = np.ascontiguousarray(array)
        blob = array.tobytes()
        specs.append(ColumnSpec(name=name, dtype=array.dtype.str,
                                offset=offset, nbytes=len(blob)))
        pad = _pad(len(blob))
        blobs.append(blob + b"\x00" * pad)
        payload_hash.update(blob)
        payload_hash.update(b"\x00" * pad)
        offset += len(blob) + pad
    header = {
        "version": VERSION,
        "plane": plane,
        "rows": int(rows),
        "source": {"file": source_name, "sha256": source_sha256},
        "columns": [s.to_json() for s in specs],
        "payload_bytes": offset,
        "payload_sha256": payload_hash.hexdigest(),
    }
    if extra:
        header.update(dict(extra))
    header_blob = json.dumps(header, sort_keys=True).encode("utf-8")
    prefix_len = len(MAGIC) + 4 + len(header_blob)
    with atomic_writer(path, mode="wb") as fh:
        fh.write(MAGIC)
        fh.write(np.uint32(len(header_blob)).tobytes())
        fh.write(header_blob)
        fh.write(b"\x00" * _pad(prefix_len))
        for blob in blobs:
            fh.write(blob)
    return header


@dataclass
class ColumnarSegment:
    """An open (memory-mapped) columnar segment file."""

    path: Path
    header: dict
    #: zero-copy views over the shared mmap, keyed by column name
    columns: Dict[str, np.ndarray]
    _raw: np.ndarray = None  # the uint8 mmap the views alias
    _payload_start: int = 0

    @property
    def plane(self) -> str:
        return str(self.header.get("plane", ""))

    @property
    def rows(self) -> int:
        return int(self.header.get("rows", 0))

    @property
    def source_file(self) -> str:
        return str(self.header.get("source", {}).get("file", ""))

    @property
    def source_sha256(self) -> str:
        return str(self.header.get("source", {}).get("sha256", ""))

    def verify_payload(self) -> None:
        """Deep check: re-hash the payload against the header.

        Raises :class:`ColumnarError` on drift.  This is the check
        ``repro validate`` and the doctor run; the analysis path skips
        it (structural checks only) for speed.
        """
        start = self._payload_start
        end = start + int(self.header["payload_bytes"])
        digest = hashlib.sha256(self._raw[start:end].tobytes()).hexdigest()
        if digest != self.header.get("payload_sha256"):
            raise ColumnarError(
                f"{self.path}: payload SHA-256 drifted from the header "
                "(flipped bits or a partial overwrite); re-derive the "
                "columnar sidecar")


def read_header(path: str | Path) -> Tuple[dict, int, int]:
    """Parse and structurally validate a segment's header.

    Returns ``(header, payload_start, file_size)``; raises the typed
    errors documented in the module docstring.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            prefix = fh.read(len(MAGIC) + 4)
            if len(prefix) < len(MAGIC) + 4:
                raise TornColumnarError(
                    f"{path}: file shorter than the fixed prelude "
                    f"({size} bytes)")
            if prefix[:4] != MAGIC[:4]:
                raise ColumnarError(f"{path}: bad magic; not a columnar "
                                    "segment file")
            if prefix[:len(MAGIC)] != MAGIC:
                raise ColumnarError(
                    f"{path}: unsupported columnar format version "
                    f"{prefix[4]} (supported: {VERSION})")
            header_len = int(np.frombuffer(prefix[len(MAGIC):],
                                           dtype="<u4")[0])
            header_blob = fh.read(header_len)
    except OSError as exc:
        raise ColumnarError(f"{path}: cannot read: {exc}") from exc
    if len(header_blob) < header_len:
        raise TornColumnarError(
            f"{path}: header truncated ({len(header_blob)} of "
            f"{header_len} bytes)")
    try:
        header = json.loads(header_blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ColumnarError(f"{path}: garbled header JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("version") != VERSION:
        raise ColumnarError(
            f"{path}: header version {header.get('version')!r} "
            f"unsupported (expected {VERSION})")
    prefix_len = len(MAGIC) + 4 + header_len
    payload_start = prefix_len + _pad(prefix_len)
    try:
        payload_bytes = int(header["payload_bytes"])
        columns = header["columns"]
        rows = int(header["rows"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ColumnarError(f"{path}: header missing required fields: "
                            f"{exc}") from exc
    if rows < 0 or payload_bytes < 0 or not isinstance(columns, list):
        raise ColumnarError(f"{path}: nonsensical header values")
    declared = payload_start + payload_bytes
    if size < declared:
        raise TornColumnarError(
            f"{path}: torn tail — {size} bytes on disk, {declared} "
            "declared by the header")
    if size > declared:
        raise ColumnarError(
            f"{path}: {size - declared} trailing bytes past the declared "
            "payload")
    return header, payload_start, size


def open_columnar(path: str | Path, *, verify: bool = False,
                  ) -> ColumnarSegment:
    """Memory-map a columnar segment file.

    Structural validation always runs; ``verify=True`` additionally
    hashes the payload (what ``validate``/``doctor`` do).
    """
    path = Path(path)
    header, payload_start, size = read_header(path)
    if size > 0:
        try:
            raw = np.memmap(path, dtype=np.uint8, mode="r")
        except (OSError, ValueError) as exc:
            raise ColumnarError(f"{path}: cannot mmap: {exc}") from exc
    else:  # pragma: no cover - read_header already rejects empty files
        raw = np.zeros(0, dtype=np.uint8)
    columns: Dict[str, np.ndarray] = {}
    payload_bytes = int(header["payload_bytes"])
    for spec in header["columns"]:
        try:
            name = spec["name"]
            dtype = np.dtype(spec["dtype"])
            offset = int(spec["offset"])
            nbytes = int(spec["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ColumnarError(
                f"{path}: bad column descriptor {spec!r}: {exc}") from exc
        if offset < 0 or nbytes < 0 or offset + nbytes > payload_bytes:
            raise ColumnarError(
                f"{path}: column {name!r} extends past the payload "
                f"([{offset}, {offset + nbytes}) of {payload_bytes})")
        if dtype.itemsize == 0 or nbytes % dtype.itemsize:
            raise ColumnarError(
                f"{path}: column {name!r} length {nbytes} not a multiple "
                f"of itemsize {dtype.itemsize}")
        start = payload_start + offset
        columns[name] = raw[start:start + nbytes].view(dtype)
    segment = ColumnarSegment(path=path, header=header, columns=columns,
                              _raw=raw, _payload_start=payload_start)
    if verify:
        segment.verify_payload()
    return segment
