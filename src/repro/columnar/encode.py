"""Record ⇄ column codecs for both corpus planes.

The control plane encodes each :class:`~repro.bgp.message.BGPUpdate`
into fixed-width columns plus two offset-pooled variable-length columns
(AS paths and communities).  The data plane is already a numpy
structured array; encoding splits it into contiguous per-field columns
(the whole point — ``searchsorted`` over the structured ``time`` field
copies the strided view on every call, and that copy was 21 of the 27
seconds of a serial bench analyze).

Both codecs round-trip exactly: ``decode(encode(records)) == records``
field for field, which the hypothesis property suite asserts.  Column
order in a message stream is the corpus's canonical order (time-sorted,
stable), i.e. exactly ``ControlPlaneCorpus._messages`` /
``DataPlaneCorpus.packets``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.bgp.community import BLACKHOLE, Community
from repro.bgp.message import BGPUpdate, UpdateAction
from repro.dataplane.packet import PACKET_DTYPE
from repro.errors import ColumnarError
from repro.net.ip import IPv4Address, IPv4Prefix

#: action codes (stored u1)
ACTION_WITHDRAW = 0
ACTION_ANNOUNCE = 1

#: fixed-width control columns, in storage order
CONTROL_FIXED = (
    ("time", np.float64),
    ("peer_asn", np.uint32),
    ("action", np.uint8),
    ("prefix_net", np.uint32),
    ("prefix_len", np.uint8),
    ("has_next_hop", np.bool_),
    ("next_hop", np.uint32),
    # derived, not needed for decode, but the kernels read them without
    # touching the variable-length pools
    ("origin_asn", np.uint32),
    ("blackhole", np.bool_),
)

#: data-plane columns = the packet dtype's own fields
DATA_COLUMNS = tuple(PACKET_DTYPE.names)


def pack_community(c: Community) -> int:
    """``asn:value`` (both u16 by construction) into one u32."""
    return (c.asn << 16) | c.value


def unpack_community(packed: int) -> Community:
    return Community((packed >> 16) & 0xFFFF, packed & 0xFFFF)


def encode_updates(messages: Sequence[BGPUpdate],
                   ) -> List[Tuple[str, np.ndarray]]:
    """Columnize a message stream (order preserved)."""
    n = len(messages)
    cols = {name: np.zeros(n, dtype=dt) for name, dt in CONTROL_FIXED}
    path_offsets = np.zeros(n + 1, dtype=np.int64)
    comm_offsets = np.zeros(n + 1, dtype=np.int64)
    path_pool: List[int] = []
    comm_pool: List[int] = []
    for i, msg in enumerate(messages):
        cols["time"][i] = msg.time
        cols["peer_asn"][i] = msg.peer_asn
        cols["action"][i] = (ACTION_ANNOUNCE
                             if msg.action is UpdateAction.ANNOUNCE
                             else ACTION_WITHDRAW)
        cols["prefix_net"][i] = msg.prefix.network_int
        cols["prefix_len"][i] = msg.prefix.length
        if msg.next_hop is not None:
            cols["has_next_hop"][i] = True
            cols["next_hop"][i] = int(msg.next_hop)
        cols["origin_asn"][i] = msg.origin_asn
        cols["blackhole"][i] = BLACKHOLE in msg.communities
        path_pool.extend(msg.as_path)
        path_offsets[i + 1] = len(path_pool)
        # frozensets have no canonical order; sort for determinism
        comm_pool.extend(sorted(pack_community(c) for c in msg.communities))
        comm_offsets[i + 1] = len(comm_pool)
    out = [(name, cols[name]) for name, _ in CONTROL_FIXED]
    out.append(("as_path_offsets", path_offsets))
    out.append(("as_path_values", np.asarray(path_pool, dtype=np.uint32)))
    out.append(("community_offsets", comm_offsets))
    out.append(("community_values", np.asarray(comm_pool, dtype=np.uint32)))
    return out


def _require(columns: Dict[str, np.ndarray], name: str) -> np.ndarray:
    try:
        return columns[name]
    except KeyError:
        raise ColumnarError(f"control columns missing {name!r}") from None


def decode_updates(columns: Dict[str, np.ndarray]) -> List[BGPUpdate]:
    """Reconstruct the exact message stream from control columns."""
    times = _require(columns, "time")
    n = len(times)
    peer = _require(columns, "peer_asn")
    action = _require(columns, "action")
    net = _require(columns, "prefix_net")
    plen = _require(columns, "prefix_len")
    has_nh = _require(columns, "has_next_hop")
    nh = _require(columns, "next_hop")
    po = _require(columns, "as_path_offsets")
    pv = _require(columns, "as_path_values")
    co = _require(columns, "community_offsets")
    cv = _require(columns, "community_values")
    for name, offsets, pool in (("as_path", po, pv),
                                ("community", co, cv)):
        if len(offsets) != n + 1:
            raise ColumnarError(
                f"{name}_offsets has {len(offsets)} entries for {n} rows")
        if n >= 0 and (len(offsets) == 0 or offsets[-1] != len(pool)):
            raise ColumnarError(
                f"{name}_offsets does not close over its value pool")
    out: List[BGPUpdate] = []
    for i in range(n):
        out.append(BGPUpdate(
            time=float(times[i]),
            peer_asn=int(peer[i]),
            action=(UpdateAction.ANNOUNCE if action[i] == ACTION_ANNOUNCE
                    else UpdateAction.WITHDRAW),
            prefix=IPv4Prefix(int(net[i]), int(plen[i])),
            next_hop=IPv4Address(int(nh[i])) if has_nh[i] else None,
            as_path=tuple(int(a) for a in pv[po[i]:po[i + 1]]),
            communities=frozenset(unpack_community(int(c))
                                  for c in cv[co[i]:co[i + 1]]),
        ))
    return out


def encode_packets(packets: np.ndarray) -> List[Tuple[str, np.ndarray]]:
    """Split a ``PACKET_DTYPE`` record array into contiguous columns."""
    if packets.dtype != PACKET_DTYPE:
        raise ColumnarError(
            f"expected PACKET_DTYPE array, got {packets.dtype}")
    return [(name, np.ascontiguousarray(packets[name]))
            for name in DATA_COLUMNS]


def decode_packets(columns: Dict[str, np.ndarray]) -> np.ndarray:
    """Reassemble the packed ``PACKET_DTYPE`` array from columns."""
    missing = [name for name in DATA_COLUMNS if name not in columns]
    if missing:
        raise ColumnarError(f"data columns missing {missing}")
    lengths = {len(columns[name]) for name in DATA_COLUMNS}
    if len(lengths) > 1:
        raise ColumnarError(
            f"data column lengths differ: {sorted(lengths)}")
    n = lengths.pop() if lengths else 0
    out = np.zeros(n, dtype=PACKET_DTYPE)
    for name in DATA_COLUMNS:
        out[name] = columns[name]
    return out
