"""Columnar data plane: mmap-backed struct-of-arrays corpus views and
numpy-vectorized twins of the hottest analyses.

Public surface:

* :func:`repro.columnar.engine.build_pipeline` — engine-aware pipeline
  construction (``auto`` / ``columnar`` / ``records``);
* :class:`repro.columnar.pipeline.ColumnarPipeline` — the vectorized
  pipeline (bit-equal results, enforced by ``tests/columnar``);
* :class:`repro.columnar.store.CorpusColumns` and the sidecar lifecycle
  (:func:`~repro.columnar.store.write_sidecars`,
  :func:`~repro.columnar.store.derive_sidecars`);
* :mod:`repro.columnar.format` — the versioned ``.col`` segment format.
"""

from repro.columnar.engine import ENGINES, build_pipeline
from repro.columnar.pipeline import ColumnarPipeline
from repro.columnar.store import (
    COLUMNAR_CONTROL_KEY,
    COLUMNAR_DATA_KEY,
    COLUMNAR_DIR,
    CorpusColumns,
    columnar_dir,
    derive_sidecars,
    sidecar_paths,
    sidecars_fresh,
    write_sidecars,
)

__all__ = [
    "ENGINES",
    "build_pipeline",
    "ColumnarPipeline",
    "CorpusColumns",
    "COLUMNAR_DIR",
    "COLUMNAR_CONTROL_KEY",
    "COLUMNAR_DATA_KEY",
    "columnar_dir",
    "derive_sidecars",
    "sidecar_paths",
    "sidecars_fresh",
    "write_sidecars",
]
