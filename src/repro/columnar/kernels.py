"""Vectorized analysis kernels over columnar corpus views.

Every kernel here is a *twin* of a record-path function and must produce
bit-identical results — the differential-equivalence suite
(``tests/columnar``) holds them to ``value_fingerprint`` equality on
seeded and hypothesis-generated corpora.  The strategy everywhere is to
vectorize the per-record scan (the part that cost ~21 of 27 serial
seconds on the bench corpus, almost all of it ``searchsorted`` copying
the strided ``time`` field view) and then *reuse the record path's own
aggregation code* on identical intermediate values, so equality is by
construction rather than by parallel reimplementation.

Control plane:

* :func:`rtbh_flags` — the stateful announce/withdraw blackhole
  classification of :meth:`ControlPlaneCorpus._classify`, computed with
  one stable key-sort and a shifted compare instead of a Python loop.
* :func:`rtbh_window_state` — the §5.1 raw announcement windows and
  first-origin map, feeding the *same* ``merge_annotated_windows`` /
  ``events_from_merged_windows`` functions the record path uses.

Data plane:

* :func:`event_row_index` — for every event, the sorted row indices of
  its during-blackhole packets, from two batched ``searchsorted`` calls
  over the contiguous time column plus per-window prefix masks.
  Gathering those rows from the packed record array yields exactly the
  array the record path builds by slice+mask+concat, which is what the
  ``window_packets`` hooks in :mod:`repro.core.protocols`,
  :mod:`repro.core.filtering`, and :mod:`repro.core.pre_rtbh` consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.columnar.encode import ACTION_ANNOUNCE
from repro.core.droprate import EventTraffic, SourceReaction
from repro.core.events import RTBHEvent
from repro.core.pre_rtbh import PRE_WINDOW
from repro.errors import AnalysisError
from repro.net.ip import IPv4Prefix

_MAX32 = 0xFFFFFFFF


def _prefix_bits(length: int) -> np.uint32:
    return np.uint32((_MAX32 << (32 - length)) & _MAX32 if length else 0)


# -- control plane -----------------------------------------------------


def _key_ids(peer: np.ndarray, net: np.ndarray,
             plen: np.ndarray) -> np.ndarray:
    """Dense group ids for (peer, prefix) keys."""
    keys = np.empty(len(peer), dtype=[("p", "u4"), ("n", "u4"),
                                      ("l", "u1")])
    keys["p"], keys["n"], keys["l"] = peer, net, plen
    _, kid = np.unique(keys, return_inverse=True)
    return kid


def rtbh_flags(control: Dict[str, np.ndarray]) -> np.ndarray:
    """Vectorized twin of :meth:`ControlPlaneCorpus._classify`.

    The record path walks messages in time order keeping the set of
    (peer, prefix) keys with a standing blackhole.  Observe that after
    *any* message the key's state equals "that message was a blackhole
    announce" (a non-blackhole announce replaces, a withdraw clears), so
    ``flag[i] = bh_announce[i] or bh_announce[previous message on the
    same key]`` — computable with one stable sort by key.
    """
    action = control["action"]
    n = len(action)
    if n == 0:
        return np.zeros(0, dtype=bool)
    bh_announce = (action == ACTION_ANNOUNCE) & control["blackhole"]
    kid = _key_ids(control["peer_asn"], control["prefix_net"],
                   control["prefix_len"])
    order = np.argsort(kid, kind="stable")
    kid_s = kid[order]
    bh_s = bh_announce[order]
    prev = np.zeros(n, dtype=bool)
    prev[1:] = bh_s[:-1] & (kid_s[1:] == kid_s[:-1])
    flags = np.empty(n, dtype=bool)
    flags[order] = bh_s | prev
    return flags


def rtbh_window_state(
    control: Dict[str, np.ndarray],
    flags: Optional[np.ndarray] = None,
) -> Tuple[Dict[IPv4Prefix, List[Tuple[float, float, int]]],
           Dict[Tuple[IPv4Prefix, int], int], int]:
    """Raw §5.1 window state: twin of
    :meth:`ControlPlaneCorpus.rtbh_windows_by_prefix` plus the
    first-origin map of ``_merged_prefix_windows``.

    Returns ``(raw_windows, origin_of, rtbh_announcements)``.  Within
    each (peer, prefix) key the flagged messages form runs of
    "open at the first announce since the last withdraw, emit at each
    withdraw"; openers are found with a shifted compare and each
    window's start with a cumulative-max over opener positions (valid
    globally because the stable key-sort keeps groups contiguous and
    every flagged withdraw has an opener earlier in its own group).
    Keys left open close at the last message time, like the record path.
    """
    if flags is None:
        flags = rtbh_flags(control)
    times = control["time"]
    n = len(times)
    raw: Dict[IPv4Prefix, List[Tuple[float, float, int]]] = {}
    origin_of: Dict[Tuple[IPv4Prefix, int], int] = {}
    if n == 0 or not flags.any():
        return raw, origin_of, 0
    end_time = float(times[-1])
    idx = np.flatnonzero(flags)
    t = times[idx]
    peer = control["peer_asn"][idx]
    net = control["prefix_net"][idx]
    plen = control["prefix_len"][idx]
    ann = control["action"][idx] == ACTION_ANNOUNCE
    origin = control["origin_asn"][idx]
    announcements = int(ann.sum())

    kid = _key_ids(peer, net, plen)
    order = np.argsort(kid, kind="stable")
    kid_s = kid[order]
    t_s, peer_s, net_s, plen_s = t[order], peer[order], net[order], plen[order]
    ann_s, origin_s = ann[order], origin[order]
    m = len(order)
    first = np.empty(m, dtype=bool)
    first[0] = True
    first[1:] = kid_s[1:] != kid_s[:-1]
    last = np.empty(m, dtype=bool)
    last[-1] = True
    last[:-1] = first[1:]
    # an announce opens iff the key is closed: at the group head (the
    # first flagged message of a key is always a blackhole announce) or
    # right after a withdraw
    prev_is_withdraw = np.empty(m, dtype=bool)
    prev_is_withdraw[0] = False
    prev_is_withdraw[1:] = ~ann_s[:-1]
    opener = ann_s & (first | prev_is_withdraw)
    open_pos = np.where(opener, np.arange(m), -1)
    start_pos = np.maximum.accumulate(open_pos)

    prefixes: Dict[Tuple[int, int], IPv4Prefix] = {}

    def _prefix(i: int) -> IPv4Prefix:
        key = (int(net_s[i]), int(plen_s[i]))
        prefix = prefixes.get(key)
        if prefix is None:
            prefix = prefixes[key] = IPv4Prefix(*key)
        return prefix

    # first flagged announce per key == the group head (stable sort
    # keeps time order inside groups), matching the record path's
    # ``origin_of.setdefault`` walk
    for i in np.flatnonzero(first).tolist():
        origin_of[(_prefix(i), int(peer_s[i]))] = int(origin_s[i])
    # every flagged withdraw emits a window; keys whose last flagged
    # message is an announce are still open and close at end_time
    emit_end = np.where(~ann_s, t_s, end_time)
    for i in np.flatnonzero(~ann_s | (last & ann_s)).tolist():
        start = float(t_s[start_pos[i]])
        raw.setdefault(_prefix(i), []).append(
            (start, float(emit_end[i]), int(peer_s[i])))
    for windows in raw.values():
        windows.sort()
    return raw, origin_of, announcements


# -- data plane --------------------------------------------------------


def window_rows(time_col: np.ndarray, dst_col: np.ndarray,
                prefix: IPv4Prefix,
                windows: Sequence[Tuple[float, float]]) -> np.ndarray:
    """Sorted row indices of packets to ``prefix`` during ``windows``."""
    if len(time_col) == 0 or not windows:
        return np.zeros(0, dtype=np.int64)
    starts = np.fromiter((w[0] for w in windows), dtype=np.float64,
                         count=len(windows))
    ends = np.fromiter((w[1] for w in windows), dtype=np.float64,
                       count=len(windows))
    lo = np.searchsorted(time_col, starts, side="left")
    hi = np.searchsorted(time_col, ends, side="left")
    bits = _prefix_bits(prefix.length)
    target = np.uint32(prefix.network_int)
    parts = []
    for l, h in zip(lo.tolist(), hi.tolist()):
        if h <= l:
            continue
        hit = (dst_col[l:h] & bits) == target
        rows = np.flatnonzero(hit)
        if rows.size:
            parts.append(rows.astype(np.int64) + l)
    if not parts:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(parts)


def event_row_index(time_col: np.ndarray, dst_col: np.ndarray,
                    events: Sequence[RTBHEvent],
                    ) -> Dict[int, np.ndarray]:
    """Per event: sorted row indices of its during-blackhole packets.

    All windows of all events go through two batched ``searchsorted``
    calls; the per-window prefix masks then touch only the (small) row
    ranges inside each window.  Event windows are disjoint and sorted,
    so the concatenated indices are strictly increasing — gathering them
    reproduces the record path's slice+mask+concat array exactly.
    """
    out: Dict[int, np.ndarray] = {}
    counts = [len(ev.windows) for ev in events]
    total = sum(counts)
    if total == 0 or len(time_col) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return {ev.event_id: empty for ev in events}
    starts = np.empty(total, dtype=np.float64)
    ends = np.empty(total, dtype=np.float64)
    pos = 0
    for ev in events:
        for s, e in ev.windows:
            starts[pos] = s
            ends[pos] = e
            pos += 1
    lo = np.searchsorted(time_col, starts, side="left").tolist()
    hi = np.searchsorted(time_col, ends, side="left").tolist()
    pos = 0
    for ev, k in zip(events, counts):
        bits = _prefix_bits(ev.prefix.length)
        target = np.uint32(ev.prefix.network_int)
        parts = []
        for w in range(k):
            l, h = lo[pos], hi[pos]
            pos += 1
            if h <= l:
                continue
            rows = np.flatnonzero((dst_col[l:h] & bits) == target)
            if rows.size:
                parts.append(rows.astype(np.int64) + l)
        out[ev.event_id] = (np.concatenate(parts) if parts
                            else np.zeros(0, dtype=np.int64))
    return out


def event_traffic_from_rows(
    data: Dict[str, np.ndarray],
    events: Sequence[RTBHEvent],
    rows_by_event: Dict[int, np.ndarray],
) -> List[EventTraffic]:
    """Twin of :func:`repro.core.droprate.event_traffic` over row
    indices: identical integer totals, identical object stream."""
    size_col = data["size"]
    dropped_col = data["dropped"]
    out: List[EventTraffic] = []
    for event in events:
        rows = rows_by_event[event.event_id]
        if rows.size == 0:
            out.append(EventTraffic(event.event_id, event.prefix.length,
                                    0, 0, 0, 0))
            continue
        sizes = size_col[rows].astype(np.int64)
        dropped = dropped_col[rows]
        out.append(EventTraffic(
            event_id=event.event_id,
            prefix_length=event.prefix.length,
            packets=int(rows.size),
            dropped_packets=int(dropped.sum()),
            bytes=int(sizes.sum()),
            dropped_bytes=int(sizes[dropped].sum()),
        ))
    return out


def top_source_reactions_from_rows(
    data: Dict[str, np.ndarray],
    events: Sequence[RTBHEvent],
    rows_by_event: Dict[int, np.ndarray],
    top_n: int = 100,
    prefix_length: int = 32,
) -> List[SourceReaction]:
    """Twin of :func:`repro.core.droprate.top_source_reactions`."""
    parts = [rows_by_event[ev.event_id] for ev in events
             if ev.prefix.length == prefix_length
             and rows_by_event[ev.event_id].size]
    if not parts:
        raise AnalysisError("no traffic towards blackholes of that length")
    rows = np.concatenate(parts)
    ingress = data["ingress_asn"][rows]
    drop_col = data["dropped"][rows]
    asns, inverse = np.unique(ingress, return_inverse=True)
    totals = np.bincount(inverse, minlength=len(asns))
    dropped = np.bincount(inverse, weights=drop_col.astype(np.float64),
                          minlength=len(asns)).astype(np.int64)
    order = np.argsort(totals)[::-1][:top_n]
    reactions = [SourceReaction(int(asns[i]), int(totals[i]),
                                int(dropped[i])) for i in order]
    reactions.sort(key=lambda r: r.drop_share, reverse=True)
    return reactions


def pre_window_rows(time_col: np.ndarray, dst_col: np.ndarray,
                    events: Sequence[RTBHEvent],
                    pre_window: float = PRE_WINDOW,
                    ) -> Dict[int, np.ndarray]:
    """Per event: row indices of its 72 h pre-window prefix traffic."""
    out: Dict[int, np.ndarray] = {}
    if not events:
        return out
    if len(time_col) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return {ev.event_id: empty for ev in events}
    starts = np.fromiter((ev.start - pre_window for ev in events),
                         dtype=np.float64, count=len(events))
    ends = np.fromiter((ev.start for ev in events), dtype=np.float64,
                       count=len(events))
    lo = np.searchsorted(time_col, starts, side="left").tolist()
    hi = np.searchsorted(time_col, ends, side="left").tolist()
    for ev, l, h in zip(events, lo, hi):
        if h <= l:
            out[ev.event_id] = np.zeros(0, dtype=np.int64)
            continue
        bits = _prefix_bits(ev.prefix.length)
        target = np.uint32(ev.prefix.network_int)
        rows = np.flatnonzero((dst_col[l:h] & bits) == target)
        out[ev.event_id] = rows.astype(np.int64) + l
    return out
