"""The columnar analysis pipeline.

:class:`ColumnarPipeline` is an :class:`~repro.core.pipeline
.AnalysisPipeline` whose shared intermediates (events, per-event
traffic, pre-RTBH classification) and hottest analyses are computed by
the vectorized kernels of :mod:`repro.columnar.kernels` over a
:class:`~repro.columnar.store.CorpusColumns` view, instead of per-event
record scans.

Dispatch is by capability flag: registry specs with ``columnar=True``
resolve to a ``_columnar_*`` twin, every other analysis falls through to
the inherited record implementation — and any :class:`~repro.errors
.ColumnarError` raised mid-analysis falls back to the record path too,
so a damaged sidecar degrades performance, never results.  Because the
subclass only overrides ``analysis_fn`` and the cached properties, the
serial, supervised, and parallel runners (which duck-type both) pick the
columnar twins up unchanged, and forked workers share the mmap-backed
column pages read-only.

Equality with the record path is *by construction*: the kernels emit the
same intermediate objects (``RTBHEvent`` lists, ``EventTraffic``
streams, per-event packet arrays) and the record path's own aggregation
functions run on top, so ``value_fingerprint`` digests match bit for bit
— the contract the differential suite in ``tests/columnar`` enforces.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import telemetry
from repro.columnar import kernels
from repro.columnar.store import CorpusColumns
from repro.core import droprate as droprate_mod
from repro.core import filtering as filtering_mod
from repro.core import pre_rtbh as pre_mod
from repro.core import protocols as protocols_mod
from repro.core.events import (
    DEFAULT_DELTA,
    RTBHEvent,
    events_from_merged_windows,
    merge_annotated_windows,
    sweep_from_merged,
)
from repro.core.pipeline import AnalysisPipeline
from repro.core.registry import get_analysis
from repro.corpus.control import ControlPlaneCorpus
from repro.corpus.data import DataPlaneCorpus
from repro.errors import ColumnarError
from repro.ixp.peeringdb import PeeringDB


class ColumnarPipeline(AnalysisPipeline):
    """Vectorized pipeline over struct-of-arrays corpus views."""

    def __init__(
        self,
        control: ControlPlaneCorpus,
        data: DataPlaneCorpus,
        peer_asns: Sequence[int],
        peeringdb: PeeringDB | None = None,
        route_server_asn: int = 64_500,
        delta: float = DEFAULT_DELTA,
        host_min_days: int = 20,
        columns: Optional[CorpusColumns] = None,
    ):
        super().__init__(control, data, peer_asns, peeringdb=peeringdb,
                         route_server_asn=route_server_asn, delta=delta,
                         host_min_days=host_min_days)
        self._given_columns = columns

    # -- column views --------------------------------------------------

    @cached_property
    def columns(self) -> CorpusColumns:
        """The struct-of-arrays view the kernels compute from.

        Prefers the injected (usually mmap-backed sidecar) columns, but
        only while they still describe the loaded corpora — a lenient
        ingest that dropped records diverges from the sidecars'
        canonical strict form, and the pipeline silently re-encodes from
        memory rather than analyze the wrong rows.
        """
        given = self._given_columns
        if given is not None and given.matches(self.control, self.data):
            given.use_packed(self.data.packets)
            return given
        if given is not None:
            telemetry.current().counter("columnar.fallback",
                                        reason="columns-mismatch").inc()
        columns = CorpusColumns.from_corpora(self.control, self.data)
        columns.use_packed(self.data.packets)
        return columns

    # -- control-plane kernel state ------------------------------------

    @cached_property
    def _window_state(self):
        columns = self.columns
        flags = kernels.rtbh_flags(columns.control)
        return kernels.rtbh_window_state(columns.control, flags)

    @cached_property
    def _merged_windows(self):
        raw, origin_of, _ = self._window_state
        return merge_annotated_windows(raw, origin_of)

    @cached_property
    def events(self) -> List[RTBHEvent]:
        """Δ-merged RTBH events (§5.1) — vectorized twin."""
        try:
            return events_from_merged_windows(self._merged_windows,
                                              self.delta)
        except ColumnarError:
            telemetry.current().counter("columnar.fallback",
                                        reason="events").inc()
            return AnalysisPipeline.events.func(self)

    # -- data-plane kernel state ---------------------------------------

    @cached_property
    def _event_rows(self) -> Dict[int, np.ndarray]:
        """Per event: sorted packet-row indices of its windows."""
        columns = self.columns
        return kernels.event_row_index(columns.data["time"],
                                       columns.data["dst_ip"], self.events)

    @cached_property
    def _pre_rows(self) -> Dict[int, np.ndarray]:
        """Per event: packet-row indices of its 72 h pre-window."""
        columns = self.columns
        return kernels.pre_window_rows(columns.data["time"],
                                       columns.data["dst_ip"], self.events)

    def _window_packets(self, event: RTBHEvent) -> np.ndarray:
        """The ``window_packets`` hook: gather instead of slice+mask."""
        return self.columns.packed_packets()[self._event_rows[event.event_id]]

    def _pre_window_packets(self, event: RTBHEvent) -> np.ndarray:
        return self.columns.packed_packets()[self._pre_rows[event.event_id]]

    @cached_property
    def event_traffic(self) -> List[droprate_mod.EventTraffic]:
        """Per-event during-blackhole totals — vectorized twin."""
        try:
            return kernels.event_traffic_from_rows(
                self.columns.data, self.events, self._event_rows)
        except ColumnarError:
            telemetry.current().counter("columnar.fallback",
                                        reason="event_traffic").inc()
            return AnalysisPipeline.event_traffic.func(self)

    @cached_property
    def pre_classification(self) -> pre_mod.PreRTBHClassification:
        """Pre-RTBH classification — row-gathered windows, same EWMA."""
        try:
            return pre_mod.classify_pre_rtbh_events(
                self.data, self.events,
                window_packets=self._pre_window_packets)
        except ColumnarError:
            telemetry.current().counter("columnar.fallback",
                                        reason="pre_classification").inc()
            return AnalysisPipeline.pre_classification.func(self)

    # -- dispatch ------------------------------------------------------

    def analysis_fn(self, name: str):
        spec = get_analysis(name)
        if not getattr(spec, "columnar", False):
            return super().analysis_fn(name)
        columnar_fn = getattr(self, "_columnar_" + spec.name)
        record_fn = getattr(self, "_impl_" + spec.name)

        def run(**kwargs):
            try:
                return columnar_fn(**kwargs)
            except ColumnarError:
                telemetry.current().counter("columnar.fallback",
                                            reason=spec.name).inc()
                return record_fn(**kwargs)

        run.__name__ = "_columnar_" + spec.name
        return run

    # -- vectorized analyses -------------------------------------------

    def _columnar_fig5_drop_by_length(self):
        # the record impl recomputes event_traffic; reuse the cached one
        return droprate_mod.aggregate_drop_rates(self.event_traffic)

    def _columnar_fig6_drop_cdfs(self, lengths=(24, 32)):
        return droprate_mod.drop_cdfs_from_traffic(self.event_traffic,
                                                   lengths=lengths)

    def _columnar_fig7_top_sources(self, top_n: int = 100):
        return kernels.top_source_reactions_from_rows(
            self.columns.data, self.events, self._event_rows, top_n=top_n)

    def _columnar_fig8_org_types(self, top_n: int = 100):
        return droprate_mod.top_source_org_types(
            self._columnar_fig7_top_sources(top_n=top_n), self.peeringdb)

    def _columnar_fig10_merge_sweep(self, deltas=None):
        _, _, announcements = self._window_state
        return sweep_from_merged(self._merged_windows, announcements,
                                 deltas)

    def _columnar_table2_pre_classes(self):
        return self.pre_classification.class_shares()

    def _columnar_sec54_protocol_mix(self):
        return protocols_mod.event_protocol_mix(
            self.data, self.events, self.pre_classification,
            window_packets=self._window_packets)

    def _columnar_table3_amplification(self):
        return protocols_mod.amplification_protocol_table(
            self._columnar_sec54_protocol_mix())

    def _columnar_fig14_filterable(self):
        return filtering_mod.filterable_share_cdf(
            self.data, self.events, self.pre_classification,
            window_packets=self._window_packets)

    def _columnar_fig15_participation(self):
        return filtering_mod.as_participation(
            self.data, self.events, self.pre_classification,
            window_packets=self._window_packets)
