"""Supervised consumption of one external feed: every failure mode of a
real BGP feed gets a deterministic, testable handling path.

A :class:`TapSupervisor` wraps one :class:`~repro.taps.adapters.TapSpec`
and is *pull-based*: the session calls :meth:`poll` on every pump, and
the supervisor reads whatever new bytes its source file holds.  Around
that read sit the robustness layers, in order:

stall watchdog
    No new bytes for longer than ``stall_timeout`` (on the injected
    clock) counts as a failure — a wedged feed looks exactly like a
    silent one.
reconnect with deterministic backoff
    Failures escalate through :class:`repro.runtime.retry.BackoffTimer`
    — the same seeded-jitter policy machinery the analysis supervisor
    uses — so a given ``(policy, seed)`` replays the identical reconnect
    schedule.  The chaos kill points ``tap:reconnect:N`` and
    ``tap:<name>:reconnect:N`` fire as each reconnect probe begins.
circuit breaker
    ``breaker_threshold`` consecutive failures open the breaker: polls
    short-circuit without touching the source until the cooldown
    expires, then a single half-open probe decides between closing it
    (new data arrived) and re-opening with the next backoff delay.
    ``max_reconnects`` consecutive failed probes declare the tap dead —
    permanently for this session; the session degrades instead of
    failing.
bounded ingest queue
    Parsed updates land in a bounded queue with an explicit backpressure
    policy: ``block`` defers reading while full (bounded memory, no
    loss), ``drop-oldest`` evicts from the head (bounded staleness), and
    ``fail`` raises :class:`~repro.errors.TapError`.
malformed-record quarantine
    Undecodable records go through the PR 1 :class:`ErrorPolicy` /
    :class:`IngestReport` machinery: ``strict`` raises, ``skip`` drops
    with accounting, ``collect`` additionally appends to a SHA-256
    deduped quarantine sidecar — re-ingesting a feed never double-counts
    its quarantine.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro import telemetry
from repro.bgp.message import BGPUpdate
from repro.corpus.ingest import ErrorPolicy, IngestReport, check_policy
from repro.errors import TapError
from repro.runtime import chaos
from repro.runtime.retry import BackoffTimer, RetryPolicy
from repro.taps.adapters import MRT_HEADER, MRT_MAX_FRAME, TapSpec

#: bytes consumed from a source per poll, the block-policy memory bound
MAX_READ = 4 << 20


class TapState(str, Enum):
    """Lifecycle of one supervised tap."""

    CONNECTING = "connecting"   # never produced a record yet
    LIVE = "live"               # data flowed within the stall window
    STALLED = "stalled"         # watchdog fired, breaker still closed
    RECONNECTING = "reconnecting"  # breaker open/half-open, probing
    DEAD = "dead"               # reconnect budget exhausted; permanent
    FINISHED = "finished"       # final pump drained it to EOF

    __str__ = str.__str__


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __str__ = str.__str__


class BackpressurePolicy(str, Enum):
    """What a full ingest queue does to the producer."""

    BLOCK = "block"
    DROP_OLDEST = "drop-oldest"
    FAIL = "fail"

    __str__ = str.__str__


@dataclass(frozen=True)
class TapConfig:
    """Supervision knobs shared by every tap of a session."""

    #: seconds of no progress before the watchdog declares a stall
    stall_timeout: float = 30.0
    #: consecutive failures before the circuit breaker opens
    breaker_threshold: int = 3
    #: consecutive failed reconnect probes before the tap is declared dead
    max_reconnects: int = 8
    #: parsed-update capacity of the bounded ingest queue
    queue_capacity: int = 100_000
    queue_policy: BackpressurePolicy = BackpressurePolicy.BLOCK
    #: malformed-record policy (collect = quarantine sidecars)
    policy: ErrorPolicy = ErrorPolicy.COLLECT
    #: reconnect backoff shape; jitter is deterministic per (policy, seed)
    backoff: RetryPolicy = RetryPolicy(max_retries=0, backoff_base=0.5,
                                       backoff_factor=2.0, backoff_max=60.0,
                                       jitter=0.5)
    #: seed of the jitter stream (and the determinism contract)
    seed: int = 0
    #: feed timestamps are shifted by -epoch into corpus time
    epoch: float = 0.0

    def __post_init__(self) -> None:
        check_policy(self.policy)
        if self.stall_timeout <= 0:
            raise TapError("stall_timeout must be > 0")
        if self.breaker_threshold < 1:
            raise TapError("breaker_threshold must be >= 1")
        if self.max_reconnects < 1:
            raise TapError("max_reconnects must be >= 1")
        if self.queue_capacity < 1:
            raise TapError("queue_capacity must be >= 1")


class BoundedQueue:
    """The bounded ingest queue between parse and the session merge."""

    def __init__(self, capacity: int, policy: BackpressurePolicy):
        self.capacity = int(capacity)
        self.policy = BackpressurePolicy(policy)
        self.dropped = 0
        self._items: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def free(self) -> int:
        return max(0, self.capacity - len(self._items))

    def push(self, items: List) -> List:
        """Enqueue; returns the items that did NOT fit (block policy).

        ``drop-oldest`` always accepts, evicting from the head;
        ``fail`` raises :class:`TapError` instead of overflowing.
        """
        if self.policy is BackpressurePolicy.DROP_OLDEST:
            for item in items:
                if len(self._items) >= self.capacity:
                    self._items.popleft()
                    self.dropped += 1
                self._items.append(item)
            return []
        if self.policy is BackpressurePolicy.FAIL:
            if len(items) > self.free:
                raise TapError(
                    f"ingest queue overflow: {len(items)} new records "
                    f"against {self.free} free slots (capacity "
                    f"{self.capacity}, policy=fail)")
            self._items.extend(items)
            return []
        # block: accept what fits, hand the rest back to the producer
        take = self.free
        self._items.extend(items[:take])
        return items[take:]

    def drain(self) -> List:
        items = list(self._items)
        self._items.clear()
        return items


class _SourceReader:
    """Incremental, offset-tracking reader over a (growing) source file.

    Raises ``OSError`` on missing/unreadable/truncated sources — the
    supervisor turns those into failures.  A truncated (rotated) source
    is recovered on reconnect by restarting from offset 0 and bumping
    ``generation`` so the session can discard the tap's uncommitted
    buffer instead of double-counting re-read records.
    """

    def __init__(self, path: Path, framing: str):
        self.path = Path(path)
        self.framing = framing
        self.offset = 0
        self.generation = 0
        self._line_buf = b""
        self._byte_buf = b""
        self._corrupt: Optional[str] = None

    def read(self) -> Tuple[List, int, List[Tuple[str, str]]]:
        """``(payloads, bytes_consumed, framing_errors)`` since last read."""
        if self._corrupt is not None:
            return [], 0, []
        size = os.stat(self.path).st_size
        if size < self.offset:
            raise OSError(f"{self.path}: source shrank from {self.offset} "
                          f"to {size} bytes (truncated/rotated)")
        if size == self.offset:
            return [], 0, []
        with open(self.path, "rb") as fh:
            fh.seek(self.offset)
            data = fh.read(MAX_READ)
        self.offset += len(data)
        if self.framing == "mrt":
            return self._frames(data)
        return self._lines(data)

    def _lines(self, data: bytes) -> Tuple[List, int, List]:
        buf = self._line_buf + data
        *lines, self._line_buf = buf.split(b"\n")
        payloads = [line.decode("utf-8", "replace").strip()
                    for line in lines]
        return [p for p in payloads if p], len(data), []

    def _frames(self, data: bytes) -> Tuple[List, int, List]:
        buf = self._byte_buf + data
        payloads: List[bytes] = []
        errors: List[Tuple[str, str]] = []
        while len(buf) >= MRT_HEADER.size:
            _, _, _, length = MRT_HEADER.unpack_from(buf)
            if length > MRT_MAX_FRAME:
                # a garbage header desynchronizes the whole remaining
                # stream: quarantine the evidence and freeze the tap —
                # the watchdog/breaker will walk it to dead
                self._corrupt = (f"unframeable MRT header "
                                 f"{buf[:MRT_HEADER.size].hex()} claims "
                                 f"{length} payload bytes")
                errors.append((self._corrupt, buf[:MRT_HEADER.size].hex()))
                buf = b""
                break
            if len(buf) < MRT_HEADER.size + length:
                break  # torn frame: wait for the rest
            payloads.append(buf[MRT_HEADER.size:MRT_HEADER.size + length])
            buf = buf[MRT_HEADER.size + length:]
        self._byte_buf = buf
        return payloads, len(data), errors

    def reconnect(self) -> None:
        """Re-establish the source: recover from rotation/corruption by
        restarting from offset 0 when the file shrank or was garbled."""
        try:
            size = os.stat(self.path).st_size
        except OSError:
            size = None
        if self._corrupt is not None or size is None or size < self.offset:
            self.offset = 0
            self._line_buf = b""
            self._byte_buf = b""
            self._corrupt = None
            self.generation += 1

    def flush_tail(self) -> List[Tuple[str, str]]:
        """Torn trailing data at a final pump, as quarantine entries."""
        torn = []
        if self._line_buf.strip():
            torn.append(("torn trailing line at EOF",
                         self._line_buf.decode("utf-8", "replace")))
            self._line_buf = b""
        if self._byte_buf:
            torn.append(("torn trailing MRT frame at EOF",
                         self._byte_buf.hex()))
            self._byte_buf = b""
        return torn


class TapSupervisor:
    """Fault-tolerant pull loop around one tap; see the module docstring."""

    def __init__(self, spec: TapSpec, *, config: TapConfig = TapConfig(),
                 quarantine_dir: Optional[Path] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.spec = spec
        self.config = config
        self.clock = clock
        self.adapter = spec.adapter()
        self.state = TapState.CONNECTING
        self.breaker = BreakerState.CLOSED
        self.queue = BoundedQueue(config.queue_capacity, config.queue_policy)
        self.last_error: Optional[str] = None
        self.frontier = float("-inf")
        self.records_ok = 0
        self.records_malformed = 0
        self.reconnects = 0
        self.breaker_opens = 0
        self.consecutive_failures = 0
        self.seq = 0
        self._reader = _SourceReader(spec.path, self.adapter.framing)
        self._open_until = float("-inf")
        self._last_progress: Optional[float] = None
        self._backoff = BackoffTimer(config.backoff, config.seed)
        self._pending: List = []
        quarantine = None
        if quarantine_dir is not None \
                and config.policy is ErrorPolicy.COLLECT:
            quarantine = Path(quarantine_dir) / f"{spec.name}.quarantine.jsonl"
        self.report = IngestReport(
            source=str(spec.path), policy=config.policy.value,
            quarantine_path=None if quarantine is None else str(quarantine))
        self._quarantine_flushed = 0
        self._quarantine_writer = None
        if quarantine is not None:
            from repro.obs.events import RotatingLineWriter, iter_event_files

            # seed SHA-dedupe from *every* rotation generation, so a
            # payload rotated out of the active sidecar still counts as
            # already-quarantined on re-ingest
            existing = []
            for file in iter_event_files(quarantine):
                existing.extend(line for line in file.read_text(
                    encoding="utf-8", errors="replace").splitlines() if line)
            self.report.seed_quarantine_digests(existing)
            self._quarantine_writer = RotatingLineWriter(quarantine)
        self._offset_path = (
            None if quarantine_dir is None
            else Path(quarantine_dir) / f"{spec.name}.offset.json")
        self._offset_written = -1

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def alive(self) -> bool:
        """Whether this tap still gates the session's day-commit fence."""
        return self.state not in (TapState.DEAD, TapState.FINISHED)

    @property
    def generation(self) -> int:
        return self._reader.generation

    # -- the poll loop -------------------------------------------------------

    def poll(self, *, final: bool = False) -> None:
        """One supervised read of the source; drained via :meth:`drain`."""
        if self.state is TapState.DEAD:
            return
        if self.state is TapState.FINISHED and not final:
            return
        now = self.clock()
        if self._last_progress is None:
            self._last_progress = now
        telem = telemetry.current()
        if self.breaker is BreakerState.OPEN:
            if now < self._open_until:
                return  # short-circuit: no source IO while cooling down
            self._transition_breaker(BreakerState.HALF_OPEN)
            self.state = TapState.RECONNECTING
            self.reconnects += 1
            chaos.maybe_kill(f"tap:reconnect:{self.reconnects}")
            chaos.maybe_kill(f"tap:{self.name}:reconnect:{self.reconnects}")
            telem.counter("tap.reconnects", tap=self.name).inc()
            self._reader.reconnect()

        if self._pending and self.queue.free == 0:
            # block-policy backpressure: don't read while saturated
            telem.gauge("tap.queue_depth", tap=self.name).set(len(self.queue))
            return

        try:
            payloads, consumed, framing_errors = self._reader.read()
        except OSError as exc:
            self._failure(now, f"source error: {exc}")
            return

        for reason, payload in framing_errors:
            self._malformed(reason, payload)
        parsed = self._decode(payloads)
        if final:
            for reason, payload in self._reader.flush_tail():
                self._malformed(reason, payload)

        if consumed > 0:
            self._success(now)
        elif self.breaker is BreakerState.HALF_OPEN:
            self._failure(now, "reconnect probe found no new data")
        elif not final and self.state is not TapState.CONNECTING \
                and now - self._last_progress > self.config.stall_timeout:
            self._failure(now, "stalled: no new data within "
                               f"{self.config.stall_timeout:g}s")

        self._enqueue(parsed)
        self._flush_quarantine()
        self._write_offset()
        if final and self.state is not TapState.DEAD:
            self.state = TapState.FINISHED
        telem.gauge("tap.queue_depth", tap=self.name).set(len(self.queue))

    def drain(self) -> List[Tuple[float, int, BGPUpdate]]:
        """Hand the session everything queued: ``(time, seq, update)``."""
        return self.queue.drain()

    # -- decode / quarantine -------------------------------------------------

    def _decode(self, payloads: List) -> List[Tuple[float, int, BGPUpdate]]:
        telem = telemetry.current()
        out: List[Tuple[float, int, BGPUpdate]] = []
        for payload in payloads:
            try:
                updates = self.adapter.decode(payload)
            except TapError as exc:
                if self.config.policy is ErrorPolicy.STRICT:
                    raise TapError(
                        f"tap {self.name} ({self.spec.path}): {exc}"
                        ) from None
                self._malformed(str(exc), payload if isinstance(payload, str)
                                else payload.hex())
                continue
            for msg in updates:
                shifted = msg.time - self.config.epoch
                if not math.isfinite(shifted) or shifted < 0:
                    self._malformed(
                        f"timestamp {msg.time!r} predates the tap epoch "
                        f"{self.config.epoch:g}", str(msg))
                    continue
                if shifted != msg.time:
                    msg = BGPUpdate(
                        time=shifted, peer_asn=msg.peer_asn,
                        action=msg.action, prefix=msg.prefix,
                        next_hop=msg.next_hop, as_path=msg.as_path,
                        communities=msg.communities)
                self.report.total += 1
                self.report.loaded += 1
                self.records_ok += 1
                self.frontier = max(self.frontier, shifted)
                out.append((shifted, self.seq, msg))
                self.seq += 1
        if out:
            telem.counter("tap.records", tap=self.name, outcome="ok"
                          ).inc(len(out))
        telem.gauge("tap.frontier_seconds", tap=self.name).set(
            self.frontier if math.isfinite(self.frontier) else 0.0)
        return out

    def _malformed(self, reason: str, payload: str) -> None:
        self.report.total += 1
        self.report.record_problem(f"{self.spec.path.name}:{self.seq}",
                                   reason, payload=payload)
        self.records_malformed += 1
        self.last_error = reason
        telem = telemetry.current()
        telem.counter("tap.records", tap=self.name,
                      outcome="malformed").inc()
        telem.event("tap.quarantined", severity="warning", tap=self.name,
                    reason=reason, payload=payload[:200])

    def _flush_quarantine(self) -> None:
        """Append newly quarantined payloads to the sidecar.

        The sidecar uses the same size-bounded generation rotation as
        ``.obs/events.jsonl`` (the old behaviour — an atomic rewrite of
        every payload ever seen — grew without bound and went quadratic
        on hostile feeds).  Dedupe keys on payload SHA-256 and was
        seeded from all generations, so rotation never re-admits an
        old payload.
        """
        if self._quarantine_writer is None \
                or len(self.report.quarantined) == self._quarantine_flushed:
            return
        for payload in self.report.quarantined[self._quarantine_flushed:]:
            self._quarantine_writer.append(payload)
        self._quarantine_flushed = len(self.report.quarantined)

    def _write_offset(self) -> None:
        """Persist the reader position as a forensic sidecar.

        ``.taps/NAME.offset.json`` records how far into the source this
        tap has read — the doctor's scrub cross-checks it against the
        source's current size (an offset beyond EOF means the source
        was truncated under a dead session).  It is deliberately *not*
        read back on resume: replay convergence comes from the commit
        log, not from trusting a sidecar.  Sidecar IO never fails a tap.
        """
        if self._offset_path is None \
                or self._reader.offset == self._offset_written:
            return
        try:
            size = os.stat(self.spec.path).st_size
        except OSError:
            size = None
        try:
            from repro.runtime.atomic import atomic_write_text
            atomic_write_text(self._offset_path, json.dumps({
                "version": 1, "tap": self.name,
                "offset": self._reader.offset,
                "generation": self._reader.generation,
                "source": str(self.spec.path),
                "source_bytes": size}, sort_keys=True))
            self._offset_written = self._reader.offset
        except OSError:  # pragma: no cover - disk trouble must not kill taps
            pass

    # -- queue ---------------------------------------------------------------

    def _enqueue(self, parsed: List) -> None:
        items = self._pending + parsed
        self._pending = []
        if not items:
            return
        dropped_before = self.queue.dropped
        rejected = self.queue.push(items)
        if rejected:
            self._pending = rejected
        evicted = self.queue.dropped - dropped_before
        if evicted:
            telemetry.current().counter(
                "tap.records", tap=self.name, outcome="evicted").inc(evicted)

    # -- failure / recovery lifecycle ----------------------------------------

    def _success(self, now: float) -> None:
        self._last_progress = now
        self.consecutive_failures = 0
        if self.breaker is not BreakerState.CLOSED:
            self._transition_breaker(BreakerState.CLOSED)
            self._backoff.reset()
            telemetry.current().event(
                "tap.recovered", tap=self.name,
                reconnects=self.reconnects)
        self.state = TapState.LIVE
        self.last_error = None

    def _failure(self, now: float, reason: str) -> None:
        self.last_error = reason
        self.consecutive_failures += 1
        self._last_progress = now  # re-arm the watchdog window
        if self.breaker is BreakerState.HALF_OPEN:
            self._escalate(now)
        elif self.breaker is BreakerState.CLOSED:
            self.state = TapState.STALLED
            if self.consecutive_failures >= self.config.breaker_threshold:
                self._escalate(now)

    def _escalate(self, now: float) -> None:
        """Open (or re-open) the breaker, or give up entirely."""
        if self._backoff.attempt >= self.config.max_reconnects:
            self.state = TapState.DEAD
            self._transition_breaker(BreakerState.OPEN)
            telem = telemetry.current()
            telem.counter("tap.dead", tap=self.name).inc()
            telem.event("tap.dead", severity="error", tap=self.name,
                        reason=self.last_error,
                        reconnects=self.reconnects)
            return
        self._open_until = now + self._backoff.next_delay()
        self._transition_breaker(BreakerState.OPEN)
        self.state = TapState.RECONNECTING

    def _transition_breaker(self, to: BreakerState) -> None:
        if to is self.breaker:
            return
        if to is BreakerState.OPEN:
            self.breaker_opens += 1
        telem = telemetry.current()
        telem.counter("tap.breaker", tap=self.name, to=to.value).inc()
        telem.event(
            "tap.breaker",
            severity="warning" if to is BreakerState.OPEN else "info",
            tap=self.name, from_state=self.breaker.value,
            to_state=to.value, last_error=self.last_error)
        self.breaker = to

    # -- reporting -----------------------------------------------------------

    def status(self) -> dict:
        """Serializable per-tap status for the stream report."""
        return {
            "format": self.spec.format,
            "source": str(self.spec.path),
            "state": self.state.value,
            "breaker": self.breaker.value,
            "records_ok": self.records_ok,
            "records_malformed": self.records_malformed,
            "records_evicted": self.queue.dropped,
            "reconnects": self.reconnects,
            "breaker_opens": self.breaker_opens,
            "consecutive_failures": self.consecutive_failures,
            "frontier": (None if not math.isfinite(self.frontier)
                         else self.frontier),
            "queue_depth": len(self.queue),
            "offset": self._reader.offset,
            "generation": self._reader.generation,
            "quarantine_path": self.report.quarantine_path,
            "quarantine_duplicates": self.report.quarantine_duplicates,
            "last_error": self.last_error,
        }
