"""Fault-tolerant live-feed taps: external BGP feeds → the commit log.

``repro.taps`` adapts foreign control-plane formats (MRT-style framed
dumps, RIPE RIS-style JSON lines, exabgp-style line streams) into the
streaming engine's commit log, under full supervision — stall watchdogs,
deterministic reconnect backoff, per-tap circuit breakers, bounded
ingest queues, and SHA-256-deduped malformed-record quarantine.  See
DESIGN.md §11 for the feed fault model.
"""

from repro.taps.adapters import (
    ADAPTERS,
    ExaBGPAdapter,
    MRTAdapter,
    RISLinesAdapter,
    TapAdapter,
    TapSpec,
    parse_tap_spec,
    write_feed,
)
from repro.taps.session import TapPumpReport, TapSession
from repro.taps.supervisor import (
    BackpressurePolicy,
    BoundedQueue,
    BreakerState,
    TapConfig,
    TapState,
    TapSupervisor,
)

__all__ = [
    "ADAPTERS",
    "BackpressurePolicy",
    "BoundedQueue",
    "BreakerState",
    "ExaBGPAdapter",
    "MRTAdapter",
    "RISLinesAdapter",
    "TapAdapter",
    "TapConfig",
    "TapPumpReport",
    "TapSession",
    "TapSpec",
    "TapState",
    "TapSupervisor",
    "parse_tap_spec",
    "write_feed",
]
