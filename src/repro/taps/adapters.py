"""Feed-format adapters: external control-plane records → :class:`BGPUpdate`.

Three adapter families cover the wire formats a blackholing observatory
realistically meets (ROADMAP item 2, ARTEMIS-style):

``ris``
    RIPE RIS-live style JSON lines: one ``UPDATE`` object per line with
    ``announcements`` (next-hop groups of prefixes) and ``withdrawals``.
``exabgp``
    exabgp-style JSON lines as emitted by ``encoder json``: the update
    nested under ``neighbor.message.update`` with ``announce``/``withdraw``
    keyed by address family.
``mrt``
    MRT-style framed dumps: each record carries the RFC 6396 common
    header (timestamp ``u32``, type ``u16``, subtype ``u16``, length
    ``u32``, big-endian) followed by ``length`` payload bytes.  The
    payload here is the canonical JSON update record rather than packed
    BGP attributes — the framing (and its failure modes: torn frames,
    absurd lengths, garbage headers) is what the robustness layer
    exercises; attribute unpacking would add nothing to the repro.

A feed line/frame may describe several prefixes, so :meth:`decode`
returns a *list* of updates.  Every malformed input raises
:class:`~repro.errors.TapError` with the reason — the supervisor turns
those into quarantine entries, never a crash.

Each adapter also implements :meth:`encode`, used by the fixture
generators so tests and CI drive the exact same parse paths real feeds
would, without any network.
"""

from __future__ import annotations

import json
import math
import struct
from pathlib import Path
from typing import Dict, List, Union

from repro.bgp.community import Community
from repro.bgp.message import BGPUpdate, UpdateAction
from repro.errors import ReproError, TapError
from repro.net.ip import IPv4Address, IPv4Prefix

#: RFC 6396 common header: timestamp u32, type u16, subtype u16, length u32
MRT_HEADER = struct.Struct(">IHHI")
#: BGP4MP / MESSAGE_AS4 — the type/subtype stamped on encoded frames
MRT_TYPE_BGP4MP = 16
MRT_SUBTYPE_MESSAGE_AS4 = 4
#: frames claiming more payload than this are treated as framing garbage
MRT_MAX_FRAME = 1 << 20


def _finite_time(value) -> float:
    time = float(value)
    if not math.isfinite(time):
        raise TapError(f"non-finite timestamp {value!r}")
    return time


def _communities(raw) -> frozenset:
    if raw is None:
        return frozenset()
    out = set()
    for item in raw:
        if isinstance(item, str):
            out.add(Community.parse(item))
        else:
            asn, value = item
            out.add(Community(int(asn), int(value)))
    return frozenset(out)


class TapAdapter:
    """One feed format: how to split it into records and decode each."""

    #: registry key, e.g. ``"ris"``
    format: str
    #: ``"lines"`` (newline-delimited text) or ``"mrt"`` (framed binary)
    framing: str = "lines"

    def decode(self, payload: Union[str, bytes]) -> List[BGPUpdate]:
        """Parse one record; raises :class:`TapError` when malformed."""
        raise NotImplementedError

    def encode(self, msg: BGPUpdate) -> Union[str, bytes]:
        """Render one update in this feed's wire format (fixtures)."""
        raise NotImplementedError


class RISLinesAdapter(TapAdapter):
    """RIPE RIS-live style JSON lines."""

    format = "ris"

    def decode(self, payload: str) -> List[BGPUpdate]:
        try:
            raw = json.loads(payload)
        except ValueError as exc:
            raise TapError(f"not JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise TapError(f"record is not an object: {type(raw).__name__}")
        kind = str(raw.get("type", "UPDATE")).upper()
        if kind != "UPDATE":
            raise TapError(f"unsupported RIS message type {kind!r}")
        try:
            time = _finite_time(raw["timestamp"])
            peer_asn = int(raw["peer_asn"])
            path = tuple(int(asn) for asn in raw.get("path", ()))
            communities = _communities(raw.get("community"))
            updates: List[BGPUpdate] = []
            for group in raw.get("announcements", ()):
                next_hop = IPv4Address(group["next_hop"])
                for prefix in group["prefixes"]:
                    updates.append(BGPUpdate(
                        time=time, peer_asn=peer_asn,
                        action=UpdateAction.ANNOUNCE,
                        prefix=IPv4Prefix(prefix), next_hop=next_hop,
                        as_path=path, communities=communities))
            for prefix in raw.get("withdrawals", ()):
                updates.append(BGPUpdate(
                    time=time, peer_asn=peer_asn,
                    action=UpdateAction.WITHDRAW,
                    prefix=IPv4Prefix(prefix)))
        except TapError:
            raise
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise TapError(f"bad RIS record: {exc}") from None
        if not updates:
            raise TapError("RIS UPDATE carries no announcements or "
                           "withdrawals")
        return updates

    def encode(self, msg: BGPUpdate) -> str:
        record: Dict[str, object] = {
            "type": "UPDATE",
            "timestamp": msg.time,
            "peer_asn": str(msg.peer_asn),
            "path": list(msg.as_path),
            "community": sorted([c.asn, c.value] for c in msg.communities),
        }
        if msg.is_announce:
            record["announcements"] = [{"next_hop": str(msg.next_hop),
                                        "prefixes": [str(msg.prefix)]}]
            record["withdrawals"] = []
        else:
            record["announcements"] = []
            record["withdrawals"] = [str(msg.prefix)]
        return json.dumps(record)


class ExaBGPAdapter(TapAdapter):
    """exabgp-style JSON lines (``encoder json`` shape)."""

    format = "exabgp"

    def decode(self, payload: str) -> List[BGPUpdate]:
        try:
            raw = json.loads(payload)
        except ValueError as exc:
            raise TapError(f"not JSON: {exc}") from None
        if not isinstance(raw, dict):
            raise TapError(f"record is not an object: {type(raw).__name__}")
        if str(raw.get("type", "update")) != "update":
            raise TapError(f"unsupported exabgp message type "
                           f"{raw.get('type')!r}")
        try:
            time = _finite_time(raw["time"])
            neighbor = raw["neighbor"]
            peer_asn = int(neighbor["asn"]["peer"])
            update = neighbor["message"]["update"]
            attribute = update.get("attribute", {})
            path = tuple(int(asn) for asn in attribute.get("as-path", ()))
            communities = _communities(attribute.get("community"))
            updates: List[BGPUpdate] = []
            announce = update.get("announce", {}).get("ipv4 unicast", {})
            for next_hop, routes in announce.items():
                hop = IPv4Address(next_hop)
                for route in routes:
                    updates.append(BGPUpdate(
                        time=time, peer_asn=peer_asn,
                        action=UpdateAction.ANNOUNCE,
                        prefix=IPv4Prefix(route["nlri"]), next_hop=hop,
                        as_path=path, communities=communities))
            withdraw = update.get("withdraw", {}).get("ipv4 unicast", ())
            for route in withdraw:
                updates.append(BGPUpdate(
                    time=time, peer_asn=peer_asn,
                    action=UpdateAction.WITHDRAW,
                    prefix=IPv4Prefix(route["nlri"])))
        except TapError:
            raise
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise TapError(f"bad exabgp record: {exc}") from None
        if not updates:
            raise TapError("exabgp update announces and withdraws nothing")
        return updates

    def encode(self, msg: BGPUpdate) -> str:
        update: Dict[str, object] = {
            "attribute": {
                "as-path": list(msg.as_path),
                "community": sorted([c.asn, c.value]
                                    for c in msg.communities),
            },
        }
        if msg.is_announce:
            update["announce"] = {"ipv4 unicast": {
                str(msg.next_hop): [{"nlri": str(msg.prefix)}]}}
        else:
            update["withdraw"] = {"ipv4 unicast": [
                {"nlri": str(msg.prefix)}]}
        return json.dumps({
            "exabgp": "4.2.0",
            "time": msg.time,
            "type": "update",
            "neighbor": {"asn": {"peer": msg.peer_asn},
                         "message": {"update": update}},
        })


class MRTAdapter(TapAdapter):
    """MRT-style framed records (RFC 6396 common header)."""

    format = "mrt"
    framing = "mrt"

    def decode(self, payload: bytes) -> List[BGPUpdate]:
        try:
            raw = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise TapError(f"undecodable MRT payload: {exc}") from None
        try:
            from repro.corpus.control import update_from_json

            return [update_from_json(raw)]
        except (KeyError, TypeError, ValueError, ReproError) as exc:
            raise TapError(f"bad MRT record: {exc}") from None

    def encode(self, msg: BGPUpdate) -> bytes:
        from repro.corpus.control import update_to_json

        payload = json.dumps(update_to_json(msg)).encode("utf-8")
        header = MRT_HEADER.pack(int(max(0.0, msg.time)), MRT_TYPE_BGP4MP,
                                 MRT_SUBTYPE_MESSAGE_AS4, len(payload))
        return header + payload


#: format name → adapter class; ``parse_tap_spec`` resolves against this
ADAPTERS: Dict[str, type] = {
    cls.format: cls for cls in (MRTAdapter, RISLinesAdapter, ExaBGPAdapter)
}


class TapSpec:
    """One parsed ``--tap`` argument: name, format, and source path."""

    def __init__(self, name: str, format: str, path: Union[str, Path]):
        if format not in ADAPTERS:
            raise TapError(f"unknown tap format {format!r}; expected one "
                           f"of {sorted(ADAPTERS)}")
        self.name = name
        self.format = format
        self.path = Path(path)

    def adapter(self) -> TapAdapter:
        return ADAPTERS[self.format]()

    def __repr__(self) -> str:
        return f"TapSpec({self.name}={self.format}:{self.path})"


def parse_tap_spec(spec: str) -> TapSpec:
    """Parse ``[NAME=]FORMAT:PATH`` (e.g. ``upstream=ris:feed.jsonl``).

    The name defaults to the source file's stem; it keys the tap's
    status, telemetry labels, and quarantine sidecar.
    """
    body = spec
    name = None
    if "=" in spec.split(":", 1)[0]:
        name, _, body = spec.partition("=")
        name = name.strip()
        if not name:
            raise TapError(f"empty tap name in spec {spec!r}")
    format, sep, path = body.partition(":")
    if not sep or not path:
        raise TapError(f"bad tap spec {spec!r}; expected [NAME=]FORMAT:PATH")
    return TapSpec(name or Path(path).stem, format.strip(), path)


def write_feed(path: Union[str, Path], messages, fmt: str) -> Path:
    """Write a feed fixture holding ``messages`` in format ``fmt``.

    Line formats get one record per line; ``mrt`` a concatenation of
    framed records.  Used by the committed CI fixtures and the tap test
    suites so every adapter's parse path is driven by its own encoder.
    """
    if fmt not in ADAPTERS:
        raise TapError(f"unknown tap format {fmt!r}")
    adapter = ADAPTERS[fmt]()
    path = Path(path)
    if adapter.framing == "mrt":
        with open(path, "wb") as fh:
            for msg in messages:
                fh.write(adapter.encode(msg))
    else:
        with open(path, "w", encoding="utf-8") as fh:
            for msg in messages:
                fh.write(adapter.encode(msg) + "\n")
    return path
