"""The tap session: N supervised feeds → one streaming commit log.

A :class:`TapSession` owns a *tap corpus* directory and writes into it the
exact artifact layout ``generate --keep-segments`` produces — committed
per-day segments under ``.segments/`` behind the checkpoint journal, plus
``platform.json`` and finalized corpus files — so ``repro watch`` (the PR
5 :class:`StreamEngine`) consumes foreign feeds exactly like kept day
segments, and a batch ``repro analyze`` of the same directory yields the
same fingerprints at every watermark.  Convergence is therefore *by
construction*: taps only ever translate feeds into the commit log; the
streaming engine's existing equivalence guarantees do the rest.

Commit rule: day ``d`` (always the next uncommitted day) is committed
once every tap that still gates the fence — not dead, not finished — has
its frontier past ``(d+1)·DAY``.  Messages from all taps are merged in
deterministic ``(time, tap, sequence)`` order; the data-plane segment is
committed empty (control-plane feeds carry no sampled packets — data
analyses recompute over whatever other segments exist).  When a tap dies
permanently it simply stops gating the fence: surviving taps keep
advancing the reducers and the session reports itself degraded.

Replay and crash recovery share one mechanism: committed days are
authoritative, so records that arrive for an already-committed day —
from a watcher restart re-reading sources from offset 0, or from a dead
feed replayed later — are counted and dropped at the fence, never
double-ingested.  A rotated/truncated source bumps its reader
generation, which discards that tap's *uncommitted* buffer before the
re-read records land, so rewinds cannot double-count either.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Set, Union

import numpy as np

from repro import telemetry
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    META_FILE,
    file_sha256,
    write_manifest,
)
from repro.dataplane.packet import PACKET_DTYPE
from repro.errors import TapError
from repro.runtime.atomic import atomic_writer, remove_stale_tmp
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.generate import (
    FINALIZE_KEY,
    JOURNAL_FILE,
    SEGMENT_DIR,
    _segment_key,
    _segment_name,
    _write_segment_file,
)
from repro.scenario.config import DAY
from repro.taps.adapters import TapSpec, parse_tap_spec
from repro.taps.supervisor import TapConfig, TapSupervisor

#: where per-tap quarantine sidecars live inside the tap corpus
TAPS_DIR = ".taps"


@dataclass
class TapPumpReport:
    """What one :meth:`TapSession.pump` pass did."""

    days_committed: int = 0
    records_buffered: int = 0
    records_late: int = 0
    finalized: bool = False


class TapSession:
    """N supervised taps feeding one tap corpus; see the module docstring."""

    def __init__(self, corpus_dir: Union[str, Path],
                 supervisors: List[TapSupervisor], *,
                 route_server_asn: int = 64500,
                 sampling_rate: int = 10_000):
        self.corpus_dir = Path(corpus_dir)
        self.supervisors = supervisors
        self.route_server_asn = int(route_server_asn)
        self.sampling_rate = int(sampling_rate)
        self._journal = CheckpointJournal.load(self.corpus_dir / JOURNAL_FILE)
        self.committed_days = self._count_committed(self._journal)
        self.records_late = 0
        self._buffers: Dict[int, List[tuple]] = {}
        self._last_generation = [sup.generation for sup in supervisors]
        self._observed_peers: Set[int] = set()
        meta_path = self.corpus_dir / META_FILE
        if meta_path.exists():
            try:
                meta = json.loads(meta_path.read_text())
                self._observed_peers.update(
                    int(asn) for asn in meta.get("peer_asns", ()))
            except (OSError, ValueError):
                pass

    # -- construction --------------------------------------------------------

    @classmethod
    def open(cls, corpus_dir: Union[str, Path],
             specs: Sequence[Union[str, TapSpec]], *,
             config: TapConfig = TapConfig(),
             route_server_asn: int = 64500,
             sampling_rate: int = 10_000,
             clock: Callable[[], float] = time.monotonic) -> "TapSession":
        """Bootstrap (or resume) a tap corpus and supervise ``specs``.

        Creates the directory, the ``.segments/`` scratch area, the
        journal (header ``command: tap``), and the platform sidecar when
        absent.  Refuses a directory whose journal belongs to ``repro
        generate`` — taps must not splice foreign feeds into a
        synthetic corpus's commit log.
        """
        if not specs:
            raise TapError("a tap session needs at least one tap spec")
        parsed = [spec if isinstance(spec, TapSpec) else parse_tap_spec(spec)
                  for spec in specs]
        names = [spec.name for spec in parsed]
        if len(set(names)) != len(names):
            raise TapError(f"duplicate tap names in {names}; disambiguate "
                           "with NAME=FORMAT:PATH")
        out = Path(corpus_dir)
        out.mkdir(parents=True, exist_ok=True)
        (out / SEGMENT_DIR).mkdir(exist_ok=True)
        taps_dir = out / TAPS_DIR
        taps_dir.mkdir(exist_ok=True)
        remove_stale_tmp(out)
        remove_stale_tmp(out / SEGMENT_DIR)
        journal = CheckpointJournal.load(out / JOURNAL_FILE)
        if journal.header is None:
            journal.start({"command": "tap", "version": 1})
        elif journal.header.get("command") != "tap":
            raise TapError(
                f"{out}: journal belongs to "
                f"{journal.header.get('command')!r}; refusing to tap "
                "external feeds into a generated corpus's commit log "
                "(point --tap at its own directory)")
        supervisors = [TapSupervisor(spec, config=config,
                                     quarantine_dir=taps_dir, clock=clock)
                       for spec in parsed]
        session = cls(out, supervisors,
                      route_server_asn=route_server_asn,
                      sampling_rate=sampling_rate)
        if not (out / META_FILE).exists():
            session._write_platform()
        return session

    # -- status --------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True once any tap died permanently this session."""
        return any(sup.state.value == "dead" for sup in self.supervisors)

    @property
    def all_inactive(self) -> bool:
        return not any(sup.alive for sup in self.supervisors)

    def status(self) -> Dict[str, dict]:
        """Per-tap status dicts, plus the commit-fence lag."""
        fence = self.committed_days * DAY
        out = {}
        for sup in self.supervisors:
            entry = sup.status()
            frontier = entry["frontier"]
            entry["lag_seconds"] = (None if frontier is None
                                    else max(0.0, fence - frontier))
            out[sup.name] = entry
        return out

    # -- the pump ------------------------------------------------------------

    def pump(self, *, final: bool = False) -> TapPumpReport:
        """Poll every tap, merge, and commit every completed day.

        ``final=True`` is the ``--once`` semantics: drain sources to
        EOF, commit *everything* buffered (including the partial tail
        day), and finalize the corpus files.  Without it, only days every
        fence-gating tap has moved past are committed — and the corpus
        files are still refreshed after each batch of commits, so a
        batch ``analyze`` of the directory is always consistent with the
        committed frontier.
        """
        telem = telemetry.current()
        report = TapPumpReport()
        with telem.span("tap.pump", taps=len(self.supervisors),
                        final=final) as sp:
            for index, sup in enumerate(self.supervisors):
                sup.poll(final=final)
                if sup.generation != self._last_generation[index]:
                    # source rewound (rotation/corruption recovery):
                    # drop its uncommitted buffer, the re-read replaces it
                    self._last_generation[index] = sup.generation
                    for day in list(self._buffers):
                        self._buffers[day] = [
                            item for item in self._buffers[day]
                            if item[1] != index]
                for when, seq, msg in sup.drain():
                    day = int(when // DAY)
                    if day < self.committed_days:
                        self.records_late += 1
                        telem.counter("tap.records", tap=sup.name,
                                      outcome="late").inc()
                        continue
                    self._buffers.setdefault(day, []).append(
                        (when, index, seq, msg))
                    report.records_buffered += 1
            report.days_committed = self._commit_ready(final)
            if (report.days_committed or final) and self.committed_days:
                self._finalize()
                report.finalized = True
            fence = self.committed_days * DAY
            for sup in self.supervisors:
                lag = (0.0 if not np.isfinite(sup.frontier)
                       else max(0.0, fence - sup.frontier))
                telem.gauge("tap.lag_seconds", tap=sup.name).set(lag)
            sp.attrs["days_committed"] = report.days_committed
            sp.attrs["late"] = self.records_late
        return report

    # -- committing ----------------------------------------------------------

    @staticmethod
    def _count_committed(journal: CheckpointJournal) -> int:
        day = 0
        while (journal.committed(_segment_key("control", day)) is not None
               and journal.committed(_segment_key("data", day)) is not None):
            day += 1
        return day

    def _commit_ready(self, final: bool) -> int:
        committed = 0
        while True:
            day = self.committed_days
            if not self._committable(day, final):
                break
            self._commit_day(day)
            committed += 1
        return committed

    def _committable(self, day: int, final: bool) -> bool:
        max_buffered = max(self._buffers, default=-1)
        if final or self.all_inactive:
            # nothing more will arrive: flush everything buffered
            return max_buffered >= day
        gating = [sup for sup in self.supervisors if sup.alive]
        fence = (day + 1) * DAY
        return all(sup.frontier >= fence for sup in gating)

    def _commit_day(self, day: int) -> None:
        telem = telemetry.current()
        entries = sorted(self._buffers.pop(day, []),
                         key=lambda item: item[:3])
        messages = [item[3] for item in entries]
        self._observed_peers.update(msg.peer_asn for msg in messages)
        seg_dir = self.corpus_dir / SEGMENT_DIR
        with telem.span("tap.commit", day=day, records=len(messages)):
            path = _write_segment_file(seg_dir, "control", day, messages)
            self._journal.commit(_segment_key("control", day),
                                 sha256=file_sha256(path),
                                 bytes=path.stat().st_size,
                                 records=len(messages))
            empty = np.zeros(0, dtype=PACKET_DTYPE)
            path = _write_segment_file(seg_dir, "data", day, empty)
            self._journal.commit(_segment_key("data", day),
                                 sha256=file_sha256(path),
                                 bytes=path.stat().st_size,
                                 records=0)
        self.committed_days = day + 1
        telem.counter("tap.days_committed").inc()

    # -- finalize ------------------------------------------------------------

    def _write_platform(self) -> None:
        meta = {
            "peer_asns": sorted(self._observed_peers),
            "route_server_asn": self.route_server_asn,
            "sampling_rate": self.sampling_rate,
            "peeringdb": [],
            "duration_days": self.committed_days,
            "tap_session": {
                sup.name: f"{sup.spec.format}:{sup.spec.path}"
                for sup in self.supervisors
            },
        }
        with atomic_writer(self.corpus_dir / META_FILE) as fh:
            fh.write(json.dumps(meta, indent=2))

    def _finalize(self) -> None:
        """Rebuild the corpus files + manifest from the committed segments
        (the same refinalize contract ``repro advance`` keeps), so batch
        ``analyze``/``validate`` see a complete corpus directory."""
        out = self.corpus_dir
        seg_dir = out / SEGMENT_DIR
        control_messages = 0
        with atomic_writer(out / CONTROL_FILE, mode="wb") as fh:
            for day in range(self.committed_days):
                data = (seg_dir / _segment_name("control", day)).read_bytes()
                control_messages += data.count(b"\n")
                fh.write(data)
        arrays = []
        for day in range(self.committed_days):
            with np.load(seg_dir / _segment_name("data", day)) as archive:
                arrays.append(archive["packets"])
        packets = (np.concatenate(arrays) if arrays
                   else np.zeros(0, dtype=PACKET_DTYPE))
        with atomic_writer(out / DATA_FILE, mode="wb") as fh:
            np.savez_compressed(fh, packets=packets,
                                sampling_rate=self.sampling_rate)
        self._write_platform()
        counts = {"control_messages": control_messages,
                  "data_packets": int(len(packets))}
        write_manifest(out, counts=counts)
        self._journal.commit(
            FINALIZE_KEY,
            control_messages=counts["control_messages"],
            data_packets=counts["data_packets"],
            control_sha256=file_sha256(out / CONTROL_FILE),
            data_sha256=file_sha256(out / DATA_FILE),
        )
