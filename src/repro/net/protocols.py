"""IP transport protocol numbers used throughout the corpus and analysis."""

from __future__ import annotations

from enum import IntEnum


class IPProtocol(IntEnum):
    """IANA-assigned protocol numbers for the protocols the paper reports.

    ``OTHER`` stands in for the long tail the paper folds into its 0.1%
    "other" bucket (GRE, ESP, ...).
    """

    ICMP = 1
    TCP = 6
    UDP = 17
    OTHER = 255

    @classmethod
    def from_number(cls, number: int) -> "IPProtocol":
        """Map an arbitrary protocol number onto the analysis buckets."""
        try:
            return cls(number)
        except ValueError:
            return cls.OTHER

    @property
    def label(self) -> str:
        return self.name
