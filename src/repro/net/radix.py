"""A binary radix (Patricia-style) trie for IPv4 longest-prefix matching.

This is the FIB/RIB backbone: route lookup, exact match, covered-prefix
enumeration, and removal. Nodes branch one bit at a time which keeps the
implementation simple and is plenty fast for the tens of thousands of
routes a blackholing study touches.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, Tuple, TypeVar

from repro.net.ip import IPv4Address, IPv4Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional[_Node[V]]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False


def _bit(address: int, depth: int) -> int:
    """The bit of ``address`` at ``depth`` (0 = most significant)."""
    return (address >> (31 - depth)) & 1


class RadixTree(Generic[V]):
    """Map from :class:`IPv4Prefix` to arbitrary values with LPM lookup.

    >>> tree = RadixTree()
    >>> tree.insert(IPv4Prefix("10.0.0.0/8"), "coarse")
    >>> tree.insert(IPv4Prefix("10.1.0.0/16"), "fine")
    >>> tree.lookup(IPv4Address("10.1.2.3"))
    (IPv4Prefix('10.1.0.0/16'), 'fine')
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def insert(self, prefix: IPv4Prefix, value: V) -> None:
        """Insert or replace the value stored at ``prefix``."""
        node = self._root
        network = prefix.network_int
        for depth in range(prefix.length):
            bit = _bit(network, depth)
            child = node.children[bit]
            if child is None:
                child = _Node()
                node.children[bit] = child
            node = child
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def get(self, prefix: IPv4Prefix) -> Optional[V]:
        """Exact-match lookup; ``None`` when the prefix is absent."""
        node = self._find_node(prefix)
        if node is None or not node.has_value:
            return None
        return node.value

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        node = self._find_node(prefix)
        return node is not None and node.has_value

    def lookup(self, address: IPv4Address | int) -> Optional[Tuple[IPv4Prefix, V]]:
        """Longest-prefix match for ``address``.

        Returns the ``(prefix, value)`` of the most specific covering entry,
        or ``None`` when nothing covers the address.
        """
        addr = int(address)
        node = self._root
        best: Optional[Tuple[int, V]] = None
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for depth in range(32):
            node = node.children[_bit(addr, depth)]  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                best = (depth + 1, node.value)  # type: ignore[arg-type]
        if best is None:
            return None
        length, value = best
        return IPv4Prefix(addr, length), value

    def lookup_all(self, address: IPv4Address | int) -> list[Tuple[IPv4Prefix, V]]:
        """All covering entries for ``address``, least specific first."""
        addr = int(address)
        node = self._root
        found: list[Tuple[IPv4Prefix, V]] = []
        if node.has_value:
            found.append((IPv4Prefix(addr, 0), node.value))  # type: ignore[arg-type]
        for depth in range(32):
            node = node.children[_bit(addr, depth)]  # type: ignore[assignment]
            if node is None:
                break
            if node.has_value:
                found.append((IPv4Prefix(addr, depth + 1), node.value))  # type: ignore[arg-type]
        return found

    def remove(self, prefix: IPv4Prefix) -> bool:
        """Delete the entry at ``prefix``; returns whether it existed.

        Empty branches are pruned so long-running simulations do not leak
        nodes as blackholes come and go.
        """
        path: list[Tuple[_Node[V], int]] = []
        node = self._root
        network = prefix.network_int
        for depth in range(prefix.length):
            bit = _bit(network, depth)
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if not node.has_value:
            return False
        node.has_value = False
        node.value = None
        self._size -= 1
        # Prune now-empty leaf chain.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child is None:
                break
            if child.has_value or child.children[0] is not None or child.children[1] is not None:
                break
            parent.children[bit] = None
        return True

    def covered(self, prefix: IPv4Prefix) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Iterate entries that are equal to or more specific than ``prefix``."""
        node = self._find_node(prefix)
        if node is None:
            return
        yield from self._walk(node, prefix.network_int, prefix.length)

    def items(self) -> Iterator[Tuple[IPv4Prefix, V]]:
        """Iterate every stored ``(prefix, value)`` in bit order."""
        yield from self._walk(self._root, 0, 0)

    def keys(self) -> Iterator[IPv4Prefix]:
        for prefix, _ in self.items():
            yield prefix

    def values(self) -> Iterator[V]:
        for _, value in self.items():
            yield value

    def clear(self) -> None:
        self._root = _Node()
        self._size = 0

    def _find_node(self, prefix: IPv4Prefix) -> Optional[_Node[V]]:
        node = self._root
        network = prefix.network_int
        for depth in range(prefix.length):
            node = node.children[_bit(network, depth)]  # type: ignore[assignment]
            if node is None:
                return None
        return node

    def _walk(self, node: _Node[V], network: int, depth: int) -> Iterator[Tuple[IPv4Prefix, V]]:
        if node.has_value:
            yield IPv4Prefix(network, depth), node.value  # type: ignore[arg-type]
        if depth == 32:
            return
        left = node.children[0]
        if left is not None:
            yield from self._walk(left, network, depth + 1)
        right = node.children[1]
        if right is not None:
            yield from self._walk(right, network | (1 << (31 - depth)), depth + 1)
