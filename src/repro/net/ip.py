"""Int-backed IPv4 address and prefix types.

The whole library treats an IPv4 address as an unsigned 32-bit integer and a
prefix as a ``(network_int, prefix_length)`` pair. These wrapper classes give
those integers a parsed/validated, hashable, ordered, nicely-printed face
while staying cheap to convert back to raw ints for numpy bulk storage.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Iterator, Union

from repro.errors import AddressError

_MAX_IPV4 = 0xFFFFFFFF
_DOTTED_QUAD_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")

IPv4Like = Union["IPv4Address", int, str]


@total_ordering
class IPv4Address:
    """A single IPv4 address.

    Accepts dotted-quad strings, non-negative ints below 2**32, or another
    :class:`IPv4Address`.

    >>> IPv4Address("192.0.2.1") == IPv4Address(0xC0000201)
    True
    """

    __slots__ = ("_value",)

    def __init__(self, value: IPv4Like):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_IPV4:
                raise AddressError(f"IPv4 int out of range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as an unsigned 32-bit integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        v = self._value
        return f"{v >> 24}.{(v >> 16) & 0xFF}.{(v >> 8) & 0xFF}.{v & 0xFF}"

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)

    def __sub__(self, other: Union[int, "IPv4Address"]) -> Union["IPv4Address", int]:
        if isinstance(other, IPv4Address):
            return self._value - other._value
        return IPv4Address(self._value - other)

    def to_prefix(self) -> "IPv4Prefix":
        """The /32 prefix covering exactly this address."""
        return IPv4Prefix(self._value, 32)


def _parse_dotted_quad(text: str) -> int:
    match = _DOTTED_QUAD_RE.match(text.strip())
    if match is None:
        raise AddressError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for group in match.groups():
        octet = int(group)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _mask(length: int) -> int:
    return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4 if length else 0


@total_ordering
class IPv4Prefix:
    """An IPv4 network prefix in CIDR form.

    The network address is canonicalised (host bits cleared); construction
    from a string with host bits set raises :class:`AddressError` to surface
    sloppy inputs early, while int construction clears them silently because
    bulk generators routinely hand in arbitrary base addresses.

    >>> IPv4Prefix("10.0.0.0/8").contains(IPv4Address("10.1.2.3"))
    True
    """

    __slots__ = ("_network", "_length")

    def __init__(self, network: Union[IPv4Like], length: int | None = None):
        if isinstance(network, IPv4Prefix):
            self._network, self._length = network._network, network._length
            return
        if isinstance(network, str) and "/" in network:
            if length is not None:
                raise AddressError("length given twice (in string and argument)")
            addr_text, _, len_text = network.partition("/")
            try:
                length = int(len_text)
            except ValueError:
                raise AddressError(f"bad prefix length in {network!r}") from None
            base = _parse_dotted_quad(addr_text)
            if not 0 <= length <= 32:
                raise AddressError(f"prefix length out of range: {length}")
            if base & ~_mask(length) & _MAX_IPV4:
                raise AddressError(f"host bits set in {network!r}")
            self._network, self._length = base, length
            return
        if length is None:
            raise AddressError("prefix length required")
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        base = int(IPv4Address(network))
        self._network = base & _mask(length)
        self._length = length

    @property
    def network(self) -> IPv4Address:
        """The (canonicalised) network address."""
        return IPv4Address(self._network)

    @property
    def network_int(self) -> int:
        return self._network

    @property
    def length(self) -> int:
        """The prefix length in bits (0–32)."""
        return self._length

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self._length)

    @property
    def broadcast_int(self) -> int:
        return self._network | (~_mask(self._length) & _MAX_IPV4)

    def contains(self, item: Union[IPv4Like, "IPv4Prefix"]) -> bool:
        """Whether an address (or a whole prefix) falls inside this prefix."""
        if isinstance(item, IPv4Prefix):
            return (
                item._length >= self._length
                and (item._network & _mask(self._length)) == self._network
            )
        return (int(IPv4Address(item)) & _mask(self._length)) == self._network

    def __contains__(self, item: Union[IPv4Like, "IPv4Prefix"]) -> bool:
        return self.contains(item)

    def hosts(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (including network/broadcast).

        Intended for short prefixes used in scenarios (/24 and longer); a /8
        would yield 16M items, so callers should slice responsibly.
        """
        for offset in range(self.num_addresses):
            yield IPv4Address(self._network + offset)

    def address_at(self, offset: int) -> IPv4Address:
        """The address at ``offset`` within the prefix, bounds-checked."""
        if not 0 <= offset < self.num_addresses:
            raise AddressError(f"offset {offset} outside {self}")
        return IPv4Address(self._network + offset)

    def subnets(self, new_length: int) -> Iterator["IPv4Prefix"]:
        """Iterate the subdivisions of this prefix at ``new_length`` bits."""
        if new_length < self._length or new_length > 32:
            raise AddressError(
                f"cannot subnet /{self._length} into /{new_length}"
            )
        step = 1 << (32 - new_length)
        for base in range(self._network, self.broadcast_int + 1, step):
            yield IPv4Prefix(base, new_length)

    def supernet(self, new_length: int) -> "IPv4Prefix":
        """The covering prefix of this one at a shorter length."""
        if new_length > self._length or new_length < 0:
            raise AddressError(
                f"cannot supernet /{self._length} to /{new_length}"
            )
        return IPv4Prefix(self._network, new_length)

    def __str__(self) -> str:
        return f"{self.network}/{self._length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return self._network == other._network and self._length == other._length

    def __lt__(self, other: "IPv4Prefix") -> bool:
        if not isinstance(other, IPv4Prefix):
            return NotImplemented
        return (self._network, self._length) < (other._network, other._length)

    def __hash__(self) -> int:
        return hash((self._network, self._length))
