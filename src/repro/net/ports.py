"""Transport-port registries.

The centrepiece is the list of known UDP amplification protocols from the
paper's Table 3 footnote; the fine-grained-filtering analysis (Fig. 14) and
the per-event protocol counting (Table 3) both key on this registry. A small
set of well-known service ports is also provided for the legitimate-traffic
generators and the server/client host classification.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import FrozenSet, Mapping

from repro.net.protocols import IPProtocol


@dataclass(frozen=True)
class AmplificationProtocol:
    """One UDP amplification vector: its reflector source port and a rough
    bandwidth amplification factor used by the attack generator."""

    name: str
    port: int
    amplification_factor: float

    def __str__(self) -> str:
        return f"{self.name}/{self.port}"


#: The known amplification protocols of Table 3. ``Fragmentation/0`` models
#: non-initial IP fragments which carry no transport header and are exported
#: with port 0, exactly as the paper's footnote lists them.
AMPLIFICATION_PROTOCOLS: tuple[AmplificationProtocol, ...] = (
    AmplificationProtocol("QOTD", 17, 140.3),
    AmplificationProtocol("CharGEN", 19, 358.8),
    AmplificationProtocol("DNS", 53, 54.0),
    AmplificationProtocol("TFTP", 69, 60.0),
    AmplificationProtocol("NTP", 123, 556.9),
    AmplificationProtocol("NetBIOS", 138, 3.8),
    AmplificationProtocol("SNMPv2", 161, 6.3),
    AmplificationProtocol("cLDAP", 389, 56.0),
    AmplificationProtocol("RIPv1", 520, 131.2),
    AmplificationProtocol("SSDP", 1900, 30.8),
    AmplificationProtocol("Game-3478", 3478, 4.6),
    AmplificationProtocol("Game-3659", 3659, 5.0),
    AmplificationProtocol("SIP", 5060, 9.0),
    AmplificationProtocol("BitTorrent", 6881, 3.8),
    AmplificationProtocol("Memcached", 11211, 10000.0),
    AmplificationProtocol("Game-27005", 27005, 5.5),
    AmplificationProtocol("Game-28960", 28960, 7.7),
    AmplificationProtocol("Fragmentation", 0, 1.0),
)

#: Source ports of the amplification protocols, as used by the per-event
#: protocol counting and the fine-grained-filter emulation.
AMPLIFICATION_PORTS: FrozenSet[int] = frozenset(p.port for p in AMPLIFICATION_PROTOCOLS)

_BY_PORT: Mapping[int, AmplificationProtocol] = {p.port: p for p in AMPLIFICATION_PROTOCOLS}


def amplification_port_numbers() -> FrozenSet[int]:
    """The a-priori known UDP amplification source ports (Table 3 list)."""
    return AMPLIFICATION_PORTS


def is_amplification_port(port: int, protocol: IPProtocol | int = IPProtocol.UDP) -> bool:
    """Whether a (protocol, source port) pair matches a known amplification
    vector. Only UDP ports count; the same numeric port over TCP does not."""
    return int(protocol) == int(IPProtocol.UDP) and port in AMPLIFICATION_PORTS


def amplification_protocol_for_port(port: int) -> AmplificationProtocol | None:
    """The registry entry for a UDP source port, or ``None``."""
    return _BY_PORT.get(port)


class WellKnownPort(IntEnum):
    """Service ports used by the legitimate-traffic generators."""

    DNS = 53
    HTTP = 80
    NTP = 123
    HTTPS = 443
    SMTP = 25
    IMAPS = 993
    SSH = 22
    RDP = 3389
    MYSQL = 3306
    QUIC = 443
    MINECRAFT = 25565
    TEAMSPEAK = 9987
    OPENVPN = 1194


#: Ephemeral source-port range clients draw from (RFC 6056 default range).
EPHEMERAL_PORT_RANGE: tuple[int, int] = (49152, 65535)

#: Highest valid transport port, used for RadViz normalisation (Fig. 16).
MAX_PORT = 65535
