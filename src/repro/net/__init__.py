"""Network-layer primitives: IPv4 addresses and prefixes, MAC addresses,
longest-prefix matching, and protocol/port registries.

These are implemented from scratch (int-backed, hashable, total ordering)
rather than on top of :mod:`ipaddress` so the rest of the library controls
exactly the semantics it needs — in particular cheap bulk conversion to and
from :class:`numpy.uint32` arrays for the data-plane corpus.
"""

from repro.net.ip import IPv4Address, IPv4Prefix
from repro.net.mac import MACAddress
from repro.net.radix import RadixTree
from repro.net.ports import (
    AMPLIFICATION_PORTS,
    AMPLIFICATION_PROTOCOLS,
    AmplificationProtocol,
    WellKnownPort,
    amplification_port_numbers,
    is_amplification_port,
)
from repro.net.protocols import IPProtocol

__all__ = [
    "IPv4Address",
    "IPv4Prefix",
    "MACAddress",
    "RadixTree",
    "IPProtocol",
    "AmplificationProtocol",
    "AMPLIFICATION_PROTOCOLS",
    "AMPLIFICATION_PORTS",
    "WellKnownPort",
    "amplification_port_numbers",
    "is_amplification_port",
]
