"""48-bit MAC addresses.

The IXP data set identifies member routers — and critically the *blackhole*
next hop — by MAC address, so MACs are first-class values in the corpus.
"""

from __future__ import annotations

import re
from functools import total_ordering
from typing import Union

from repro.errors import AddressError

_MAX_MAC = 0xFFFFFFFFFFFF
_MAC_RE = re.compile(r"^([0-9a-fA-F]{2})([:\-]?)([0-9a-fA-F]{2})\2([0-9a-fA-F]{2})\2"
                     r"([0-9a-fA-F]{2})\2([0-9a-fA-F]{2})\2([0-9a-fA-F]{2})$")

MACLike = Union["MACAddress", int, str]


@total_ordering
class MACAddress:
    """A 48-bit MAC address, accepted as colon/dash-separated hex or int.

    >>> str(MACAddress("aa:bb:cc:00:11:22"))
    'aa:bb:cc:00:11:22'
    """

    __slots__ = ("_value",)

    def __init__(self, value: MACLike):
        if isinstance(value, MACAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_MAC:
                raise AddressError(f"MAC int out of range: {value!r}")
            self._value = value
        elif isinstance(value, str):
            match = _MAC_RE.match(value.strip())
            if match is None:
                raise AddressError(f"not a MAC address: {value!r}")
            groups = match.groups()
            octets = [groups[0]] + list(groups[2:])
            self._value = int("".join(octets), 16)
        else:
            raise AddressError(f"cannot build MACAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_locally_administered(self) -> bool:
        """Whether the U/L bit of the first octet is set."""
        return bool((self._value >> 40) & 0x02)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MACAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other: "MACAddress") -> bool:
        if not isinstance(other, MACAddress):
            return NotImplemented
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(self._value)
