"""Content-addressed analysis result cache.

Re-running ``repro analyze`` on a corpus that has not changed is pure
waste at production scale, so finished analyses can be skipped via a
small on-disk cache.  Entries are *content-addressed*: the key is the
SHA-256 of

* the **corpus digest** — a digest over the per-file checksums recorded
  in the corpus's ``manifest.json`` (so the corpus bytes themselves are
  not re-hashed on every run),
* the **config hash** of the analyze invocation (ingest policy,
  ``host_min_days``, merge Δ — anything that changes results), and
* the analysis name.

A cache hit therefore proves "this exact analysis ran on this exact
corpus under this exact configuration".  Only ``ok``/``degraded``
outcomes are cached — failures are recomputed, matching the resume
semantics of the checkpoint journal.  Like journal resume, a hit
restores the outcome's status/fingerprint but not the in-memory value.

Every entry records the corpus digest it was keyed on, which is what
lets ``repro validate`` detect a *stale* cache: a cache directory whose
entries reference a digest the current manifest no longer matches is an
error, not a pass (see :func:`stale_entries`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.core.study import AnalysisOutcome, AnalysisStatus
from repro.corpus.manifest import MANIFEST_FILE
from repro import telemetry

#: subdirectory holding the per-analysis entries (room for other kinds)
ENTRY_DIR = "analysis"
#: default cache location inside a corpus directory (dot-prefixed, so
#: manifests and corpus checksums never include it)
DEFAULT_CACHE_DIRNAME = ".cache"

ENTRY_VERSION = 1


def corpus_digest(corpus_dir: str | Path) -> Optional[str]:
    """Digest of the corpus *content* as recorded by its manifest.

    Hashes the sorted ``(file name, sha256)`` pairs of ``manifest.json``
    — the manifest's own provenance block (timestamps, git revision) is
    excluded, so regenerating an identical corpus keys identically.
    Returns ``None`` when there is no usable manifest: an unmanifested
    corpus cannot be safely cached against.
    """
    path = Path(corpus_dir) / MANIFEST_FILE
    try:
        manifest = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    files = manifest.get("files")
    if not isinstance(files, dict) or not files:
        return None
    return digest_of_files(files)


def digest_of_files(files: dict) -> str:
    """The corpus digest for a manifest's ``files`` section."""
    h = hashlib.sha256()
    for name in sorted(files):
        meta = files[name] if isinstance(files[name], dict) else {}
        h.update(name.encode("utf-8") + b"\0")
        h.update(str(meta.get("sha256")).encode("utf-8") + b"\n")
    return h.hexdigest()


class ResultCache:
    """One cache directory of content-addressed analysis outcomes.

    ``max_bytes`` bounds the entry directory: once a ``put`` pushes the
    total size of entries past the budget, the least-recently-used
    entries (by mtime — ``get`` touches entries it serves) are evicted
    until the cache fits again.  Unbounded by default, matching the
    previous behaviour.
    """

    def __init__(self, root: str | Path, *,
                 max_bytes: Optional[int] = None):
        self.root = Path(root)
        self.max_bytes = max_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r})"

    @classmethod
    def for_corpus(cls, corpus_dir: str | Path, *,
                   max_bytes: Optional[int] = None) -> "ResultCache":
        """The default cache location for a corpus directory."""
        return cls(Path(corpus_dir) / DEFAULT_CACHE_DIRNAME,
                   max_bytes=max_bytes)

    # -- keying ---------------------------------------------------------------

    @staticmethod
    def key(corpus: str, config_hash: Optional[str], name: str) -> str:
        payload = f"{corpus}\0{config_hash}\0{name}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]

    def _entry_path(self, key: str) -> Path:
        return self.root / ENTRY_DIR / f"{key}.json"

    # -- lookup / store -------------------------------------------------------

    def get(self, corpus: str, config_hash: Optional[str],
            name: str) -> Optional[AnalysisOutcome]:
        """The cached outcome for this (corpus, config, analysis), if any.

        An unreadable or mismatching entry is treated as a miss — the
        analysis simply recomputes; ``repro validate`` is the tool that
        *reports* cache corruption.
        """
        path = self._entry_path(self.key(corpus, config_hash, name))
        try:
            entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (entry.get("version") != ENTRY_VERSION
                or entry.get("corpus_digest") != corpus
                or entry.get("config_hash") != config_hash
                or entry.get("name") != name):
            return None
        raw = entry.get("outcome") or {}
        try:
            outcome = AnalysisOutcome(
                name=name, status=AnalysisStatus(raw["status"]),
                value=None, error=raw.get("error"),
                error_type=raw.get("error_type"),
                seconds=float(raw.get("seconds", 0.0)),
                attempts=int(raw.get("attempts", 1)),
                timeouts=int(raw.get("timeouts", 0)),
                value_digest=raw.get("value_digest"),
                cached=True,
            )
        except (KeyError, ValueError):
            return None
        if outcome.status is AnalysisStatus.FAILED:
            return None  # never serve failures from cache
        try:
            os.utime(path)  # LRU touch: a served entry is a live entry
        except OSError:
            pass
        telemetry.current().counter("cache.hits", name=name).inc()
        return outcome

    def put(self, corpus: str, config_hash: Optional[str],
            outcome: AnalysisOutcome) -> Optional[Path]:
        """Store a terminal outcome; failures are deliberately not cached."""
        if outcome.status is AnalysisStatus.FAILED:
            return None
        from repro.runtime.atomic import atomic_write_text

        path = self._entry_path(
            self.key(corpus, config_hash, outcome.name))
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": ENTRY_VERSION,
            "name": outcome.name,
            "corpus_digest": corpus,
            "config_hash": config_hash,
            "created_unix": time.time(),
            "outcome": {
                "status": outcome.status.value,
                "error": outcome.error,
                "error_type": outcome.error_type,
                "seconds": outcome.seconds,
                "attempts": outcome.attempts,
                "timeouts": outcome.timeouts,
                "value_digest": outcome.value_digest,
            },
        }
        atomic_write_text(path, json.dumps(entry, indent=2))
        telemetry.current().counter("cache.stores", name=outcome.name).inc()
        self._enforce_budget(keep=path)
        return path

    def _enforce_budget(self, keep: Optional[Path] = None) -> int:
        """Evict least-recently-used entries until the cache fits.

        The entry just written (``keep``) is never evicted — a budget
        smaller than one entry must not turn every ``put`` into a no-op.
        Returns the number of entries evicted.
        """
        if self.max_bytes is None:
            return 0
        entry_dir = self.root / ENTRY_DIR
        if not entry_dir.is_dir():
            return 0
        candidates = []
        total = 0
        for path in entry_dir.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            total += stat.st_size
            candidates.append((stat.st_mtime, stat.st_size, path))
        evicted = 0
        for _, size, path in sorted(candidates):
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
            telemetry.current().counter("cache.evictions",
                                        reason="size").inc()
        return evicted

    # -- maintenance / validation --------------------------------------------

    def entries(self) -> Iterator[Tuple[Path, dict]]:
        """Every readable entry in the cache (path, parsed JSON)."""
        entry_dir = self.root / ENTRY_DIR
        if not entry_dir.is_dir():
            return
        for path in sorted(entry_dir.glob("*.json")):
            try:
                entry = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(entry, dict):
                yield path, entry

    def stale_entries(self, corpus: str) -> List[Tuple[Path, dict]]:
        """Entries keyed to a corpus digest other than ``corpus``.

        These are results of a corpus that no longer exists in this
        directory — serving them would silently report another corpus's
        numbers, so ``repro validate`` turns any of them into an error.
        """
        return [(path, entry) for path, entry in self.entries()
                if entry.get("corpus_digest") != corpus]
