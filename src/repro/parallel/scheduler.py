"""The parallel analysis scheduler: a dependency-aware process pool.

``AnalysisPipeline.run_all(jobs=N)`` delegates here.  The scheduler
extends the PR 3 supervisor from one-child-at-a-time to a pool of up to
``jobs`` concurrent forked children while keeping every crash-safety
guarantee: per-attempt wall-clock timeouts, bounded retries with
deterministic backoff, journaled terminal outcomes for ``--resume``, and
typed-failure isolation.

Execution model::

    parent: ingest corpora once ──► warm shared intermediates ──► fork
                                                                   │
        ┌────────────┬─────────────┬────────────┐                  ▼
     worker 1     worker 2      worker 3     worker 4       (≤ jobs children)
     fig7 …       table4 …      fig2 …       fig5 …
        └────────────┴──────┬──────┴────────────┘
                            ▼
            deterministic merge into study order

* **Dependency-aware ordering.**  Analyses that share ingested corpora
  and intermediates (Δ-merged events, pre-RTBH classification, host
  study) run *after* a single shared warm-up in the parent, so children
  inherit those caches via copy-on-write instead of recomputing them 16
  times.  Analyses whose results other analyses recompute internally
  (``fig7_top_sources`` inside ``fig8_org_types``, ``sec54_protocol_mix``
  inside ``table3_amplification``) are scheduled first, and heavy
  analyses are dispatched before cheap ones (longest-processing-time
  first) to minimise the makespan.
* **Deterministic merging.**  Outcomes complete in any order but are
  merged into the canonical study order; retry backoff jitter is seeded
  per analysis name (not from a shared sequential RNG), so schedules do
  not depend on completion order.
* **Determinism.**  A ``--jobs N`` run produces byte-identical analysis
  values to the serial reference path — the golden-equivalence suite
  holds fingerprints (:mod:`repro.parallel.golden`) from both paths
  equal, and workers always fingerprint their values before the pickle
  pipe so equivalence stays checkable.
* **Caching.**  With a :class:`~repro.parallel.cache.ResultCache`,
  analyses whose (corpus digest, config hash, name) key already has a
  finished entry are served from cache and never dispatched.

On platforms without ``fork`` the scheduler degrades to the serial
supervised runner.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from time import monotonic, perf_counter
from typing import Dict, List, Optional, Sequence

from repro import telemetry
from repro.core.study import AnalysisOutcome, AnalysisStatus, StudyReport
from repro.errors import AnalysisError, SupervisorError
from repro.parallel.cache import ResultCache
from repro.runtime.checkpoint import CheckpointJournal
from repro.runtime.supervisor import (
    ANALYSIS_KEY,
    SupervisorPolicy,
    _analysis_fn,
    _child_main,
    _fork_context,
    _outcome_from_entry,
    ingest_warnings,
    journal_outcome,
    run_supervised,
)

#: relative cost estimates (longest-processing-time-first dispatch);
#: anything absent weighs 1 — exact values only shape the schedule,
#: never the results
ANALYSIS_WEIGHTS = {
    "fig2_time_offset": 6,
    "fig8_org_types": 5,      # recomputes fig7's source scan internally
    "fig7_top_sources": 5,
    "fig4_targeted_visibility": 4,
    "fig10_merge_sweep": 3,
    "fig5_drop_by_length": 3,
    "fig6_drop_cdfs": 3,
    "fig19_use_cases": 2,
    "fig14_filterable": 2,
    "fig18_collateral": 2,
    "table3_amplification": 2,  # recomputes sec54's protocol mix
    "sec54_protocol_mix": 2,
}

#: analyses another analysis recomputes internally: the provider is
#: dispatched no later than its dependents so a shared intermediate is
#: never the last thing keeping a worker busy
ANALYSIS_PROVIDES = {
    "fig7_top_sources": ("fig8_org_types",),
    "sec54_protocol_mix": ("table3_amplification",),
}


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``/``0`` means all CPUs."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise SupervisorError(f"jobs must be >= 0: {jobs}")
    return jobs


def schedule_order(names: Sequence[str]) -> List[str]:
    """The dispatch order: heavy first, providers before dependents,
    study order as the deterministic tie-break."""
    index = {name: i for i, name in enumerate(names)}
    weight = {}
    for name in names:
        w = ANALYSIS_WEIGHTS.get(name, 1)
        for dependent in ANALYSIS_PROVIDES.get(name, ()):
            if dependent in index:
                w = max(w, ANALYSIS_WEIGHTS.get(dependent, 1) + 1)
        weight[name] = w
    return sorted(names, key=lambda n: (-weight[n], index[n]))


@dataclass
class _Task:
    """One analysis working its way to a terminal outcome."""

    name: str
    fn: object
    rng: random.Random
    attempts: int = 0
    timeouts: int = 0
    retry_at: float = 0.0
    proc: Optional[object] = None
    conn: Optional[object] = None
    started: float = 0.0
    deadline: Optional[float] = None
    last_error: Optional[str] = None
    last_error_type: Optional[str] = None
    last_seconds: float = 0.0

    def clear_child(self) -> None:
        self.proc = None
        self.conn = None
        self.deadline = None


@dataclass
class _Pool:
    """Mutable scheduler state shared by the dispatch helpers."""

    ctx: object
    policy: SupervisorPolicy
    degraded: bool
    fingerprint: bool
    strict: bool = False
    journal: Optional[CheckpointJournal] = None
    cache: Optional[ResultCache] = None
    corpus_digest: Optional[str] = None
    config_hash: Optional[str] = None
    telem: object = None
    queue: List[_Task] = field(default_factory=list)
    waiting: List[_Task] = field(default_factory=list)
    running: Dict[object, _Task] = field(default_factory=dict)
    outcomes: Dict[str, AnalysisOutcome] = field(default_factory=dict)
    stop_dispatch: bool = False


def run_parallel(
    pipeline,
    *,
    analyses: Optional[Sequence[str]] = None,
    policy: Optional[SupervisorPolicy] = None,
    jobs: Optional[int] = None,
    strict: bool = False,
    journal: Optional[CheckpointJournal] = None,
    cache: Optional[ResultCache] = None,
    corpus_digest: Optional[str] = None,
    config_hash: Optional[str] = None,
    fingerprint: bool = True,
) -> StudyReport:
    """Run the study's analyses on a pool of ``jobs`` forked workers.

    Semantics match :func:`repro.runtime.supervisor.run_supervised`
    exactly (same outcome classification, journal format, and strict
    behaviour) — only the execution is concurrent.  ``cache`` skips
    analyses whose ``(corpus_digest, config_hash, name)`` key holds a
    finished entry and stores fresh ok/degraded outcomes back.  With
    ``strict=True`` the first failed terminal outcome stops new
    dispatches, lets the in-flight children finish (and be journaled),
    then raises :class:`~repro.errors.AnalysisError` for the failed
    analysis earliest in study order.
    """
    from repro.core.pipeline import ANALYSIS_NAMES

    policy = policy or SupervisorPolicy()
    jobs = resolve_jobs(jobs)
    names = list(analyses if analyses is not None else ANALYSIS_NAMES)
    ctx = _fork_context()
    if ctx is None:  # pragma: no cover - non-POSIX platforms
        return run_supervised(pipeline, analyses=names, policy=policy,
                              strict=strict, journal=journal)

    telem = telemetry.current()
    report = StudyReport()
    report.warnings.extend(ingest_warnings(pipeline))
    degraded = pipeline.degraded_inputs

    with telem.span("analyze.warm_caches"):
        warm = getattr(pipeline, "warm_shared_caches", None)
        if warm is not None:
            warm()

    use_cache = cache is not None and corpus_digest is not None
    pool = _Pool(ctx=ctx, policy=policy, degraded=degraded,
                 fingerprint=fingerprint, strict=strict, journal=journal,
                 cache=cache if use_cache else None,
                 corpus_digest=corpus_digest, config_hash=config_hash,
                 telem=telem)
    for name in schedule_order(names):
        outcome = _resolved_outcome(name, journal, pool.cache,
                                    corpus_digest, config_hash, telem)
        if outcome is not None:
            pool.outcomes[name] = outcome
            continue
        pool.queue.append(_Task(
            name=name, fn=_analysis_fn(pipeline, name),
            rng=random.Random(f"{policy.seed}:{name}")))

    with telem.span("analyze.parallel", jobs=jobs,
                    queued=len(pool.queue)) as sp:
        _drive(pool, jobs, telem)
        sp.attrs["completed"] = len(pool.outcomes)

    for name in names:
        outcome = pool.outcomes.get(name)
        if outcome is None:
            continue  # strict stop dropped it before it ran
        report.outcomes.append(outcome)
    if telem.enabled:
        report.telemetry = telem.metrics_snapshot()
    if strict:
        for name in names:
            outcome = pool.outcomes.get(name)
            if outcome is not None \
                    and outcome.status is AnalysisStatus.FAILED:
                raise AnalysisError(
                    f"{name} failed under supervision after "
                    f"{outcome.attempts} attempt(s): "
                    f"{outcome.error_type}: {outcome.error}")
    return report


def _resolved_outcome(name: str, journal: Optional[CheckpointJournal],
                      cache: Optional[ResultCache], corpus_digest,
                      config_hash, telem) -> Optional[AnalysisOutcome]:
    """A terminal outcome available without running anything: the journal
    first (authoritative for this run), then the content-addressed cache."""
    if journal is not None:
        entry = journal.committed(ANALYSIS_KEY + name)
        if entry is not None:
            outcome = _outcome_from_entry(entry)
            outcome._resumed = True
            telem.counter("supervisor.resumed").inc()
            return outcome
    if cache is not None:
        outcome = cache.get(corpus_digest, config_hash, name)
        if outcome is not None:
            return outcome
    return None


def _drive(pool: _Pool, jobs: int, telem) -> None:
    """The dispatch loop: fill slots, wait for events, classify attempts."""
    policy = pool.policy
    while pool.queue or pool.waiting or pool.running:
        if pool.stop_dispatch:
            # strict stop: drop everything not yet terminal.  Dropped
            # analyses are never journaled, so ``--resume`` re-runs
            # them — exactly what serial strict leaves behind when it
            # raises mid-study.
            pool.queue.clear()
            pool.waiting.clear()
            if not pool.running:
                break
        now = monotonic()
        due = [t for t in pool.waiting if t.retry_at <= now]
        for task in due:
            pool.waiting.remove(task)
            pool.queue.insert(0, task)  # retries go to the head
        while pool.queue and len(pool.running) < jobs \
                and not pool.stop_dispatch:
            _start(pool, pool.queue.pop(0), telem)
        if pool.running:
            _await_events(pool, telem)
        elif pool.waiting:
            # nothing in flight: sleep out the earliest backoff (the
            # injectable policy.sleep keeps tests instantaneous), then
            # force the task due — the wait has been served either way
            task = min(pool.waiting, key=lambda t: t.retry_at)
            policy.sleep(max(0.0, task.retry_at - monotonic()))
            task.retry_at = 0.0


def _start(pool: _Pool, task: _Task, telem) -> None:
    parent_conn, child_conn = pool.ctx.Pipe(duplex=False)
    proc = pool.ctx.Process(
        target=_child_main,
        args=(child_conn, task.name, task.fn, pool.degraded,
              pool.fingerprint),
        daemon=True)
    task.started = perf_counter()
    proc.start()
    child_conn.close()
    task.proc = proc
    task.conn = parent_conn
    task.deadline = (None if pool.policy.timeout is None
                     else monotonic() + pool.policy.timeout)
    pool.running[parent_conn] = task
    telem.counter("parallel.dispatched", name=task.name).inc()
    telem.gauge("parallel.workers").set(len(pool.running))


def _await_events(pool: _Pool, telem) -> None:
    """Block until a child reports, dies, or a deadline/backoff expires."""
    now = monotonic()
    horizons = [t.deadline - now for t in pool.running.values()
                if t.deadline is not None]
    horizons += [t.retry_at - now for t in pool.waiting]
    timeout = max(0.0, min(horizons)) if horizons else None
    ready = _wait_connections(list(pool.running), timeout)
    for conn in ready:
        task = pool.running.pop(conn)
        telem.gauge("parallel.workers").set(len(pool.running))
        _attempt_done(pool, task, _read_attempt(task), telem)
    now = monotonic()
    expired = [t for t in pool.running.values()
               if t.deadline is not None and now >= t.deadline]
    for task in expired:
        pool.running.pop(task.conn)
        telem.gauge("parallel.workers").set(len(pool.running))
        _attempt_done(pool, task, _kill_timed_out(pool, task), telem)


def _read_attempt(task: _Task) -> dict:
    """Classify a readable (or EOF'd) child exactly as the supervisor does."""
    try:
        msg = task.conn.recv()
    except (EOFError, OSError):
        msg = None
    task.proc.join()
    task.conn.close()
    seconds = perf_counter() - task.started
    if msg is None:
        exitcode = task.proc.exitcode or 0
        if exitcode < 0:
            return {"event": "killed", "retryable": True,
                    "error": f"child killed by signal {-exitcode}",
                    "error_type": "ChildKilled", "seconds": seconds}
        return {"event": "crashed", "retryable": False,
                "error": f"child exited with code {exitcode} "
                         "without reporting a result",
                "error_type": "ChildCrashed", "seconds": seconds}
    if msg["kind"] == "raised":
        return {"event": "raised", "error": msg["error"],
                "error_type": msg["error_type"],
                "retryable": msg["retryable"], "seconds": seconds}
    return {"event": "outcome", "outcome": msg["outcome"],
            "seconds": seconds}


def _kill_timed_out(pool: _Pool, task: _Task) -> dict:
    if task.proc.is_alive():
        task.proc.kill()
    task.proc.join()
    task.conn.close()
    return {"event": "timeout", "retryable": True,
            "error": f"timed out after {pool.policy.timeout:g}s "
                     "and was killed",
            "error_type": "AnalysisTimeout",
            "seconds": perf_counter() - task.started}


def _attempt_done(pool: _Pool, task: _Task, attempt: dict, telem) -> None:
    """Mirror the serial supervisor's per-attempt state machine."""
    task.clear_child()
    task.attempts += 1
    if attempt["event"] == "outcome":
        outcome = attempt["outcome"]
        outcome.attempts = task.attempts
        outcome.timeouts = task.timeouts
        _terminal(pool, task, outcome)
        return
    if attempt["event"] == "timeout":
        task.timeouts += 1
        telem.counter("supervisor.timeouts", name=task.name).inc()
    elif attempt["event"] == "killed":
        telem.counter("supervisor.kills", name=task.name).inc()
    task.last_error = attempt["error"]
    task.last_error_type = attempt["error_type"]
    task.last_seconds = attempt["seconds"]
    if not attempt["retryable"] \
            or task.attempts > pool.policy.retry.max_retries:
        _terminal(pool, task, AnalysisOutcome(
            name=task.name, status=AnalysisStatus.FAILED,
            error=task.last_error, error_type=task.last_error_type,
            seconds=task.last_seconds, attempts=task.attempts,
            timeouts=task.timeouts))
        return
    delay = pool.policy.retry.delay(task.attempts - 1, task.rng)
    telem.counter("supervisor.retries", name=task.name).inc()
    task.retry_at = monotonic() + delay
    pool.waiting.append(task)


def _terminal(pool: _Pool, task: _Task, outcome: AnalysisOutcome) -> None:
    """Record a terminal outcome the moment it exists.

    Journal commits and cache stores happen here — not after the pool
    drains — so a run killed mid-flight resumes with every finished
    analysis already committed, exactly like the serial supervisor.
    The parent is the only journal/cache writer.
    """
    pool.outcomes[task.name] = outcome
    pool.telem.counter("pipeline.analyses",
                       status=outcome.status.value).inc()
    pool.telem.histogram("pipeline.analysis_seconds",
                         name=outcome.name).observe(outcome.seconds)
    if pool.journal is not None:
        journal_outcome(pool.journal, outcome)
    if pool.cache is not None:
        pool.cache.put(pool.corpus_digest, pool.config_hash, outcome)
    if pool.strict and outcome.status is AnalysisStatus.FAILED:
        # stop dispatching new work; in-flight children drain and are
        # journaled, then run_parallel raises for the earliest failure
        pool.stop_dispatch = True
