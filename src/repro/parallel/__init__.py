"""Parallel execution: process-pool scheduling, caching, equivalence.

The package holds the three pieces PR 4 adds on top of the crash-safe
runtime:

* :mod:`repro.parallel.scheduler` — a dependency-aware process pool that
  runs up to ``--jobs N`` analyses concurrently with the PR 3
  supervisor's timeout/retry/journal semantics intact,
* :mod:`repro.parallel.cache` — a content-addressed result cache keyed
  on (corpus digest, config hash, analysis name),
* :mod:`repro.parallel.golden` — canonical value fingerprints proving a
  parallel run byte-equivalent to the serial reference path.
"""

from repro.parallel.cache import ResultCache, corpus_digest
from repro.parallel.golden import FINGERPRINT_VERSION, value_fingerprint
from repro.parallel.scheduler import resolve_jobs, run_parallel, schedule_order

__all__ = [
    "FINGERPRINT_VERSION",
    "ResultCache",
    "corpus_digest",
    "resolve_jobs",
    "run_parallel",
    "schedule_order",
    "value_fingerprint",
]
