"""Golden equivalence: canonical fingerprints of analysis values.

Parallel execution is only worth shipping if its output is provably the
same as the serial reference path.  Analysis values are rich python
objects (dataclasses of numpy arrays, dicts keyed by enums, nested
result types), so "the same" needs a canonical byte encoding:
:func:`value_fingerprint` walks a value and feeds a type-tagged,
order-stabilised serialization into SHA-256.  Two values fingerprint
identically iff their public state is identical — floats are encoded via
``float.hex`` (exact, no repr rounding), arrays via dtype + shape + raw
bytes, and unordered containers are sorted by the fingerprint of their
elements so iteration order cannot leak in.

The golden-equivalence suite computes fingerprints on the serial path
and compares them with the fingerprints the parallel scheduler's workers
computed in their child processes *before* the values crossed a pickle
pipe; the committed fixtures in ``tests/parallel/golden/`` then pin the
digests across PRs so silent drift in any analysis is caught.

Private attributes (``_``-prefixed) are deliberately excluded: lazy
memoisation caches may or may not be populated depending on which code
path ran, and that must not change a value's identity.
"""

from __future__ import annotations

import dataclasses
import hashlib
from enum import Enum
from typing import Any

import numpy as np

#: bump when the encoding changes incompatibly (invalidates fixtures)
FINGERPRINT_VERSION = 1


def value_fingerprint(value: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    digest = hashlib.sha256()
    digest.update(f"v{FINGERPRINT_VERSION}:".encode())
    _feed(digest, value, seen=set())
    return digest.hexdigest()


def _sub_digest(value: Any, seen: set) -> bytes:
    digest = hashlib.sha256()
    _feed(digest, value, seen)
    return digest.digest()


def _feed(h, value: Any, seen: set) -> None:
    """Feed one value into ``h`` with type tags so e.g. 1 != 1.0 != "1"."""
    if value is None:
        h.update(b"N;")
    elif isinstance(value, bool):  # before int: bool is an int subclass
        h.update(b"b1;" if value else b"b0;")
    elif isinstance(value, (int, np.integer)):
        h.update(b"i" + str(int(value)).encode() + b";")
    elif isinstance(value, (float, np.floating)):
        h.update(b"f" + float(value).hex().encode() + b";")
    elif isinstance(value, str):
        h.update(b"s" + value.encode("utf-8", "surrogatepass") + b";")
    elif isinstance(value, bytes):
        h.update(b"y" + value + b";")
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        h.update(b"a" + arr.dtype.str.encode() + str(arr.shape).encode())
        if arr.dtype == object:
            for item in arr.ravel().tolist():
                _feed(h, item, seen)
        else:
            h.update(arr.tobytes())
        h.update(b";")
    elif isinstance(value, Enum):
        h.update(b"e" + type(value).__name__.encode())
        _feed(h, value.value, seen)
    else:
        _feed_composite(h, value, seen)


def _feed_composite(h, value: Any, seen: set) -> None:
    """Containers and objects: recurse, guarding against cycles."""
    marker = id(value)
    if marker in seen:
        h.update(b"C;")  # cycle: identity already on the path
        return
    seen.add(marker)
    try:
        if isinstance(value, (list, tuple)):
            h.update(b"l" if isinstance(value, list) else b"t")
            for item in value:
                _feed(h, item, seen)
            h.update(b";")
        elif isinstance(value, dict):
            h.update(b"m")
            entries = sorted(
                (_sub_digest(k, seen), k, v) for k, v in value.items())
            for _, key, val in entries:
                _feed(h, key, seen)
                _feed(h, val, seen)
            h.update(b";")
        elif isinstance(value, (set, frozenset)):
            h.update(b"S")
            for part in sorted(_sub_digest(item, seen) for item in value):
                h.update(part)
            h.update(b";")
        elif dataclasses.is_dataclass(value) and not isinstance(value, type):
            h.update(b"d" + type(value).__name__.encode())
            for field in dataclasses.fields(value):
                h.update(field.name.encode() + b"=")
                _feed(h, getattr(value, field.name), seen)
            h.update(b";")
        elif hasattr(value, "__dict__"):
            # arbitrary result objects: public state only — private
            # attributes are memo caches whose presence is path-dependent
            h.update(b"o" + type(value).__name__.encode())
            for name in sorted(vars(value)):
                if name.startswith("_"):
                    continue
                h.update(name.encode() + b"=")
                _feed(h, getattr(value, name), seen)
            h.update(b";")
        else:
            # last resort: repr (stable for the value types the study uses,
            # e.g. IPv4Prefix); tagged so it can never collide with the
            # structured encodings above
            h.update(b"r" + repr(value).encode() + b";")
    finally:
        seen.discard(marker)
