"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4/MAC address or prefix could not be parsed or is invalid."""


class BGPError(ReproError):
    """A BGP message, route, or route-server operation is invalid."""


class PolicyError(BGPError):
    """A BGP policy was mis-specified or could not be evaluated."""


class FabricError(ReproError):
    """The switching fabric was asked to do something inconsistent."""


class ScenarioError(ReproError):
    """A scenario configuration is invalid or inconsistent."""


class CorpusError(ReproError):
    """A corpus is missing data required by an analysis step."""


class AnalysisError(ReproError):
    """An analysis step received inputs it cannot process."""
