"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single except clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class AddressError(ReproError, ValueError):
    """An IPv4/MAC address or prefix could not be parsed or is invalid."""


class BGPError(ReproError):
    """A BGP message, route, or route-server operation is invalid."""


class PolicyError(BGPError):
    """A BGP policy was mis-specified or could not be evaluated."""


class FabricError(ReproError):
    """The switching fabric was asked to do something inconsistent."""


class ScenarioError(ReproError):
    """A scenario configuration is invalid or inconsistent."""


class CorpusError(ReproError):
    """A corpus is missing data required by an analysis step."""


class IngestError(CorpusError):
    """A corpus file could not be read or contained malformed records.

    Raised by the loaders under the ``strict`` error policy; under
    ``skip``/``collect`` the offending records are dropped (and optionally
    quarantined) and summarised in an :class:`repro.corpus.ingest.IngestReport`
    instead.
    """


class ColumnarError(CorpusError):
    """A columnar sidecar segment is unusable (bad magic, header, layout).

    The columnar store is *derived* state: every error of this family is
    recoverable by deleting the sidecar and re-deriving it from the
    finalized corpus files, which is exactly what the doctor's
    ``rederive-columnar`` repair plan does.
    """


class TornColumnarError(ColumnarError):
    """A columnar sidecar is truncated mid-payload (torn tail).

    The analogue of a torn checkpoint-journal tail: the bytes up to the
    header are intact but the payload stops short of its declared length
    — the signature of a crash during a non-atomic copy.  Tolerated the
    same way the journal tolerates torn tails: the reader refuses the
    file with this typed error and the caller re-derives.
    """


class FaultInjectionError(ReproError):
    """A fault-injection spec is invalid or not applicable to its target."""


class AnalysisError(ReproError):
    """An analysis step received inputs it cannot process."""


class TelemetryError(ReproError):
    """A telemetry artifact (trace file, metrics dump) is unreadable."""


class CheckpointError(ReproError):
    """A checkpoint journal is unusable or does not match the run.

    Raised when ``--resume`` finds a journal written by a different
    configuration/seed, or when the journal itself is corrupt beyond the
    tolerated torn trailing line.
    """


class SupervisorError(ReproError):
    """The supervised analysis runner was misconfigured or cannot run."""


class StreamError(ReproError):
    """The streaming engine cannot watch, resume, or advance a corpus.

    Raised when the corpus directory lacks the committed day segments the
    engine tails (generate with ``--keep-segments``), when a stream
    checkpoint no longer matches the corpus journal (the corpus was
    regenerated underneath the watcher), or when ``advance`` is asked to
    extend a corpus whose provenance metadata is missing.
    """


class StreamCheckpointError(StreamError):
    """The stream checkpoint file itself is corrupt or torn.

    Distinct from the other :class:`StreamError` cases because it has a
    dedicated recovery path: the checkpoint is derived state, so ``repro
    watch --reset-stream`` can discard it and re-consume the commit log
    from day 0.  The CLI maps this to its own exit code so operators can
    automate that recovery.
    """

    #: the operator-facing recovery command
    recovery = "repro watch --reset-stream"


class ObsError(ReproError):
    """The live operations plane cannot serve, snapshot, or report.

    Raised for unusable ``--obs-port`` bindings and for ``repro status``
    against a corpus that has never run a watch session (no ``.obs/``
    state to report from).
    """


class ObsUnreachableError(ObsError):
    """A live obs endpoint (``repro status --url``) cannot be reached.

    Connection refused, DNS failure, and timeouts land here — the
    session may simply not be running, which is operationally very
    different from a corrupt snapshot or a malformed URL, so the CLI
    gives it a dedicated exit code (6) that health-check scripts can
    branch on.
    """


class ObsSnapshotError(ObsError):
    """The on-disk obs snapshot is corrupt, torn, or unversioned.

    Snapshots are written atomically, so corruption means something
    external happened to the file; ``repro status`` reports it as a
    typed error (exit 3) instead of guessing at session health.  The
    snapshot is derived state — the next watch tick rewrites it whole.
    """


class DoctorError(ReproError):
    """The integrity doctor cannot scrub or repair a corpus directory.

    Raised when the target is not a corpus-shaped directory at all, or
    when a repair precondition fails (e.g. a synthetic corpus whose
    generation parameters are unreadable, leaving nothing to rebuild
    from).  Individual damaged artifacts never raise — they become
    entries in the :class:`repro.doctor.DamageReport`.
    """


class TapError(ReproError):
    """A live-feed tap cannot be configured, read, or decoded.

    Raised for unparseable ``--tap`` specs, unknown adapter formats, an
    ingest queue overflowing under the ``fail`` backpressure policy, and
    (under the ``strict`` error policy) the first malformed feed record.
    Transient source failures — a vanished file, a stalled feed — are
    *not* raised; the :class:`repro.taps.supervisor.TapSupervisor`
    absorbs those into its reconnect/circuit-breaker lifecycle.
    """
