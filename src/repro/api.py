"""The stable public facade: one object, six verbs.

Everything the CLI can do is reachable programmatically through
:class:`Study` without touching the internal layering::

    from repro import Study, GenerateOptions, StreamOptions

    study = Study.generate("corpus/", options=GenerateOptions(
        scale=0.02, duration_days=5, keep_segments=True))
    report = study.analyze()                  # batch StudyReport
    stream = study.stream()                   # incremental StreamReport
    assert stream.fingerprints() == {
        o.name: o.value_digest for o in report.outcomes}
    check = study.validate()                  # integrity ValidationReport

The options objects are keyword-only frozen dataclasses, so every knob
is named at the call site and defaults stay stable as the toolkit
grows; the returned reports are the same report types the rest of the
package produces (``StudyReport``, ``StreamReport``,
``ValidationReport``) — the facade adds no parallel result vocabulary.

For long-running consumption, :meth:`Study.watch` hands back the
underlying :class:`~repro.streaming.engine.StreamEngine` so callers can
drive ticks themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from repro.core.events import DEFAULT_DELTA
from repro.core.study import StudyReport
from repro.corpus.ingest import ErrorPolicy
from repro.corpus.manifest import (
    CONTROL_FILE,
    DATA_FILE,
    META_FILE,
    ValidationReport,
    validate_corpus,
)
from repro.errors import CorpusError


@dataclass(frozen=True, kw_only=True)
class GenerateOptions:
    """Knobs for :meth:`Study.generate`."""

    scale: float = 0.02
    duration_days: float = 30.0
    seed: int = 7
    jobs: int = 1
    resume: bool = False
    #: keep the committed per-day segments — required by :meth:`Study.stream`
    #: / :meth:`Study.watch` and ``repro advance``
    keep_segments: bool = True


@dataclass(frozen=True, kw_only=True)
class AnalyzeOptions:
    """Knobs for :meth:`Study.analyze`."""

    policy: Union[str, ErrorPolicy] = ErrorPolicy.SKIP
    host_min_days: int = 20
    analyses: Optional[Tuple[str, ...]] = None
    jobs: int = 1
    #: analysis engine: "auto" (columnar iff fresh sidecars exist),
    #: "columnar" (vectorized; derives sidecars when missing), or
    #: "records" (the reference path) — results are bit-identical
    engine: str = "auto"


@dataclass(frozen=True, kw_only=True)
class StreamOptions:
    """Knobs for :meth:`Study.stream` / :meth:`Study.watch`."""

    policy: Union[str, ErrorPolicy] = ErrorPolicy.SKIP
    host_min_days: int = 20
    delta: float = DEFAULT_DELTA
    analyses: Optional[Tuple[str, ...]] = None
    #: consult/populate the corpus-local result cache for the
    #: non-incremental analyses
    cache: bool = True
    #: ignore any existing stream checkpoint and consume from day 0
    fresh: bool = False
    #: live-feed tap specs (``[NAME=]FORMAT:PATH``) to supervise into the
    #: corpus's commit log before each tick; empty = tail-only watcher
    taps: Tuple[str, ...] = ()
    #: supervision knobs shared by every tap (None = library defaults);
    #: a :class:`repro.taps.TapConfig`
    tap_config: Optional[object] = None
    #: attach the live operations plane (``.obs/`` snapshots + event log)
    #: and serve /metrics /healthz /readyz /status on this localhost port
    #: (0 = ephemeral); None = no HTTP endpoint.  The plane itself is
    #: attached whenever ``obs`` is True.
    obs_port: Optional[int] = None
    #: run the operations plane even without an HTTP endpoint
    obs: bool = False
    #: SLO thresholds the plane judges each tick against (None = library
    #: defaults); a :class:`repro.obs.SLORules`
    slo: Optional[object] = None
    #: run a quick integrity scrub every N ticks, surfacing damage
    #: through the obs plane (None disables)
    scrub_every: Optional[int] = None
    #: bound the result cache: LRU-evict entries past this many bytes
    cache_max_bytes: Optional[int] = None


@dataclass(frozen=True)
class Study:
    """A corpus directory plus the verbs that act on it.

    Instances are cheap handles — opening a study reads nothing but the
    directory listing; corpora are loaded per verb so a long-lived
    handle never holds packet arrays.
    """

    corpus_dir: Path

    # -- constructors --------------------------------------------------

    @classmethod
    def open(cls, corpus_dir: Union[str, Path]) -> "Study":
        """Handle to an existing corpus directory.

        Raises :class:`~repro.errors.CorpusError` when the directory is
        missing any of the three corpus files — the same check the CLI
        front-door performs.
        """
        path = Path(corpus_dir)
        for required in (CONTROL_FILE, DATA_FILE, META_FILE):
            if not (path / required).exists():
                raise CorpusError(f"{path / required} missing: not a "
                                  "corpus directory (run Study.generate "
                                  "or `repro generate` first)")
        return cls(path)

    @classmethod
    def tap(cls, corpus_dir: Union[str, Path]) -> "Study":
        """Handle to a tap corpus directory, existing or not yet begun.

        Unlike :meth:`open` this performs no corpus-file checks: a tap
        corpus starts empty and grows as ``watch``/``stream`` (with
        :attr:`StreamOptions.taps` set) commit feed days into it.
        """
        return cls(Path(corpus_dir))

    @classmethod
    def generate(cls, corpus_dir: Union[str, Path], *,
                 options: GenerateOptions = GenerateOptions()) -> "Study":
        """Generate a corpus directory crash-safely and open it."""
        from repro import telemetry
        from repro.runtime.generate import checkpointed_generate
        from repro.scenario import ScenarioConfig

        config = ScenarioConfig.paper(scale=options.scale,
                                      duration_days=options.duration_days,
                                      seed=options.seed)
        run = telemetry.run_manifest("generate", seed=options.seed,
                                     config=config)
        checkpointed_generate(
            config, corpus_dir, resume=options.resume, run=run,
            jobs=options.jobs, keep_segments=options.keep_segments,
            extra_meta={"scale": options.scale,
                        "duration_days": options.duration_days,
                        "seed": options.seed})
        return cls(Path(corpus_dir))

    # -- verbs ---------------------------------------------------------

    def analyze(self, *,
                options: AnalyzeOptions = AnalyzeOptions()) -> StudyReport:
        """Batch-analyze the corpus; the classic full-study pass."""
        from repro.columnar.engine import build_pipeline
        from repro.corpus import ControlPlaneCorpus, DataPlaneCorpus
        from repro.corpus.ingest import check_policy
        from repro.corpus.platform import load_platform

        policy = check_policy(options.policy)
        path = self.corpus_dir
        control = ControlPlaneCorpus.load_jsonl(path / CONTROL_FILE,
                                                on_error=policy)
        data = DataPlaneCorpus.load_npz(path / DATA_FILE, on_error=policy)
        try:
            peers, rs_asn, peeringdb = load_platform(path)
        except (OSError, ValueError, KeyError) as exc:
            raise CorpusError(f"{path}: unreadable platform sidecar: {exc}"
                              ) from exc
        pipeline = build_pipeline(control, data, peers,
                                  engine=options.engine, corpus_dir=path,
                                  peeringdb=peeringdb,
                                  route_server_asn=rs_asn,
                                  host_min_days=options.host_min_days)
        return pipeline.run_all(strict=policy is ErrorPolicy.STRICT,
                                analyses=options.analyses,
                                jobs=options.jobs)

    def stream(self, *, options: StreamOptions = StreamOptions()):
        """Consume every committed day, then report incrementally.

        Equivalent to ``repro watch --once``: resumes (or starts) the
        stream checkpoint, ticks to the committed frontier, and returns
        a :class:`~repro.streaming.report.StreamReport` whose
        fingerprints match :meth:`analyze` over the consumed prefix.
        """
        engine = self.watch(options=options)
        engine.tick(final=True)
        return engine.report(options.analyses)

    def watch(self, *, options: StreamOptions = StreamOptions()):
        """The underlying :class:`~repro.streaming.engine.StreamEngine`.

        For callers that drive ticks themselves (or call
        ``engine.watch(...)`` with their own stop condition).  No day is
        consumed yet.
        """
        from repro.parallel.cache import ResultCache
        from repro.streaming import StreamEngine

        session = None
        if options.taps:
            # bootstrap the tap corpus first: it creates the journal the
            # engine insists on tailing
            from repro.taps import TapConfig, TapSession

            session = TapSession.open(
                self.corpus_dir, options.taps,
                config=options.tap_config or TapConfig())
        cache = ResultCache.for_corpus(
            self.corpus_dir, max_bytes=options.cache_max_bytes) \
            if options.cache else None
        engine = StreamEngine.open(self.corpus_dir, policy=options.policy,
                                   delta=options.delta,
                                   host_min_days=options.host_min_days,
                                   cache=cache, fresh=options.fresh,
                                   scrub_every=options.scrub_every)
        if session is not None:
            engine.attach_taps(session)
        if options.obs or options.obs_port is not None:
            from repro import telemetry
            from repro.obs import ObsPlane, SLORules

            # the plane needs a collecting registry and event channel;
            # API-driven sessions have no natural activate() scope, so
            # install one process-globally iff the no-op default is live
            telemetry.ensure_active()
            plane = ObsPlane(self.corpus_dir,
                             rules=options.slo or SLORules(),
                             port=options.obs_port, command="watch")
            engine.attach_obs(plane)
        return engine

    def validate(self, *, cache_dir: Union[str, Path, None] = None,
                 ) -> ValidationReport:
        """Integrity-check the corpus directory (checksums + counts)."""
        return validate_corpus(self.corpus_dir, cache_dir=cache_dir)

    def doctor(self, *, repair: bool = False, deep: bool = True,
               cache_dir: Union[str, Path, None] = None):
        """Scrub the corpus's durable state; optionally heal it.

        With ``repair=False`` (the default) this is read-only and
        returns the :class:`~repro.doctor.DamageReport`.  With
        ``repair=True`` every damage found is repaired from redundancy
        (idempotently, under the doctor's own journal) and the
        :class:`~repro.doctor.RepairReport` comes back with a
        verification re-scrub attached as ``verified``.
        """
        from repro.doctor import repair_corpus, scrub_corpus

        report = scrub_corpus(self.corpus_dir, deep=deep,
                              cache_dir=cache_dir)
        if not repair:
            return report
        outcome = repair_corpus(self.corpus_dir, report, deep=deep,
                                cache_dir=cache_dir)
        outcome.verified = scrub_corpus(self.corpus_dir, deep=deep,
                                        cache_dir=cache_dir)
        return outcome
